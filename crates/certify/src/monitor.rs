//! The online certifier: an incremental mirror of the post-hoc watermark
//! certifier ([`atomicity_lint::certify`]) that consumes the live stamp
//! stream one event at a time.
//!
//! # What is being computed
//!
//! The post-hoc certifier derives, from a complete merged history, four
//! things per committed activity: its first-commit position, its
//! last-response position, its completed operations per object, and the
//! objects it touched. The verdict is then a pure function of the
//! `precedes` comparisons `firstcommit(a) < lastresp(b)` and the
//! per-object operation lists. Stamps drawn from the sharded recorder are
//! exactly those global positions, so the monitor can maintain the same
//! quantities *as the events arrive* — the per-activity (last-response,
//! first-commit) pairs are the per-thread vector clock against which each
//! new commit is compared.
//!
//! # Watermark retirement
//!
//! Memory stays bounded because committed activities *retire*: once an
//! activity at the front of an object's commit-ordered window is known to
//! precede every other activity that will ever hold operations on that
//! object, its operations are folded into an incremental
//! [`StateReplayer`] frontier and dropped. The retirement test is the
//! watermark argument run forward: the front activity `f` is safe when
//! the window's induced order is (so far) total and no open activity
//! with operations on the object last responded before `firstcommit(f)` —
//! every later joiner must respond after `f`'s commit, which puts
//! `⟨f, joiner⟩` in `precedes` permanently.
//!
//! Where the induced order is genuinely partial the monitor mirrors the
//! post-hoc branches: bounded linear-extension enumeration from a forked
//! frontier while the object has at most `MAX_LOCAL_ENUM` committed
//! activities, and past that the table reduction — which streams too,
//! because the non-commuting-concurrent-pair search only needs, per
//! distinct operation, the *maximum first-commit stamp* among already
//! folded activities holding it (a later activity `b` is incomparable
//! with an earlier `a` iff `firstcommit(a) > lastresp(b)`, so the
//! max-stamp holder witnesses any conflict).
//!
//! # Agreement contract
//!
//! With retirement off the monitor additionally mirrors every event, and
//! delegates to the post-hoc certifier on the pathologies outside the
//! basic discipline (responses after commit, commit after abort,
//! timestamp regression): verdicts then agree with [`certify`] in kind on
//! *arbitrary* event soups (proptested in `tests/equivalence.rs`). With
//! retirement on, the pathological histories answer
//! [`Verdict::Unknown`] instead (the mirror that would decide them is
//! exactly what retirement gives up); on disciplined engine streams the
//! two modes agree with each other and with the post-hoc certifier.

use crate::idset::IdSet;
use atomicity_core::CommutesRel;
use atomicity_lint::{certify, certify_with_relation};
use atomicity_lint::{Certificate, Method, Property, Verdict, Violation};
use atomicity_spec::{
    ActivityId, Event, EventKind, History, ObjectId, ObjectSpec, OpResult, Operation,
    StateReplayer, SystemSpec, Timestamp,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Mirror of the post-hoc certifier's per-object linear-extension bound.
const MAX_LOCAL_ENUM: usize = 6;

/// Mirror of the post-hoc certifier's exhaustive-fallback bound, used only
/// in messages (the retain-all mode delegates the fallback itself).
const MAX_FALLBACK_ACTIVITIES: usize = 7;

/// How far outside the basic discipline the stream stepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pathology {
    /// A response event arrived for an already-committed activity: the
    /// post-hoc certifier resolves this with the exhaustive fallback.
    RespondAfterCommit,
    /// A commit event arrived for an already-aborted activity.
    CommitAfterAbort,
    /// A timestamp at or below the drained watermark arrived after the
    /// timestamp-ordered replay had advanced past it.
    TimestampRegression,
    /// Stamps arrived out of order — a tap protocol error, not a property
    /// of the history.
    StampRegression,
}

impl Pathology {
    fn describe(self) -> &'static str {
        match self {
            Pathology::RespondAfterCommit => "a response event followed the activity's commit",
            Pathology::CommitAfterAbort => "a commit event followed the activity's abort",
            Pathology::TimestampRegression => {
                "a timestamp regressed below the drained replay watermark"
            }
            Pathology::StampRegression => "the stamp stream was not strictly increasing",
        }
    }
}

/// Live state of an activity that has neither committed nor aborted.
#[derive(Default, Clone)]
struct ActState {
    /// Invocations awaiting a response, per object.
    pending: BTreeMap<ObjectId, Operation>,
    /// Completed operations, per object, in response order.
    ops: BTreeMap<ObjectId, Vec<OpResult>>,
    /// Objects participating in any of the activity's events so far.
    touched: BTreeSet<ObjectId>,
    /// Stamp of the latest response event, across all objects.
    last_resp: Option<u64>,
    /// First timestamp event (initiation or timestamped commit).
    ts: Option<Timestamp>,
}

impl ActState {
    fn retained(&self) -> usize {
        self.pending.len() + self.ops.values().map(Vec::len).sum::<usize>()
    }
}

/// A committed activity held in an object's unretired window.
#[derive(Clone)]
struct WinAct {
    act: ActivityId,
    /// Stamp of the activity's first commit event.
    fc: u64,
    /// Stamp of the activity's last response event.
    lr: u64,
    ops: Vec<OpResult>,
}

/// Why an object's verdict is already pinned regardless of further events.
#[derive(Clone)]
enum Pinned {
    /// Committed operations on an unspecified object.
    NoSpec,
    /// Genuinely partial induced order past the enumeration bound, no
    /// commutativity relation supplied.
    UnknownNoRel,
    /// Genuinely partial induced order past the enumeration bound, and a
    /// concurrent pair holds non-commuting operations.
    UnknownNonCommuting(ActivityId, ActivityId),
}

/// The per-object streaming machine for dynamic atomicity.
struct ObjectMonitor {
    x: ObjectId,
    spec: Option<Arc<dyn ObjectSpec>>,
    /// Reachable-state frontier over everything folded so far; created on
    /// first fold. `None` with `retired == 0` means nothing folded yet.
    frontier: Option<Box<dyn StateReplayer>>,
    /// Committed activities folded into the frontier (retired or
    /// summarized).
    folded: usize,
    /// Committed, unfolded activities in first-commit order.
    window: VecDeque<WinAct>,
    /// Whether some adjacent pair of the induced order is incomparable.
    partial: bool,
    /// Committed activities with operations here, ever.
    total_acts: usize,
    /// Witness of the first frontier rejection, if any.
    rejected: Option<String>,
    pinned: Option<Pinned>,
    /// Table-reduction streaming mode: operations are folded in commit
    /// order and only per-operation max-first-commit stamps are kept.
    summarized: bool,
    /// Distinct operations seen on this object (interning table).
    universe: Vec<Operation>,
    /// Memoized `rel.commutes(universe[p], universe[q])`.
    commute_memo: BTreeMap<(usize, usize), bool>,
    /// Per interned operation: max first-commit stamp among folded
    /// activities holding it (summarized mode only).
    maxfc: BTreeMap<usize, u64>,
}

impl ObjectMonitor {
    fn new(x: ObjectId, spec: Option<Arc<dyn ObjectSpec>>) -> Self {
        ObjectMonitor {
            x,
            spec,
            frontier: None,
            folded: 0,
            window: VecDeque::new(),
            partial: false,
            total_acts: 0,
            rejected: None,
            pinned: None,
            summarized: false,
            universe: Vec::new(),
            commute_memo: BTreeMap::new(),
            maxfc: BTreeMap::new(),
        }
    }

    /// An independent copy (frontier forked) for provisional conclusion.
    fn fork(&self) -> Self {
        ObjectMonitor {
            x: self.x,
            spec: self.spec.clone(),
            frontier: self.frontier.as_ref().map(|f| f.fork()),
            folded: self.folded,
            window: self.window.clone(),
            partial: self.partial,
            total_acts: self.total_acts,
            rejected: self.rejected.clone(),
            pinned: self.pinned.clone(),
            summarized: self.summarized,
            universe: self.universe.clone(),
            commute_memo: self.commute_memo.clone(),
            maxfc: self.maxfc.clone(),
        }
    }

    /// Interns the distinct operations of `ops`.
    fn intern(&mut self, ops: &[OpResult]) -> Vec<usize> {
        let mut ids = Vec::new();
        for (operation, _) in ops {
            let id = self
                .universe
                .iter()
                .position(|u| u == operation)
                .unwrap_or_else(|| {
                    self.universe.push(operation.clone());
                    self.universe.len() - 1
                });
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        ids
    }

    fn commutes(&mut self, p: usize, q: usize, rel: &dyn CommutesRel) -> bool {
        if let Some(&c) = self.commute_memo.get(&(p, q)) {
            return c;
        }
        let c = rel.commutes(&self.universe[p], &self.universe[q]);
        self.commute_memo.insert((p, q), c);
        c
    }

    /// Folds one activity's operations into the frontier, recording the
    /// first rejection as both the pinned witness and a live violation.
    fn fold(&mut self, w: &WinAct, violations: &mut Vec<Violation>) {
        self.folded += 1;
        if self.rejected.is_some() {
            return; // frontier is dead; the prefix rejection decides replays
        }
        let spec = self.spec.as_ref().expect("fold requires a specification");
        let frontier = self
            .frontier
            .get_or_insert_with(|| Arc::clone(spec).begin_replay());
        if !frontier.apply(&w.ops) {
            let detail = format!(
                "object {:?}: the committed serial prefix became unacceptable at \
                 activity {:?} (commit stamp {})",
                self.x, w.act, w.fc
            );
            self.rejected = Some(detail.clone());
            violations.push(Violation {
                stamp: w.fc,
                object: Some(self.x),
                activity: Some(w.act),
                detail,
            });
        }
    }

    /// Feeds one freshly committed activity with operations on this object.
    ///
    /// `danger_min_lr` is the minimum last-response stamp over *open*
    /// activities currently holding operations on this object — the
    /// retirement watermark.
    #[allow(clippy::too_many_arguments)]
    fn on_commit(
        &mut self,
        act: ActivityId,
        fc: u64,
        lr: u64,
        ops: Vec<OpResult>,
        danger_min_lr: Option<u64>,
        rel: Option<&dyn CommutesRel>,
        retire: bool,
        violations: &mut Vec<Violation>,
        retained: &mut usize,
    ) {
        self.total_acts += 1;
        if self.spec.is_none() {
            if self.pinned.is_none() {
                self.pinned = Some(Pinned::NoSpec);
                violations.push(Violation {
                    stamp: fc,
                    object: Some(self.x),
                    activity: Some(act),
                    detail: format!(
                        "object {:?} has committed operations but no specification",
                        self.x
                    ),
                });
            }
            return;
        }
        if self.pinned.is_some() {
            return;
        }
        if self.summarized {
            let ids = self.intern(&ops);
            if let Some(rel) = rel {
                if let Some((p, q)) = self.noncommuting_vs_folded(lr, &ids, rel) {
                    self.pin_noncommuting(p, act, q, act, retained);
                    return;
                }
            }
            for &id in &ids {
                let e = self.maxfc.entry(id).or_insert(fc);
                *e = (*e).max(fc);
            }
            let w = WinAct { act, fc, lr, ops };
            self.fold(&w, violations);
            return;
        }
        if let Some(last) = self.window.back() {
            if last.fc >= lr {
                // `⟨last, act⟩ ∉ precedes`: the induced order is partial.
                self.partial = true;
            }
        }
        *retained += ops.len();
        self.window.push_back(WinAct { act, fc, lr, ops });
        if !self.partial {
            if retire {
                self.try_retire(danger_min_lr, violations, retained);
                // Danger-pressure reduction: a starved open activity (one
                // whose last response is ancient because the engine parked
                // it in a wait queue) blocks front retirement for as long
                // as it stays open, and a total window would balloon with
                // every commit in between. All window pairs are comparable
                // here (commit stamps are monotone, so adjacency totality
                // is pairwise totality), which is exactly the trivial case
                // of the streaming table reduction — fold the window and
                // let `maxfc` arbitrate the straggler when it commits.
                if self.window.len() > MAX_LOCAL_ENUM && rel.is_some() {
                    self.enter_summarized(violations, retained);
                }
            }
        } else if self.total_acts > MAX_LOCAL_ENUM {
            match rel {
                None => {
                    self.pinned = Some(Pinned::UnknownNoRel);
                    self.drop_window(retained);
                }
                Some(rel) => {
                    if let Some((i, j)) = self.window_noncommuting(rel) {
                        let (a, b) = (self.window[i].act, self.window[j].act);
                        self.pinned = Some(Pinned::UnknownNonCommuting(a, b));
                        self.drop_window(retained);
                    } else {
                        self.enter_summarized(violations, retained);
                    }
                }
            }
        }
    }

    /// Enters the streaming table reduction: folds the window in commit
    /// order, keeping only per-op max-first-commit stamps for future
    /// conflict checks.
    fn enter_summarized(&mut self, violations: &mut Vec<Violation>, retained: &mut usize) {
        self.summarized = true;
        while let Some(w) = self.window.pop_front() {
            let ids = self.intern(&w.ops);
            for id in ids {
                let e = self.maxfc.entry(id).or_insert(w.fc);
                *e = (*e).max(w.fc);
            }
            *retained -= w.ops.len();
            self.fold(&w, violations);
        }
    }

    /// In summarized mode: does the new activity (last response `lr`,
    /// interned ops `ids`) conflict with an incomparable folded activity?
    /// Folded activity `a` is incomparable with the newcomer iff
    /// `firstcommit(a) > lr`, and the max-stamp holder of each operation
    /// witnesses any such conflict.
    fn noncommuting_vs_folded(
        &mut self,
        lr: u64,
        ids: &[usize],
        rel: &dyn CommutesRel,
    ) -> Option<(usize, usize)> {
        let candidates: Vec<usize> = self
            .maxfc
            .iter()
            .filter(|&(_, &fc)| fc > lr)
            .map(|(&p, _)| p)
            .collect();
        for p in candidates {
            for &q in ids {
                if !self.commutes(p, q, rel) {
                    return Some((p, q));
                }
            }
        }
        None
    }

    /// The post-hoc non-commuting-concurrent-pair search restricted to the
    /// window (folded activities are comparable with everything).
    fn window_noncommuting(&mut self, rel: &dyn CommutesRel) -> Option<(usize, usize)> {
        let interned: Vec<Vec<usize>> = {
            let opses: Vec<Vec<OpResult>> = self.window.iter().map(|w| w.ops.clone()).collect();
            opses.iter().map(|ops| self.intern(ops)).collect()
        };
        for i in 0..self.window.len() {
            for j in i + 1..self.window.len() {
                if self.window[i].fc < self.window[j].lr {
                    continue; // comparable
                }
                for &p in &interned[i] {
                    for &q in &interned[j] {
                        if !self.commutes(p, q, rel) {
                            return Some((i, j));
                        }
                    }
                }
            }
        }
        None
    }

    fn pin_noncommuting(
        &mut self,
        _p: usize,
        a: ActivityId,
        _q: usize,
        b: ActivityId,
        retained: &mut usize,
    ) {
        self.pinned = Some(Pinned::UnknownNonCommuting(a, b));
        self.drop_window(retained);
    }

    fn drop_window(&mut self, retained: &mut usize) {
        for w in &self.window {
            *retained -= w.ops.len();
        }
        self.window.clear();
        self.frontier = None;
        self.maxfc.clear();
    }

    /// Retires front-window activities whose precedence over every future
    /// joiner is already certain.
    fn try_retire(
        &mut self,
        danger_min_lr: Option<u64>,
        violations: &mut Vec<Violation>,
        retained: &mut usize,
    ) {
        debug_assert!(!self.partial);
        while let Some(front) = self.window.front() {
            if danger_min_lr.is_some_and(|m| m < front.fc) {
                break; // an open activity could still commit incomparably
            }
            let w = self.window.pop_front().expect("front exists");
            *retained -= w.ops.len();
            self.fold(&w, violations);
        }
    }

    /// Number of operations currently buffered in the window.
    #[cfg(test)]
    fn window_ops(&self) -> usize {
        self.window.iter().map(|w| w.ops.len()).sum()
    }

    /// Finishes this object: the stream has ended, every activity has
    /// resolved. Mirrors the post-hoc per-object branch structure.
    fn conclude(mut self, violations: &mut Vec<Violation>) -> Verdict {
        if let Some(p) = &self.pinned {
            return match p {
                Pinned::NoSpec => Verdict::Refuted(format!(
                    "object {:?} has committed operations but no specification",
                    self.x
                )),
                Pinned::UnknownNoRel => Verdict::Unknown(format!(
                    "object {:?}: {} committed activities with a genuinely partial \
                     precedes order exceed the enumeration bound {MAX_LOCAL_ENUM}",
                    self.x, self.total_acts
                )),
                Pinned::UnknownNonCommuting(a, b) => Verdict::Unknown(format!(
                    "object {:?}: {} committed activities with a genuinely partial \
                     precedes order exceed the enumeration bound {MAX_LOCAL_ENUM}, \
                     and concurrent activities {a:?} and {b:?} hold non-commuting \
                     operations",
                    self.x, self.total_acts
                )),
            };
        }
        if self.summarized || !self.partial {
            // Single consistent order: fold the remaining window.
            let rest: Vec<WinAct> = self.window.drain(..).collect();
            for w in &rest {
                self.fold(w, violations);
            }
            return match self.rejected {
                Some(why) => Verdict::Refuted(why),
                None => Verdict::Certified,
            };
        }
        // Genuinely partial with at most MAX_LOCAL_ENUM activities:
        // enumerate the window's linear extensions over forks of the
        // retired-prefix frontier (the retired activities precede every
        // window member in every extension).
        debug_assert!(self.total_acts <= MAX_LOCAL_ENUM);
        if let Some(why) = self.rejected {
            // The forced prefix is already unacceptable: every extension is.
            return Verdict::Refuted(why);
        }
        let window: Vec<WinAct> = self.window.drain(..).collect();
        let spec = self.spec.as_ref().expect("partial window implies ops");
        let base = match &self.frontier {
            Some(f) => f.fork(),
            None => Arc::clone(spec).begin_replay(),
        };
        let mut used = vec![false; window.len()];
        if let Some(order) =
            reject_some_extension(&window, &mut used, &mut Vec::new(), base.as_ref())
        {
            return Verdict::Refuted(format!(
                "object {:?}: precedes-consistent order {order:?} is rejected by \
                 the specification",
                self.x
            ));
        }
        Verdict::Certified
    }
}

/// Depth-first search for a linear extension of the window's induced order
/// that the specification rejects; prefix rejections decide all their
/// completions, so each tree edge extends a forked frontier by one
/// activity. Returns the rejecting order's activities if one exists.
fn reject_some_extension(
    window: &[WinAct],
    used: &mut [bool],
    placed: &mut Vec<ActivityId>,
    frontier: &dyn StateReplayer,
) -> Option<Vec<ActivityId>> {
    if placed.len() == window.len() {
        return None;
    }
    for i in 0..window.len() {
        if used[i] {
            continue;
        }
        // Ready: no unplaced j ≠ i precedes i.
        let ready = (0..window.len()).all(|j| used[j] || j == i || window[j].fc >= window[i].lr);
        if !ready {
            continue;
        }
        let mut next = frontier.fork();
        used[i] = true;
        placed.push(window[i].act);
        if !next.apply(&window[i].ops) {
            // This prefix (hence some full extension) is rejected.
            let order = placed.clone();
            placed.pop();
            used[i] = false;
            return Some(order);
        }
        if let Some(order) = reject_some_extension(window, used, placed, next.as_ref()) {
            placed.pop();
            used[i] = false;
            return Some(order);
        }
        placed.pop();
        used[i] = false;
    }
    None
}

/// One object's incremental replay for the timestamp-ordered properties.
struct TsObjectReplay {
    spec: Option<Arc<dyn ObjectSpec>>,
    frontier: Option<Box<dyn StateReplayer>>,
    rejected: bool,
}

impl TsObjectReplay {
    fn fork(&self) -> Self {
        TsObjectReplay {
            spec: self.spec.clone(),
            frontier: self.frontier.as_ref().map(|f| f.fork()),
            rejected: self.rejected,
        }
    }
}

/// A committed activity awaiting its timestamp-ordered drain: its first
/// commit stamp plus its completed operations per object.
type PendingAct = (u64, BTreeMap<ObjectId, Vec<OpResult>>);

/// The streaming machine for static/hybrid atomicity: committed
/// activities drain into per-object replayers in `(timestamp, activity)`
/// order once no earlier key can still arrive.
struct TsMachine {
    /// Committed activities not yet drained, keyed by timestamp order.
    queue: BTreeMap<(Timestamp, ActivityId), PendingAct>,
    /// Committed activities still missing a timestamp event (post-hoc:
    /// `timestamp_order` returns `None` → refuted).
    parked: BTreeMap<ActivityId, PendingAct>,
    /// Highest timestamp seen on any event.
    max_ts_seen: Option<Timestamp>,
    /// Key of the last drained activity.
    last_drained: Option<(Timestamp, ActivityId)>,
    replayers: BTreeMap<ObjectId, TsObjectReplay>,
    /// Witness of the first rejection across objects.
    rejected: Option<String>,
}

impl TsMachine {
    fn new() -> Self {
        TsMachine {
            queue: BTreeMap::new(),
            parked: BTreeMap::new(),
            max_ts_seen: None,
            last_drained: None,
            replayers: BTreeMap::new(),
            rejected: None,
        }
    }

    fn fork(&self) -> Self {
        TsMachine {
            queue: self.queue.clone(),
            parked: self.parked.clone(),
            max_ts_seen: self.max_ts_seen,
            last_drained: self.last_drained,
            replayers: self.replayers.iter().map(|(x, r)| (*x, r.fork())).collect(),
            rejected: self.rejected.clone(),
        }
    }

    fn retained_ops(map: &BTreeMap<ObjectId, Vec<OpResult>>) -> usize {
        map.values().map(Vec::len).sum()
    }

    /// Enqueues a committed activity; returns `false` on timestamp
    /// regression (key at or below the drained watermark).
    #[must_use]
    fn enqueue(
        &mut self,
        act: ActivityId,
        ts: Option<Timestamp>,
        commit_stamp: u64,
        ops: BTreeMap<ObjectId, Vec<OpResult>>,
    ) -> bool {
        match ts {
            None => {
                self.parked.insert(act, (commit_stamp, ops));
                true
            }
            Some(t) => {
                let key = (t, act);
                if self.last_drained.is_some_and(|ld| key <= ld) {
                    return false;
                }
                self.queue.insert(key, (commit_stamp, ops));
                true
            }
        }
    }

    /// Resolves a late timestamp event for a parked committed activity.
    #[must_use]
    fn resolve_parked(&mut self, act: ActivityId, t: Timestamp) -> bool {
        if let Some((stamp, ops)) = self.parked.remove(&act) {
            return self.enqueue(act, Some(t), stamp, ops);
        }
        true
    }

    /// Drains every queue entry provably final in timestamp order:
    /// strictly below the highest timestamp seen (later events cannot go
    /// below it on a monotone clock; regressions are caught by
    /// [`TsMachine::enqueue`]) and below every open activity's assigned
    /// timestamp.
    fn drain(
        &mut self,
        open_min: Option<(Timestamp, ActivityId)>,
        spec: &SystemSpec,
        violations: &mut Vec<Violation>,
        retained: &mut usize,
        drain_all: bool,
    ) {
        while let Some((&key, _)) = self.queue.iter().next() {
            if !drain_all {
                let below_new = self.max_ts_seen.is_some_and(|m| key.0 < m);
                let below_open = open_min.is_none_or(|m| key < m);
                if !(below_new && below_open) {
                    break;
                }
            }
            let (key, (stamp, ops)) = self.queue.pop_first().expect("peeked");
            *retained -= Self::retained_ops(&ops);
            self.last_drained = Some(key);
            self.apply(key.1, stamp, ops, spec, violations);
        }
    }

    fn apply(
        &mut self,
        act: ActivityId,
        stamp: u64,
        ops: BTreeMap<ObjectId, Vec<OpResult>>,
        spec: &SystemSpec,
        violations: &mut Vec<Violation>,
    ) {
        for (x, ops) in ops {
            if ops.is_empty() {
                continue;
            }
            let replay = self.replayers.entry(x).or_insert_with(|| TsObjectReplay {
                spec: spec.get(x).cloned(),
                frontier: None,
                rejected: false,
            });
            if replay.rejected {
                continue;
            }
            let ok = match &replay.spec {
                None => false,
                Some(s) => replay
                    .frontier
                    .get_or_insert_with(|| Arc::clone(s).begin_replay())
                    .apply(&ops),
            };
            if !ok {
                replay.rejected = true;
                let detail = format!(
                    "object {x:?}: the timestamp-ordered serial sequence became \
                     unacceptable at activity {act:?}"
                );
                if self.rejected.is_none() {
                    self.rejected = Some(detail.clone());
                }
                violations.push(Violation {
                    stamp,
                    object: Some(x),
                    activity: Some(act),
                    detail,
                });
            }
        }
    }

    fn conclude(
        mut self,
        spec: &SystemSpec,
        violations: &mut Vec<Violation>,
        retained: &mut usize,
    ) -> Verdict {
        self.drain(None, spec, violations, retained, true);
        if !self.parked.is_empty() {
            return Verdict::Refuted("a committed activity has no timestamp event".to_string());
        }
        match self.rejected {
            Some(why) => Verdict::Refuted(format!(
                "perm(h) is not serializable in timestamp order: {why}"
            )),
            None => Verdict::Certified,
        }
    }
}

/// The online streaming certifier.
///
/// Feed it the recorder's stamp stream via
/// [`observe`](OnlineCertifier::observe); each call returns a
/// [`Violation`] the moment atomicity becomes unsatisfiable mid-run, and
/// [`finish`](OnlineCertifier::finish) produces a [`Certificate`] whose
/// verdict agrees with the post-hoc certifier's (see the module docs for
/// the exact contract). Construct with retirement on
/// ([`OnlineCertifier::new`]) for bounded memory over unbounded streams,
/// or off ([`OnlineCertifier::new_retaining`]) for exact post-hoc
/// equivalence on arbitrary event soups.
pub struct OnlineCertifier {
    property: Property,
    spec: SystemSpec,
    rel: Option<Arc<dyn CommutesRel>>,
    retire: bool,

    last_stamp: Option<u64>,
    observed: u64,
    open: BTreeMap<ActivityId, ActState>,
    committed: IdSet,
    aborted: IdSet,
    /// Objects participating in any event of a committed activity.
    committed_objects: BTreeSet<ObjectId>,
    /// Objects participating in any event at all.
    all_objects: BTreeSet<ObjectId>,
    pathology: Option<Pathology>,
    /// Full event mirror (retain-all mode only), for post-hoc delegation.
    mirror: Vec<Event>,
    dynamic: BTreeMap<ObjectId, ObjectMonitor>,
    tsm: Option<TsMachine>,
    violations: Vec<Violation>,
    retained: usize,
    peak_retained: usize,
}

impl OnlineCertifier {
    /// Creates a monitor with watermark retirement on: memory stays
    /// bounded by the open-transaction footprint, and histories outside
    /// the basic discipline answer [`Verdict::Unknown`].
    pub fn new(property: Property, spec: SystemSpec, rel: Option<Arc<dyn CommutesRel>>) -> Self {
        Self::with_retirement(property, spec, rel, true)
    }

    /// Creates a monitor that retains the full stream: verdicts agree
    /// with the post-hoc certifier in kind on arbitrary histories, at the
    /// memory cost of a complete event mirror.
    pub fn new_retaining(
        property: Property,
        spec: SystemSpec,
        rel: Option<Arc<dyn CommutesRel>>,
    ) -> Self {
        Self::with_retirement(property, spec, rel, false)
    }

    fn with_retirement(
        property: Property,
        spec: SystemSpec,
        rel: Option<Arc<dyn CommutesRel>>,
        retire: bool,
    ) -> Self {
        let tsm = match property {
            Property::Dynamic => None,
            Property::Static | Property::Hybrid => Some(TsMachine::new()),
        };
        OnlineCertifier {
            property,
            spec,
            rel,
            retire,
            last_stamp: None,
            observed: 0,
            open: BTreeMap::new(),
            committed: IdSet::new(),
            aborted: IdSet::new(),
            committed_objects: BTreeSet::new(),
            all_objects: BTreeSet::new(),
            pathology: None,
            mirror: Vec::new(),
            dynamic: BTreeMap::new(),
            tsm,
            violations: Vec::new(),
            retained: 0,
            peak_retained: 0,
        }
    }

    /// The property being monitored.
    pub fn property(&self) -> Property {
        self.property
    }

    /// Whether watermark retirement is active.
    pub fn is_retiring(&self) -> bool {
        self.retire
    }

    /// Events observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Operations and events currently retained (windows, open-activity
    /// buffers, undrained timestamp queues, and — with retirement off —
    /// the event mirror).
    pub fn retained(&self) -> usize {
        self.retained
    }

    /// High-water mark of [`retained`](OnlineCertifier::retained).
    pub fn peak_retained(&self) -> usize {
        self.peak_retained
    }

    /// Violations flagged so far, in stream order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Committed activities observed so far.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    fn flag_pathology(&mut self, kind: Pathology) {
        if self.pathology.is_none() {
            self.pathology = Some(kind);
            if self.retire {
                // The machines will not be consulted again; free them.
                let mut retained = self.retained;
                for (_, mon) in std::mem::take(&mut self.dynamic) {
                    let mut m = mon;
                    m.drop_window(&mut retained);
                }
                self.retained = retained;
                if let Some(tsm) = &mut self.tsm {
                    for (_, (_, ops)) in std::mem::take(&mut tsm.queue) {
                        self.retained -= TsMachine::retained_ops(&ops);
                    }
                    for (_, (_, ops)) in std::mem::take(&mut tsm.parked) {
                        self.retained -= TsMachine::retained_ops(&ops);
                    }
                    tsm.replayers.clear();
                }
                for st in self.open.values_mut() {
                    self.retained -= st.retained();
                    st.pending.clear();
                    st.ops.clear();
                }
            }
        }
    }

    /// Minimum last-response stamp over open activities holding completed
    /// operations on `x` — the dynamic retirement watermark.
    fn danger_min_lr(&self, x: ObjectId) -> Option<u64> {
        self.open
            .values()
            .filter(|st| st.ops.get(&x).is_some_and(|ops| !ops.is_empty()))
            .filter_map(|st| st.last_resp)
            .min()
    }

    /// Minimum `(timestamp, activity)` key over open activities that have
    /// already been assigned a timestamp — the drain watermark.
    fn open_min_ts(&self) -> Option<(Timestamp, ActivityId)> {
        self.open
            .iter()
            .filter_map(|(&a, st)| st.ts.map(|t| (t, a)))
            .min()
    }

    /// Observes one event from the stamp stream. Stamps must be strictly
    /// increasing (the recorder's global sequencer guarantees this; a
    /// regression is reported as a protocol violation). Returns a
    /// [`Violation`] if this event made atomicity unsatisfiable.
    pub fn observe(&mut self, stamp: u64, event: &Event) -> Option<Violation> {
        let first_new = self.violations.len();
        self.observed += 1;
        if self.last_stamp.is_some_and(|last| stamp <= last) {
            self.flag_pathology(Pathology::StampRegression);
        }
        self.last_stamp = Some(stamp);
        if !self.retire {
            self.mirror.push(event.clone());
            self.retained += 1;
        }
        let act = event.activity;
        let x = event.object;
        self.all_objects.insert(x);
        let already_committed = self.committed.contains(act.raw());
        if already_committed {
            self.committed_objects.insert(x);
        }
        if let Some(t) = event.kind.timestamp() {
            if let Some(tsm) = &mut self.tsm {
                tsm.max_ts_seen = Some(tsm.max_ts_seen.map_or(t, |m| m.max(t)));
            }
        }
        match &event.kind {
            EventKind::Invoke(op) => {
                if !already_committed && self.pathology.is_none() {
                    let st = self.open.entry(act).or_default();
                    st.touched.insert(x);
                    if st.pending.insert(x, op.clone()).is_none() {
                        self.retained += 1;
                    }
                } else if !already_committed {
                    self.open.entry(act).or_default().touched.insert(x);
                }
            }
            EventKind::Respond(v) => {
                if already_committed {
                    self.flag_pathology(Pathology::RespondAfterCommit);
                } else {
                    let st = self.open.entry(act).or_default();
                    st.touched.insert(x);
                    st.last_resp = Some(stamp);
                    if self.pathology.is_none() {
                        if let Some(op) = st.pending.remove(&x) {
                            st.ops.entry(x).or_default().push((op, v.clone()));
                        }
                    }
                }
            }
            EventKind::Abort => {
                if !already_committed {
                    if let Some(st) = self.open.remove(&act) {
                        self.retained -= st.retained();
                    }
                    self.aborted.insert(act.raw());
                }
            }
            EventKind::Initiate(t) => {
                if !already_committed {
                    let st = self.open.entry(act).or_default();
                    st.touched.insert(x);
                    st.ts.get_or_insert(*t);
                } else if self.pathology.is_none() {
                    // Late timestamp for a committed activity: resolves a
                    // parked timestamp-order entry if one exists.
                    if let Some(tsm) = &mut self.tsm {
                        if !tsm.resolve_parked(act, *t) {
                            self.flag_pathology(Pathology::TimestampRegression);
                        }
                    }
                }
            }
            EventKind::Commit | EventKind::CommitTs(_) => {
                if !already_committed {
                    if self.aborted.contains(act.raw()) {
                        self.flag_pathology(Pathology::CommitAfterAbort);
                    } else {
                        self.commit(stamp, act, x, event.kind.timestamp());
                    }
                } else if self.pathology.is_none() {
                    // A duplicate timestamped commit can carry the
                    // activity's first timestamp event.
                    if let Some(t) = event.kind.timestamp() {
                        if let Some(tsm) = &mut self.tsm {
                            if !tsm.resolve_parked(act, t) {
                                self.flag_pathology(Pathology::TimestampRegression);
                            }
                        }
                    }
                }
            }
        }
        // Timestamp-order drains are attempted on every event: new
        // timestamps and resolved opens both move the watermark.
        if self.pathology.is_none() {
            if let Some(mut tsm) = self.tsm.take() {
                let open_min = self.open_min_ts();
                tsm.drain(
                    open_min,
                    &self.spec,
                    &mut self.violations,
                    &mut self.retained,
                    false,
                );
                self.tsm = Some(tsm);
            }
        }
        self.peak_retained = self.peak_retained.max(self.retained);
        self.violations.get(first_new).cloned()
    }

    /// Handles the first commit event of `act`.
    fn commit(&mut self, stamp: u64, act: ActivityId, x: ObjectId, event_ts: Option<Timestamp>) {
        self.committed.insert(act.raw());
        let st = self.open.remove(&act).unwrap_or_default();
        self.retained -= st.pending.len();
        self.committed_objects.insert(x);
        self.committed_objects.extend(st.touched.iter().copied());
        if self.pathology.is_some() {
            self.retained -= st.ops.values().map(Vec::len).sum::<usize>();
            return;
        }
        match self.property {
            Property::Dynamic => {
                let lr = st.last_resp;
                let ops_total: usize = st.ops.values().map(Vec::len).sum();
                self.retained -= ops_total;
                for (obj, ops) in st.ops {
                    if ops.is_empty() {
                        continue;
                    }
                    let danger = self.danger_min_lr(obj);
                    let mon = self
                        .dynamic
                        .entry(obj)
                        .or_insert_with(|| ObjectMonitor::new(obj, self.spec.get(obj).cloned()));
                    mon.on_commit(
                        act,
                        stamp,
                        lr.expect("an activity with completed operations has responded"),
                        ops,
                        danger,
                        self.rel.as_deref(),
                        self.retire,
                        &mut self.violations,
                        &mut self.retained,
                    );
                }
            }
            Property::Static | Property::Hybrid => {
                let ts = st.ts.or(event_ts);
                let tsm = self.tsm.as_mut().expect("timestamp machine exists");
                // Ops stay retained until drained.
                if !tsm.enqueue(act, ts, stamp, st.ops) {
                    self.flag_pathology(Pathology::TimestampRegression);
                }
            }
        }
    }

    /// The certificate the monitor would issue if the stream ended now,
    /// without disturbing the live state (frontiers are forked).
    pub fn provisional_certificate(&self) -> Certificate {
        self.fork().conclude().0
    }

    /// Finishes the stream: resolves every remaining window and queue and
    /// issues the certificate, together with all violations flagged
    /// (including any found only at finish time).
    pub fn finish(self) -> (Certificate, Vec<Violation>) {
        self.conclude()
    }

    fn fork(&self) -> Self {
        OnlineCertifier {
            property: self.property,
            spec: self.spec.clone(),
            rel: self.rel.clone(),
            retire: self.retire,
            last_stamp: self.last_stamp,
            observed: self.observed,
            open: self.open.clone(),
            committed: self.committed.clone(),
            aborted: self.aborted.clone(),
            committed_objects: self.committed_objects.clone(),
            all_objects: self.all_objects.clone(),
            pathology: self.pathology,
            mirror: self.mirror.clone(),
            dynamic: self.dynamic.iter().map(|(x, m)| (*x, m.fork())).collect(),
            tsm: self.tsm.as_ref().map(TsMachine::fork),
            violations: self.violations.clone(),
            retained: self.retained,
            peak_retained: self.peak_retained,
        }
    }

    fn conclude(mut self) -> (Certificate, Vec<Violation>) {
        let committed = self.committed.len();
        let cert = if let Some(kind) = self.pathology {
            if !self.retire {
                // Delegate to the post-hoc certifier over the mirror: the
                // retained stream decides pathological histories exactly.
                let h = History::from_events(self.mirror.iter().cloned());
                let mut c = match &self.rel {
                    Some(rel) => certify_with_relation(self.property, &h, &self.spec, rel.as_ref()),
                    None => certify(self.property, &h, &self.spec),
                };
                c.method = Method::Online;
                c
            } else {
                Certificate {
                    property: self.property,
                    method: Method::Online,
                    verdict: Verdict::Unknown(format!(
                        "{} — outside the basic discipline; the retiring monitor \
                         cannot replay the full history (the post-hoc certifier \
                         decides such histories up to {MAX_FALLBACK_ACTIVITIES} \
                         committed activities)",
                        kind.describe()
                    )),
                    committed,
                    objects: match self.property {
                        Property::Dynamic => self.committed_objects.len(),
                        _ => self.all_objects.len(),
                    },
                }
            }
        } else {
            match self.property {
                Property::Dynamic => {
                    let objects = self.committed_objects.len();
                    // `Refuted` dominates `Unknown` across objects: one
                    // object the streaming reduction could not decide
                    // does not soften a definite violation on another
                    // (mirrors the post-hoc certifier's precedence).
                    let mut verdict = Verdict::Certified;
                    for x in &self.committed_objects {
                        if let Some(mon) = self.dynamic.remove(x) {
                            let v = mon.conclude(&mut self.violations);
                            match v {
                                Verdict::Refuted(_) => {
                                    verdict = v;
                                    break;
                                }
                                Verdict::Unknown(_) => {
                                    if matches!(verdict, Verdict::Certified) {
                                        verdict = v;
                                    }
                                }
                                Verdict::Certified => {}
                            }
                        }
                    }
                    Certificate {
                        property: self.property,
                        method: Method::Online,
                        verdict,
                        committed,
                        objects,
                    }
                }
                Property::Static | Property::Hybrid => {
                    let tsm = self.tsm.take().expect("timestamp machine exists");
                    let verdict =
                        tsm.conclude(&self.spec, &mut self.violations, &mut self.retained);
                    Certificate {
                        property: self.property,
                        method: Method::Online,
                        verdict,
                        committed,
                        objects: self.all_objects.len(),
                    }
                }
            }
        };
        (cert, self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::paper;
    use atomicity_spec::{op, Value};

    fn feed(cert: &mut OnlineCertifier, events: &[Event]) -> Vec<Violation> {
        let mut out = Vec::new();
        for (i, e) in events.iter().enumerate() {
            if let Some(v) = cert.observe(i as u64, e) {
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn serial_inserts_certify_online() {
        let spec = paper::set_system();
        let x = paper::X;
        let mut events = Vec::new();
        for i in 1..=50u32 {
            let a = ActivityId::new(i);
            events.push(Event::invoke(a, x, op("insert", [i64::from(i)])));
            events.push(Event::respond(a, x, Value::ok()));
            events.push(Event::commit(a, x));
        }
        let mut cert = OnlineCertifier::new(Property::Dynamic, spec, None);
        let viols = feed(&mut cert, &events);
        assert!(viols.is_empty());
        // Retirement keeps the window flat on a serial stream.
        assert!(
            cert.dynamic[&x].window_ops() <= 1,
            "serial stream should retire continuously"
        );
        let (c, _) = cert.finish();
        assert_eq!(c.verdict, Verdict::Certified, "{c}");
        assert_eq!(c.committed, 50);
        assert_eq!(c.objects, 1);
        assert_eq!(c.method, Method::Online);
    }

    #[test]
    fn mid_run_violation_is_flagged_at_the_offending_commit() {
        let spec = paper::set_system();
        let x = paper::X;
        let (a, b) = (ActivityId::new(1), ActivityId::new(2));
        // b observes a's insert as absent after a committed: the only
        // precedes-consistent order is rejected.
        let events = vec![
            Event::invoke(a, x, op("insert", [3])),
            Event::respond(a, x, Value::ok()),
            Event::commit(a, x),
            Event::invoke(b, x, op("member", [3])),
            Event::respond(b, x, Value::from(false)),
            Event::commit(b, x),
        ];
        let mut cert = OnlineCertifier::new(Property::Dynamic, spec.clone(), None);
        let viols = feed(&mut cert, &events);
        assert_eq!(viols.len(), 1, "flagged exactly at b's commit");
        assert_eq!(viols[0].stamp, 5);
        assert_eq!(viols[0].object, Some(x));
        let (c, _) = cert.finish();
        assert!(matches!(c.verdict, Verdict::Refuted(_)), "{c}");
        // Agrees with the post-hoc certifier.
        let h = History::from_events(events);
        let post = certify(Property::Dynamic, &h, &spec);
        assert!(c.verdict.agrees_with(&post.verdict));
    }

    #[test]
    fn timestamped_stream_certifies_and_refutes() {
        let spec = paper::set_system();
        let x = paper::X;
        let (a, b) = (ActivityId::new(1), ActivityId::new(2));
        let good = vec![
            Event::initiate(a, x, 1),
            Event::initiate(b, x, 2),
            Event::invoke(a, x, op("insert", [3])),
            Event::respond(a, x, Value::ok()),
            Event::invoke(b, x, op("member", [3])),
            Event::respond(b, x, Value::from(true)),
            Event::commit(a, x),
            Event::commit(b, x),
        ];
        let mut cert = OnlineCertifier::new(Property::Static, spec.clone(), None);
        feed(&mut cert, &good);
        let (c, _) = cert.finish();
        assert_eq!(c.verdict, Verdict::Certified, "{c}");
        let post = certify(Property::Static, &History::from_events(good), &spec);
        assert!(c.verdict.agrees_with(&post.verdict));
        assert_eq!(c.committed, post.committed);
        assert_eq!(c.objects, post.objects);

        // Timestamp order b < a contradicts the observed values.
        let bad = vec![
            Event::initiate(a, x, 2),
            Event::initiate(b, x, 1),
            Event::invoke(a, x, op("insert", [3])),
            Event::respond(a, x, Value::ok()),
            Event::invoke(b, x, op("member", [3])),
            Event::respond(b, x, Value::from(true)),
            Event::commit(a, x),
            Event::commit(b, x),
        ];
        let mut cert = OnlineCertifier::new(Property::Static, spec.clone(), None);
        feed(&mut cert, &bad);
        let (c, _) = cert.finish();
        assert!(matches!(c.verdict, Verdict::Refuted(_)), "{c}");
        let post = certify(Property::Static, &History::from_events(bad), &spec);
        assert!(c.verdict.agrees_with(&post.verdict));
    }

    #[test]
    fn missing_timestamp_refutes_like_post_hoc() {
        let spec = paper::set_system();
        let x = paper::X;
        let a = ActivityId::new(1);
        let events = vec![
            Event::invoke(a, x, op("insert", [3])),
            Event::respond(a, x, Value::ok()),
            Event::commit(a, x), // no timestamp event anywhere
        ];
        let mut cert = OnlineCertifier::new(Property::Static, spec.clone(), None);
        feed(&mut cert, &events);
        let (c, _) = cert.finish();
        assert!(matches!(c.verdict, Verdict::Refuted(_)), "{c}");
        let post = certify(Property::Static, &History::from_events(events), &spec);
        assert!(c.verdict.agrees_with(&post.verdict));
    }

    #[test]
    fn contended_commuting_stream_uses_streaming_table_reduction() {
        let spec = paper::bank_system();
        let y = paper::Y;
        let mut events = Vec::new();
        // 20 deposits, all responses before all commits: every pair is
        // incomparable (post-hoc: table reduction).
        for i in 1..=20u32 {
            let a = ActivityId::new(i);
            events.push(Event::invoke(a, y, op("deposit", [5])));
            events.push(Event::respond(a, y, Value::ok()));
        }
        for i in 1..=20u32 {
            events.push(Event::commit(ActivityId::new(i), y));
        }
        let deposits =
            |p: &Operation, q: &Operation| p.name() == "deposit" && q.name() == "deposit";
        let rel: Arc<dyn CommutesRel> = Arc::new(deposits);
        let mut cert = OnlineCertifier::new(Property::Dynamic, spec.clone(), Some(rel.clone()));
        feed(&mut cert, &events);
        // Summarized mode keeps no per-activity operations.
        assert!(cert.dynamic[&y].summarized);
        let (c, _) = cert.finish();
        assert_eq!(c.verdict, Verdict::Certified, "{c}");
        let h = History::from_events(events.clone());
        let post = certify_with_relation(Property::Dynamic, &h, &spec, &deposits);
        assert!(c.verdict.agrees_with(&post.verdict));
        assert_eq!(c.committed, post.committed);

        // Without the relation: unknown, both post-hoc and online.
        let mut cert = OnlineCertifier::new(Property::Dynamic, spec.clone(), None);
        feed(&mut cert, &events);
        let (c, _) = cert.finish();
        assert!(matches!(c.verdict, Verdict::Unknown(_)), "{c}");
        let post = certify(Property::Dynamic, &h, &spec);
        assert!(c.verdict.agrees_with(&post.verdict));
    }

    #[test]
    fn respond_after_commit_is_unknown_retiring_and_exact_retaining() {
        let spec = paper::set_system();
        let x = paper::X;
        let a = ActivityId::new(1);
        let events = vec![
            Event::invoke(a, x, op("insert", [1])),
            Event::commit(a, x),
            Event::respond(a, x, Value::ok()),
        ];
        let h = History::from_events(events.clone());
        let post = certify(Property::Dynamic, &h, &spec);

        let mut retiring = OnlineCertifier::new(Property::Dynamic, spec.clone(), None);
        feed(&mut retiring, &events);
        let (c, _) = retiring.finish();
        assert!(matches!(c.verdict, Verdict::Unknown(_)), "{c}");

        let mut retaining = OnlineCertifier::new_retaining(Property::Dynamic, spec.clone(), None);
        feed(&mut retaining, &events);
        let (c, _) = retaining.finish();
        assert!(c.verdict.agrees_with(&post.verdict), "{c} vs {post}");
        assert_eq!(c.committed, post.committed);
        assert_eq!(c.objects, post.objects);
    }

    #[test]
    fn provisional_certificate_does_not_disturb_the_stream() {
        let spec = paper::set_system();
        let x = paper::X;
        let mut cert = OnlineCertifier::new(Property::Dynamic, spec.clone(), None);
        let mut stamp = 0u64;
        for i in 1..=10u32 {
            let a = ActivityId::new(i);
            for e in [
                Event::invoke(a, x, op("insert", [i64::from(i)])),
                Event::respond(a, x, Value::ok()),
                Event::commit(a, x),
            ] {
                cert.observe(stamp, &e);
                stamp += 1;
            }
            let p = cert.provisional_certificate();
            assert_eq!(p.verdict, Verdict::Certified, "{p}");
            assert_eq!(p.committed, i as usize);
        }
        let (c, _) = cert.finish();
        assert_eq!(c.verdict, Verdict::Certified);
        assert_eq!(c.committed, 10);
    }

    #[test]
    fn refutation_on_one_object_dominates_an_undecidable_other() {
        use atomicity_spec::specs::IntSetSpec;
        use atomicity_spec::ObjectId;
        // Object Y is contended past the enumeration bound with no
        // relation (undecidable, scanned first); object 3 carries a
        // definite spec violation. The combined verdict must refute.
        let spec = paper::bank_system().with_object(ObjectId::new(3), IntSetSpec::new());
        let mut mon = OnlineCertifier::new(Property::Dynamic, spec, None);
        let mut events = Vec::new();
        for i in 1..=20u32 {
            let a = ActivityId::new(i);
            events.push(Event::invoke(a, paper::Y, op("deposit", [5])));
            events.push(Event::respond(a, paper::Y, Value::ok()));
        }
        for i in 1..=20u32 {
            events.push(Event::commit(ActivityId::new(i), paper::Y));
        }
        let liar = ActivityId::new(100);
        let obj = ObjectId::new(3);
        events.push(Event::invoke(liar, obj, op("member", [5])));
        events.push(Event::respond(liar, obj, Value::from(true)));
        events.push(Event::commit(liar, obj));
        feed(&mut mon, &events);
        let (c, _) = mon.finish();
        assert!(matches!(&c.verdict, Verdict::Refuted(_)), "{c}");
    }
}
