//! The tap-pumping thread: connects a recorder [`LogTap`] to an
//! [`OnlineCertifier`] so certification proceeds concurrently with the
//! workload.
//!
//! The runner polls the tap's merge frontier, feeds every newly stable
//! `(stamp, event)` pair to the monitor, and publishes progress (events
//! observed, operations retained) to the engine's
//! [`MetricsRegistry`] so the e16 experiment can gauge the monitor's
//! memory high-water mark from the same snapshot that carries engine
//! throughput. On [`OnlineHandle::finish`] the runner drains the tap to
//! quiescence before concluding, so no recorded event is missed.

use crate::monitor::OnlineCertifier;
use atomicity_core::{LogTap, MetricsRegistry};
use atomicity_lint::{Certificate, Violation};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the certifier thread produced once the stream was drained.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The final certificate (method is always [`Method::Online`]).
    ///
    /// [`Method::Online`]: atomicity_lint::Method::Online
    pub certificate: Certificate,
    /// Every violation flagged, in stream order, including any found only
    /// at conclusion time.
    pub violations: Vec<Violation>,
    /// Events consumed from the tap.
    pub observed: u64,
    /// High-water mark of retained operations/events.
    pub peak_retained: usize,
}

/// Handle to a running certifier thread; dropped handles detach (the
/// thread keeps pumping until its tap runs dry after a stop request, so
/// always prefer [`OnlineHandle::finish`]).
pub struct OnlineHandle {
    stop: Arc<AtomicBool>,
    join: JoinHandle<OnlineOutcome>,
}

impl OnlineHandle {
    /// Signals the pump to stop once the tap is drained, waits for it,
    /// and returns the outcome.
    ///
    /// Call this *after* the workload has quiesced (no more events will
    /// be recorded): the pump drains every pending shard buffer before
    /// concluding, so the certificate covers the complete stream.
    pub fn finish(self) -> OnlineOutcome {
        self.stop.store(true, Ordering::Release);
        self.join.join().expect("certifier thread panicked")
    }

    /// Requests a stop without waiting (pair with
    /// [`OnlineHandle::finish`] or drop).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Spawns the certifier pump over `tap`, feeding `cert` and publishing
/// progress to `metrics`. `poll` is how long the pump sleeps when a poll
/// finds the tap empty; polls that find events loop immediately.
pub fn spawn(
    mut tap: LogTap,
    mut cert: OnlineCertifier,
    metrics: MetricsRegistry,
    poll: Duration,
) -> OnlineHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("atomicity-certify".into())
        .spawn(move || {
            loop {
                // Read the flag before polling: a stop observed here
                // happened before any event recorded after the final
                // drain below, so nothing recorded pre-stop is missed.
                let stopping = stop2.load(Ordering::Acquire);
                let batch = tap.poll(|stamp, event| {
                    cert.observe(stamp, &event);
                });
                if batch > 0 {
                    metrics.certifier_progress(batch as u64, cert.retained() as u64);
                    continue;
                }
                if stopping && tap.pending_len() == 0 {
                    break;
                }
                std::thread::sleep(poll);
            }
            let observed = cert.observed();
            let peak_retained = cert.peak_retained();
            metrics.certifier_progress(0, peak_retained as u64);
            let (certificate, violations) = cert.finish();
            OnlineOutcome {
                certificate,
                violations,
                observed,
                peak_retained,
            }
        })
        .expect("spawn certifier thread");
    OnlineHandle { stop, join }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::HistoryLog;
    use atomicity_lint::{Property, Verdict};
    use atomicity_spec::paper;
    use atomicity_spec::{op, ActivityId, Event, Value};

    #[test]
    fn pump_certifies_a_concurrently_recorded_stream() {
        let log = Arc::new(HistoryLog::with_shards(4));
        let tap = log.tap_retiring();
        let cert = OnlineCertifier::new(Property::Dynamic, paper::set_system(), None);
        let metrics = MetricsRegistry::new();
        let handle = spawn(tap, cert, metrics.clone(), Duration::from_millis(1));

        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let a = ActivityId::new(t * 1_000 + i + 1);
                        let x = paper::X;
                        log.record(Event::invoke(a, x, op("insert", [i64::from(a.raw())])));
                        log.record(Event::respond(a, x, Value::ok()));
                        log.record(Event::commit(a, x));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let outcome = handle.finish();
        assert_eq!(outcome.observed, 4 * 50 * 3);
        assert_eq!(outcome.certificate.committed, 4 * 50);
        assert!(
            matches!(
                outcome.certificate.verdict,
                Verdict::Certified | Verdict::Unknown(_)
            ),
            "disjoint inserts never refute: {}",
            outcome.certificate
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.certifier_observed, 4 * 50 * 3);
        assert_eq!(snap.certifier_retained_peak, outcome.peak_retained as u64);
    }
}
