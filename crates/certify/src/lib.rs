//! # atomicity-certify
//!
//! Online streaming atomicity certifier: a vector-clock monitor over the
//! live stamp stream.
//!
//! The post-hoc certifiers in `atomicity-lint` decide Weihl's local
//! atomicity properties from a *complete* merged history. This crate
//! decides them *while the workload runs*: the [`OnlineCertifier`]
//! consumes the sharded recorder's stamp stream event by event,
//! maintaining per-activity first-commit/last-response clocks — the
//! vector against which each new commit's `precedes` edges are read off —
//! and per-object incremental replay frontiers. Memory stays bounded by
//! watermark retirement: committed activities provably ordered before all
//! future joiners fold into the frontier and are dropped, so retained
//! state is proportional to the open-transaction footprint rather than
//! the history length.
//!
//! Three pieces:
//!
//! - [`OnlineCertifier`] — the monitor itself:
//!   [`observe`](OnlineCertifier::observe) returns a [`Violation`] the
//!   moment atomicity becomes unsatisfiable, and
//!   [`finish`](OnlineCertifier::finish) issues a [`Certificate`] that
//!   agrees with the post-hoc certifier (see the `monitor` module docs for
//!   the exact contract).
//! - [`spawn`] / [`OnlineHandle`] — the pump thread that connects a
//!   recorder [`LogTap`](atomicity_core::LogTap) to the monitor and
//!   publishes progress to the engine metrics.
//! - [`IdSet`] — interval-coalesced activity sets, the reason remembering
//!   every committed activity forever costs `O(id runs)` rather than
//!   `O(activities)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod idset;
pub mod monitor;
pub mod runner;

pub use idset::IdSet;
pub use monitor::OnlineCertifier;
pub use runner::{spawn, OnlineHandle, OnlineOutcome};

// Re-export the certificate vocabulary so downstream users of the online
// monitor need not depend on the analysis crate directly.
pub use atomicity_lint::{Certificate, Method, Property, Verdict, Violation};
