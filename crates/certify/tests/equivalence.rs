//! Agreement proptests: the online monitor against the post-hoc
//! certifier and the exhaustive checker.
//!
//! Three layers of evidence, per the crate's agreement contract:
//!
//! 1. **Arbitrary event soups, retain-all mode.** The monitor with
//!    retirement off must agree with [`certify`] in verdict kind and in
//!    the certificate's committed/object counts on *any* event sequence —
//!    including malformed ones (responses after commit, commits after
//!    abort, duplicate commits, timestamp chaos).
//! 2. **Disciplined streams, both modes.** On streams obeying the
//!    engine's discipline (paired invoke/response, terminal commit/abort,
//!    monotone timestamps) the *retiring* monitor must also agree — this
//!    is the configuration e16 runs, where bounded memory matters.
//! 3. **Small universes.** Where the history is small enough for the
//!    exhaustive checker, decisive online verdicts must match
//!    [`is_dynamic_atomic`] exactly.

use atomicity_certify::OnlineCertifier;
use atomicity_lint::{certify, Property, Verdict};
use atomicity_spec::atomicity::is_dynamic_atomic;
use atomicity_spec::specs::{BankAccountSpec, IntSetSpec};
use atomicity_spec::{op, ActivityId, Event, EventKind, History, ObjectId, SystemSpec, Value};
use proptest::prelude::*;

const X: ObjectId = ObjectId::new(1);
const Y: ObjectId = ObjectId::new(2);
/// Deliberately left without a specification.
const Z: ObjectId = ObjectId::new(3);

fn system() -> SystemSpec {
    SystemSpec::new()
        .with_object(X, IntSetSpec::new())
        .with_object(Y, BankAccountSpec::new())
}

fn property(p: usize) -> Property {
    match p % 3 {
        0 => Property::Dynamic,
        1 => Property::Static,
        _ => Property::Hybrid,
    }
}

/// One raw tuple → one event; the decoding is total so proptest explores
/// the full space of (mal)formed streams.
type Raw = (u32, u32, usize, u8, u64);

fn decode((a, o, k, val, ts): Raw) -> Event {
    let act = ActivityId::new(1 + a % 4);
    let x = [X, Y, Z][(o % 3) as usize];
    let v = i64::from(val % 3);
    match k % 8 {
        0 => Event::invoke(act, x, op("insert", [v])),
        1 => Event::invoke(act, x, op("member", [v])),
        2 => Event::respond(act, x, Value::ok()),
        3 => Event::respond(act, x, Value::from(val % 2 == 0)),
        4 => Event::commit(act, x),
        5 => Event::commit_ts(act, x, 1 + ts % 5),
        6 => Event::abort(act, x),
        _ => Event::initiate(act, x, 1 + ts % 5),
    }
}

fn run_online(mut mon: OnlineCertifier, events: &[Event]) -> atomicity_lint::Certificate {
    for (i, e) in events.iter().enumerate() {
        mon.observe(i as u64, e);
    }
    mon.finish().0
}

fn retaining_matches_post_hoc(prop_kind: Property, events: &[Event]) -> Result<(), TestCaseError> {
    let online = run_online(
        OnlineCertifier::new_retaining(prop_kind, system(), None),
        events,
    );
    let post = certify(prop_kind, &History::from_events(events.to_vec()), &system());
    prop_assert!(
        online.verdict.agrees_with(&post.verdict),
        "online {online} disagrees with post-hoc {post}"
    );
    prop_assert_eq!(online.committed, post.committed);
    prop_assert_eq!(online.objects, post.objects);
    Ok(())
}

/// Builds a disciplined stream: per-activity scripts (optional initiation,
/// invoke/respond pairs, terminal commit/abort) interleaved by `picks`,
/// then every timestamp event reassigned from a monotone counter in
/// stream order — exactly what the engine's Lamport clock guarantees.
/// Per-activity script: optional initiation, invoke/respond steps, terminal.
type Script = (bool, Vec<(u32, u8, u8)>, u8);

fn disciplined(scripts: &[Script], picks: &[u8]) -> Vec<Event> {
    let mut lanes: Vec<Vec<Event>> = Vec::new();
    for (i, (initiate, steps, end)) in scripts.iter().enumerate() {
        let act = ActivityId::new(1 + i as u32);
        let mut lane = Vec::new();
        let home = [X, Y][i % 2];
        if *initiate {
            lane.push(Event::initiate(act, home, 0)); // ts reassigned below
        }
        for &(o, kind, val) in steps {
            let x = [X, Y, Z][(o % 3) as usize];
            let v = i64::from(val % 3);
            match kind % 3 {
                0 => {
                    lane.push(Event::invoke(act, x, op("insert", [v])));
                    lane.push(Event::respond(act, x, Value::ok()));
                }
                1 => {
                    lane.push(Event::invoke(act, x, op("member", [v])));
                    lane.push(Event::respond(act, x, Value::from(val % 2 == 0)));
                }
                _ => {
                    lane.push(Event::invoke(act, x, op("deposit", [v])));
                    lane.push(Event::respond(act, x, Value::ok()));
                }
            }
        }
        match end % 3 {
            0 => lane.push(Event::commit(act, home)),
            1 => lane.push(Event::abort(act, home)),
            _ => {} // left open: aborted implicitly by never committing
        }
        lanes.push(lane);
    }
    let mut idx = vec![0usize; lanes.len()];
    let mut out = Vec::new();
    let mut pi = 0usize;
    loop {
        let live: Vec<usize> = (0..lanes.len())
            .filter(|&k| idx[k] < lanes[k].len())
            .collect();
        if live.is_empty() {
            break;
        }
        let k = live[picks.get(pi).copied().unwrap_or(0) as usize % live.len()];
        pi += 1;
        out.push(lanes[k][idx[k]].clone());
        idx[k] += 1;
    }
    // Monotone timestamp reassignment in stream order.
    let mut clock = 0u64;
    for e in &mut out {
        match &mut e.kind {
            EventKind::Initiate(t) | EventKind::CommitTs(t) => {
                clock += 1;
                *t = clock;
            }
            _ => {}
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Layer 1: retain-all mode agrees with the post-hoc certifier on
    /// arbitrary soups, for all three properties.
    #[test]
    fn retaining_monitor_agrees_on_arbitrary_soups(
        raw in prop::collection::vec(
            (any::<u32>(), any::<u32>(), any::<usize>(), any::<u8>(), any::<u64>()),
            0..48,
        ),
        p in any::<usize>(),
    ) {
        let events: Vec<Event> = raw.into_iter().map(decode).collect();
        retaining_matches_post_hoc(property(p), &events)?;
    }

    /// Layer 2: on disciplined streams the retiring monitor agrees with
    /// the retain-all monitor, the post-hoc certifier, and — on small
    /// universes with decisive verdicts — the exhaustive checker.
    #[test]
    fn retiring_monitor_agrees_on_disciplined_streams(
        scripts in prop::collection::vec(
            (
                any::<bool>(),
                prop::collection::vec((any::<u32>(), any::<u8>(), any::<u8>()), 0..4),
                any::<u8>(),
            ),
            1..5,
        ),
        picks in prop::collection::vec(any::<u8>(), 0..64),
        p in any::<usize>(),
    ) {
        let prop_kind = property(p);
        let events = disciplined(&scripts, &picks);
        let retiring = run_online(
            OnlineCertifier::new(prop_kind, system(), None),
            &events,
        );
        let retaining = run_online(
            OnlineCertifier::new_retaining(prop_kind, system(), None),
            &events,
        );
        let h = History::from_events(events.clone());
        let post = certify(prop_kind, &h, &system());
        prop_assert!(
            retiring.verdict.agrees_with(&retaining.verdict),
            "retiring {retiring} disagrees with retaining {retaining}"
        );
        prop_assert!(
            retiring.verdict.agrees_with(&post.verdict),
            "retiring {retiring} disagrees with post-hoc {post}"
        );
        prop_assert_eq!(retiring.committed, post.committed);
        prop_assert_eq!(retiring.objects, post.objects);
        if prop_kind == Property::Dynamic && post.committed <= 5 {
            let exhaustive = is_dynamic_atomic(&h, &system());
            match &retiring.verdict {
                Verdict::Certified => prop_assert!(
                    exhaustive,
                    "online certified a history the exhaustive checker rejects"
                ),
                Verdict::Refuted(why) => prop_assert!(
                    !exhaustive,
                    "online refuted ({why}) a history the exhaustive checker accepts"
                ),
                Verdict::Unknown(_) => {}
            }
        }
    }
}

/// An injected non-atomic interleaving buried in a long certified stream
/// is flagged at the offending commit, with retirement active throughout.
#[test]
fn injected_violation_is_flagged_mid_stream_with_retirement_on() {
    let mut events = Vec::new();
    let mut next = 1u32;
    let mut serial_txn = |events: &mut Vec<Event>, v: i64| {
        let a = ActivityId::new(next);
        next += 1;
        events.push(Event::invoke(a, X, op("insert", [v])));
        events.push(Event::respond(a, X, Value::ok()));
        events.push(Event::commit(a, X));
    };
    for i in 0..400 {
        serial_txn(&mut events, i);
    }
    // The injection: `b` sees `a`'s committed insert as absent.
    let (a, b) = (ActivityId::new(90_001), ActivityId::new(90_002));
    events.push(Event::invoke(a, X, op("insert", [-7])));
    events.push(Event::respond(a, X, Value::ok()));
    events.push(Event::commit(a, X));
    let violating_commit = {
        events.push(Event::invoke(b, X, op("member", [-7])));
        events.push(Event::respond(b, X, Value::from(false)));
        events.push(Event::commit(b, X));
        events.len() as u64 - 1
    };
    for i in 0..400 {
        serial_txn(&mut events, 1_000 + i);
    }

    let mut mon = OnlineCertifier::new(Property::Dynamic, system(), None);
    let mut flagged_at = None;
    for (i, e) in events.iter().enumerate() {
        if let Some(v) = mon.observe(i as u64, e) {
            assert!(flagged_at.is_none(), "only one violation expected: {v}");
            flagged_at = Some(v.stamp);
        }
    }
    assert_eq!(
        flagged_at,
        Some(violating_commit),
        "the violation must surface at the offending commit, not at finish"
    );
    let peak = mon.peak_retained();
    let (cert, violations) = mon.finish();
    assert!(matches!(cert.verdict, Verdict::Refuted(_)), "{cert}");
    assert_eq!(violations.len(), 1);
    assert!(
        peak < 32,
        "retirement must keep the window flat around the injection (peak {peak})"
    );
    // And the post-hoc certifier agrees.
    let post = certify(Property::Dynamic, &History::from_events(events), &system());
    assert!(cert.verdict.agrees_with(&post.verdict));
}
