//! Watermark-retirement memory bounds: the retained set is proportional
//! to the open-transaction footprint (threads × open transactions), not
//! to the history length.

use std::sync::Arc;

use atomicity_certify::OnlineCertifier;
use atomicity_core::CommutesRel;
use atomicity_lint::{certify_with_relation, Property, Verdict};
use atomicity_spec::specs::{BankAccountSpec, IntSetSpec};
use atomicity_spec::{op, ActivityId, Event, History, ObjectId, Operation, SystemSpec, Value};

fn set_system_with(objects: u32) -> SystemSpec {
    let mut spec = SystemSpec::new();
    for o in 1..=objects {
        spec = spec.with_object(ObjectId::new(o), IntSetSpec::new());
    }
    spec
}

/// A single sequential lane: retained state never exceeds one
/// transaction's footprint no matter how long the stream runs.
#[test]
fn sequential_stream_retains_o_of_one() {
    let mut mon = OnlineCertifier::new(Property::Dynamic, set_system_with(1), None);
    let x = ObjectId::new(1);
    let mut stamp = 0u64;
    const TXNS: u32 = 5_000;
    for i in 1..=TXNS {
        let a = ActivityId::new(i);
        for e in [
            Event::invoke(a, x, op("insert", [i64::from(i)])),
            Event::respond(a, x, Value::ok()),
            Event::commit(a, x),
        ] {
            mon.observe(stamp, &e);
            stamp += 1;
        }
    }
    let peak = mon.peak_retained();
    assert!(
        peak <= 4,
        "sequential stream must retire continuously: peak {peak} after {TXNS} txns"
    );
    let (cert, _) = mon.finish();
    assert_eq!(cert.verdict, Verdict::Certified, "{cert}");
    assert_eq!(cert.committed, TXNS as usize);
}

/// `T` pipelined lanes over `T` objects, each lane with at most one open
/// transaction: the peak retained set is `O(T)`, while the retain-all
/// mirror grows with the history.
#[test]
fn pipelined_lanes_retain_o_of_threads() {
    const T: u32 = 8;
    const ROUNDS: u32 = 1_000;
    let spec = set_system_with(T);
    let mut retiring = OnlineCertifier::new(Property::Dynamic, spec.clone(), None);
    let mut retaining = OnlineCertifier::new_retaining(Property::Dynamic, spec, None);
    let mut stamp = 0u64;
    let feed = |e: &Event, stamp: &mut u64, a: &mut OnlineCertifier, b: &mut OnlineCertifier| {
        a.observe(*stamp, e);
        b.observe(*stamp, e);
        *stamp += 1;
    };
    for r in 0..ROUNDS {
        // Every lane works its own object…
        for t in 0..T {
            let a = ActivityId::new(1 + r * T + t);
            let x = ObjectId::new(1 + t);
            feed(
                &Event::invoke(a, x, op("insert", [i64::from(r)])),
                &mut stamp,
                &mut retiring,
                &mut retaining,
            );
            feed(
                &Event::respond(a, x, Value::ok()),
                &mut stamp,
                &mut retiring,
                &mut retaining,
            );
        }
        // …then the round's transactions commit.
        for t in 0..T {
            let a = ActivityId::new(1 + r * T + t);
            let x = ObjectId::new(1 + t);
            feed(
                &Event::commit(a, x),
                &mut stamp,
                &mut retiring,
                &mut retaining,
            );
        }
    }
    let peak = retiring.peak_retained();
    let bound = 4 * T as usize;
    assert!(
        peak <= bound,
        "retained set must be O(threads × open txns): peak {peak} > {bound}"
    );
    assert!(
        retaining.peak_retained() as u32 >= ROUNDS * T,
        "the retain-all mirror grows with the history (peak {})",
        retaining.peak_retained()
    );
    let (r_cert, _) = retiring.finish();
    let (m_cert, _) = retaining.finish();
    assert_eq!(r_cert.verdict, Verdict::Certified, "{r_cert}");
    assert!(r_cert.verdict.agrees_with(&m_cert.verdict));
    assert_eq!(r_cert.committed, (ROUNDS * T) as usize);
    assert_eq!(r_cert.objects, T as usize);
}

/// A starved transaction — parked by an engine wait queue with a stale
/// last response while hundreds of others commit on the same object —
/// must not balloon the retained set. Its stale response stamp blocks
/// watermark retirement for its whole lifetime, so under a commutativity
/// relation the monitor folds the total window into the streaming table
/// reduction instead of buffering every commit until the straggler
/// resolves.
#[test]
fn starved_open_transaction_keeps_window_bounded() {
    const N: u32 = 2_000;
    let x = ObjectId::new(1);
    let spec = SystemSpec::new().with_object(x, BankAccountSpec::new());
    let rel: Arc<dyn CommutesRel> =
        Arc::new(|p: &Operation, q: &Operation| p.name() == "deposit" && q.name() == "deposit");
    let mut mon = OnlineCertifier::new(Property::Dynamic, spec.clone(), Some(Arc::clone(&rel)));
    let straggler = ActivityId::new(N + 1);
    let mut events: Vec<Event> = vec![
        Event::invoke(straggler, x, op("deposit", [1])),
        Event::respond(straggler, x, Value::ok()),
    ];
    for i in 1..=N {
        let a = ActivityId::new(i);
        events.push(Event::invoke(a, x, op("deposit", [2])));
        events.push(Event::respond(a, x, Value::ok()));
        events.push(Event::commit(a, x));
    }
    events.push(Event::commit(straggler, x));
    for (i, e) in events.iter().enumerate() {
        mon.observe(i as u64 + 1, e);
    }
    let peak = mon.peak_retained();
    assert!(
        peak <= 40,
        "a single starved transaction must not make retention O(history): peak {peak}"
    );
    let (cert, _) = mon.finish();
    let h = History::from_events(events.iter().cloned());
    let post = certify_with_relation(Property::Dynamic, &h, &spec, rel.as_ref());
    assert!(
        cert.verdict.agrees_with(&post.verdict),
        "online {:?} vs post-hoc {:?}",
        cert.verdict,
        post.verdict
    );
    assert_eq!(cert.verdict, Verdict::Certified, "{:?}", cert.verdict);
    assert_eq!(cert.committed, N as usize + 1);
}
