//! The observability layer: transaction tracing, latency histograms, and
//! the abort-reason taxonomy.
//!
//! The paper's comparisons are about *why* one local atomicity property
//! admits more concurrency than another; this module makes the runtime
//! answer that question quantitatively. A [`MetricsRegistry`] aggregates,
//! per protocol run:
//!
//! - **Event traces** — a bounded, sharded, lock-free ring buffer of
//!   `begin / invoke / block / prepare / commit / abort` records with
//!   monotonic timestamps ([`TraceBuffer`]).
//! - **Latency histograms** — log₂-bucketed distributions of invoke
//!   latency, block-wait time, and commit-path time
//!   ([`LatencyHistogram`]), from which p50/p95/p99 are derived.
//! - **Abort taxonomy** — aborts keyed by the stable
//!   [`AbortReason`] codes of [`crate::TxnError`].
//!
//! Each object registered with an enabled registry gets an
//! [`ObjectMetrics`] handle; the always-on [`ObjectStats`] counters live
//! behind the same handle, so engines record through one interface.
//!
//! # Zero cost when disabled
//!
//! A disabled registry ([`MetricsRegistry::disabled`], the default) holds
//! no allocation at all: handles are detached, [`Stopwatch`]es come back
//! disarmed (no `Instant::now()` call), and every record method reduces to
//! a branch on an `Option` that is `None`. Only the exact-count
//! [`ObjectStats`] counters — which pre-date this module and which tests
//! rely on — are recorded unconditionally. The measured overhead of the
//! disabled path on the E8 stress workload is reported in EXPERIMENTS.md.
//!
//! # The trace ring, without `unsafe`
//!
//! The crate forbids `unsafe`, so the ring cannot hand out `&mut` slots.
//! Instead each slot is a seqlock-style triple of `AtomicU64`s: a writer
//! claims a slot (sharded `fetch_add` cursor), marks its sequence word
//! busy, stores the two payload words, then publishes the final sequence
//! stamp. A reader accepts a slot only if the sequence word is stable and
//! identical before and after reading the payload; a torn read is simply
//! skipped. The trace is advisory monitoring data — dropping a record
//! under a rare race is acceptable, corrupting memory is not, and the
//! all-atomic representation rules the latter out by construction.

use crate::error::AbortReason;
use crate::stats::{ObjectStats, StatsSnapshot};
use atomicity_spec::{ActivityId, ObjectId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of trace shards; a small power of two, mirroring the history
/// log's sharding so worker threads rarely share a cursor.
const TRACE_SHARDS: usize = 16;

/// Default trace-ring capacity per shard (slots). With 16 shards this
/// retains the most recent ~32k events of a run.
const TRACE_SLOTS_PER_SHARD: usize = 2048;

/// Number of log₂ latency buckets. Bucket `k >= 1` holds durations in
/// `[2^(k-1), 2^k)` nanoseconds; bucket 0 holds zero. 63 buckets cover
/// every representable `u64` duration.
const HISTOGRAM_BUCKETS: usize = 64;

/// A stable per-thread token used to pick this thread's trace shard.
fn trace_token() -> u64 {
    use std::hash::{Hash, Hasher};
    thread_local! {
        static TOKEN: u64 = {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            hasher.finish()
        };
    }
    TOKEN.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Stopwatch

/// A wall-clock stopwatch that is free when metrics are disabled.
///
/// Handed out by [`MetricsRegistry::stopwatch`] /
/// [`ObjectMetrics::stopwatch`]: armed (one `Instant::now()`) when the
/// registry collects latency detail, disarmed (a `None`, no clock read)
/// otherwise. Record methods take the stopwatch back and only measure on
/// the armed path, so the disabled configuration never touches the clock.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// A stopwatch that measures nothing.
    pub fn disarmed() -> Self {
        Stopwatch(None)
    }

    /// A running stopwatch started now.
    pub fn armed() -> Self {
        Stopwatch(Some(Instant::now()))
    }

    /// Whether the stopwatch is measuring.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the stopwatch was armed (`None` if disarmed).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|t| {
            let nanos = t.elapsed().as_nanos();
            u64::try_from(nanos).unwrap_or(u64::MAX)
        })
    }
}

// ---------------------------------------------------------------------------
// Latency histograms

/// A lock-free log₂-bucketed latency histogram (nanosecond durations).
///
/// Bucket `k >= 1` covers `[2^(k-1), 2^k)` ns; bucket 0 covers exactly 0.
/// Percentiles are answered from a [`HistogramSnapshot`] using each
/// bucket's midpoint as the representative value, so a reported p99 is
/// accurate to within a factor of ~1.5 — plenty for the order-of-magnitude
/// protocol comparisons the experiments make.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// The bucket index for a duration: 0 for 0 ns, else `⌊log₂ ns⌋ + 1`.
fn bucket_index(nanos: u64) -> usize {
    (64 - nanos.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The representative (midpoint) duration of a bucket.
fn bucket_midpoint(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        // Bucket k covers [2^(k-1), 2^k): midpoint 1.5 * 2^(k-1).
        let lo = 1u64 << (index - 1);
        lo + lo / 2
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`LatencyHistogram`] for the bucket bounds).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_nanos: u64,
}

impl HistogramSnapshot {
    /// The `p`-th percentile duration in nanoseconds (`p` in `0.0..=1.0`),
    /// using bucket midpoints; `None` on an empty histogram.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_midpoint(i));
            }
        }
        Some(bucket_midpoint(self.buckets.len().saturating_sub(1)))
    }

    /// The mean duration in nanoseconds (`None` on an empty histogram).
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum_nanos / self.count)
    }

    /// Adds `other`'s samples into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
    }
}

// ---------------------------------------------------------------------------
// Trace ring

/// The kind of a traced transaction event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// A transaction began.
    Begin,
    /// An invocation was admitted at an object.
    Invoke,
    /// An invocation blocked (one wait round) at an object.
    Block,
    /// Commit phase 1 started (participants asked to prepare).
    Prepare,
    /// The transaction committed.
    Commit,
    /// The transaction aborted.
    Abort,
}

impl TraceKind {
    const ALL: [TraceKind; 6] = [
        TraceKind::Begin,
        TraceKind::Invoke,
        TraceKind::Block,
        TraceKind::Prepare,
        TraceKind::Commit,
        TraceKind::Abort,
    ];

    fn code(self) -> u64 {
        TraceKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is in ALL") as u64
    }

    fn from_code(code: u64) -> Option<TraceKind> {
        TraceKind::ALL.get(code as usize).copied()
    }
}

/// One decoded trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Global order stamp (monotone across all shards).
    pub stamp: u64,
    /// Nanoseconds since the registry's epoch (48-bit, wraps after ~78h).
    pub nanos: u64,
    /// The event kind.
    pub kind: TraceKind,
    /// The transaction, if the event concerns one (`raw() == 0` never
    /// names a real transaction and encodes "none").
    pub txn: ActivityId,
    /// The object, for `Invoke`/`Block` events (0 for manager-level
    /// events).
    pub object: ObjectId,
    /// The abort reason, for `Abort` events that have one.
    pub reason: Option<AbortReason>,
}

/// One seqlock-style slot: `seq` is 0 when empty, `u64::MAX` while a write
/// is in flight, and `stamp + 1` once published.
#[derive(Debug)]
struct TraceSlot {
    seq: AtomicU64,
    word0: AtomicU64,
    word1: AtomicU64,
}

#[derive(Debug)]
struct TraceShard {
    cursor: AtomicU64,
    slots: Box<[TraceSlot]>,
}

/// A bounded, sharded, lock-free ring buffer of [`TraceRecord`]s.
///
/// Writers never block and never allocate; when the ring wraps, the
/// oldest records are overwritten (`dropped` in [`TraceBuffer::collect`]
/// reports how many). Readers run concurrently with writers and skip any
/// slot whose seqlock word changes under them.
#[derive(Debug)]
pub struct TraceBuffer {
    shards: Box<[TraceShard]>,
    stamp: AtomicU64,
}

/// The result of draining a [`TraceBuffer`]: the surviving records in
/// stamp order plus the count of records lost to ring wrap or torn reads.
#[derive(Debug, Clone, Default)]
pub struct TraceCollection {
    /// Decoded records, sorted by stamp.
    pub records: Vec<TraceRecord>,
    /// Records written but no longer readable (overwritten or torn).
    pub dropped: u64,
}

impl TraceBuffer {
    fn new(slots_per_shard: usize) -> Self {
        let slots_per_shard = slots_per_shard.max(1);
        TraceBuffer {
            shards: (0..TRACE_SHARDS)
                .map(|_| TraceShard {
                    cursor: AtomicU64::new(0),
                    slots: (0..slots_per_shard)
                        .map(|_| TraceSlot {
                            seq: AtomicU64::new(0),
                            word0: AtomicU64::new(0),
                            word1: AtomicU64::new(0),
                        })
                        .collect(),
                })
                .collect(),
            stamp: AtomicU64::new(0),
        }
    }

    /// Packs and publishes one record. `nanos` is truncated to 48 bits.
    fn record(&self, nanos: u64, kind: TraceKind, txn: u64, object: u64, reason: Option<u64>) {
        let shard = &self.shards[(trace_token() as usize) % self.shards.len()];
        let i = (shard.cursor.fetch_add(1, Ordering::Relaxed) as usize) % shard.slots.len();
        let slot = &shard.slots[i];
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
        let word0 = (kind.code() << 56)
            | (reason.map_or(0xFF, |r| r & 0xFF) << 48)
            | (nanos & 0x0000_FFFF_FFFF_FFFF);
        let word1 = (txn << 32) | (object & 0xFFFF_FFFF);
        // Seqlock write: mark busy, store payload, publish stamp + 1.
        slot.seq.store(u64::MAX, Ordering::Release);
        slot.word0.store(word0, Ordering::Release);
        slot.word1.store(word1, Ordering::Release);
        slot.seq.store(stamp + 1, Ordering::Release);
    }

    /// Total records ever written (including any since overwritten).
    pub fn written(&self) -> u64 {
        self.stamp.load(Ordering::Relaxed)
    }

    /// Drains a consistent-enough copy of the ring.
    pub fn collect(&self) -> TraceCollection {
        let mut records = Vec::new();
        for shard in self.shards.iter() {
            for slot in shard.slots.iter() {
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == 0 || seq == u64::MAX {
                    continue; // empty or mid-write
                }
                let word0 = slot.word0.load(Ordering::Acquire);
                let word1 = slot.word1.load(Ordering::Acquire);
                if slot.seq.load(Ordering::Acquire) != seq {
                    continue; // torn: overwritten while reading
                }
                let Some(kind) = TraceKind::from_code(word0 >> 56) else {
                    continue;
                };
                let reason_code = (word0 >> 48) & 0xFF;
                records.push(TraceRecord {
                    stamp: seq - 1,
                    nanos: word0 & 0x0000_FFFF_FFFF_FFFF,
                    kind,
                    txn: ActivityId::new((word1 >> 32) as u32),
                    object: ObjectId::new((word1 & 0xFFFF_FFFF) as u32),
                    reason: if reason_code == 0xFF {
                        None
                    } else {
                        AbortReason::ALL.get(reason_code as usize).copied()
                    },
                });
            }
        }
        records.sort_by_key(|r| r.stamp);
        let dropped = self.written().saturating_sub(records.len() as u64);
        TraceCollection { records, dropped }
    }
}

// ---------------------------------------------------------------------------
// Registry

/// The shared state behind an enabled registry.
#[derive(Debug)]
struct RegistryInner {
    /// Epoch for trace timestamps: nanoseconds are measured from here.
    epoch: Instant,
    trace: TraceBuffer,
    txns_begun: AtomicU64,
    txns_committed: AtomicU64,
    txns_aborted: AtomicU64,
    /// Commit-path latency: prepare start (or commit call) → completion.
    commit_ns: LatencyHistogram,
    /// Durable-log flush latency: one device sync (fsync) per sample.
    wal_flush_ns: LatencyHistogram,
    /// Durable-log group-commit batch sizes: records made durable per
    /// flush (1 for sync-each logs). Abuses the log₂ histogram for a
    /// count distribution: `count` = flushes, `sum_nanos` = records.
    wal_batch: LatencyHistogram,
    /// Aborts by [`AbortReason::index`]; unattributed aborts are the
    /// difference between `txns_aborted` and this array's sum.
    abort_reasons: [AtomicU64; 8],
    /// Events ingested by an online certifier tapping the stamp stream.
    certifier_observed: AtomicU64,
    /// High-water mark of the online certifier's retained-event set
    /// (open-activity state + held-back windows) — the bounded-memory
    /// gauge for watermark retirement.
    certifier_retained_peak: AtomicU64,
    /// Every object handle registered, for aggregate views.
    objects: Mutex<Vec<ObjectMetrics>>,
}

/// A shared, cloneable registry of transaction metrics.
///
/// The default ([`MetricsRegistry::disabled`]) collects nothing beyond
/// the always-on [`ObjectStats`] counters and costs a single `Option`
/// branch per record call. [`MetricsRegistry::new`] turns on event
/// tracing, latency histograms, and the abort taxonomy.
///
/// # Example
///
/// ```
/// use atomicity_core::trace::MetricsRegistry;
/// use atomicity_spec::ObjectId;
///
/// let registry = MetricsRegistry::new();
/// let object = registry.object(ObjectId::new(1));
/// let sw = object.stopwatch();
/// object.record_admission(atomicity_spec::ActivityId::new(1), &sw);
/// assert_eq!(registry.snapshot().objects[0].stats.admissions, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// An enabled registry with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(TRACE_SLOTS_PER_SHARD)
    }

    /// An enabled registry retaining `slots_per_shard × 16` trace records.
    pub fn with_trace_capacity(slots_per_shard: usize) -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner {
                epoch: Instant::now(),
                trace: TraceBuffer::new(slots_per_shard),
                txns_begun: AtomicU64::new(0),
                txns_committed: AtomicU64::new(0),
                txns_aborted: AtomicU64::new(0),
                commit_ns: LatencyHistogram::default(),
                wal_flush_ns: LatencyHistogram::default(),
                wal_batch: LatencyHistogram::default(),
                abort_reasons: std::array::from_fn(|_| AtomicU64::new(0)),
                certifier_observed: AtomicU64::new(0),
                certifier_retained_peak: AtomicU64::new(0),
                objects: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op registry: nothing is collected, nothing is allocated.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// Whether this registry collects tracing/latency/abort detail.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the registry's epoch, 48-bit truncated.
    fn now_ns(inner: &RegistryInner) -> u64 {
        u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Creates (and, when enabled, registers) the metrics handle for an
    /// object. On a disabled registry the handle is detached: its
    /// [`ObjectStats`] still count, but no detail is recorded.
    pub fn object(&self, id: ObjectId) -> ObjectMetrics {
        match &self.inner {
            None => ObjectMetrics::detached(id),
            Some(inner) => {
                let handle = ObjectMetrics {
                    inner: Arc::new(ObjectMetricsInner {
                        id,
                        stats: ObjectStats::default(),
                        detail: Some(ObjectDetail {
                            invoke_ns: LatencyHistogram::default(),
                            block_ns: LatencyHistogram::default(),
                            registry: Arc::clone(inner),
                        }),
                    }),
                };
                inner.objects.lock().push(handle.clone());
                handle
            }
        }
    }

    /// A stopwatch, armed iff the registry is enabled.
    pub fn stopwatch(&self) -> Stopwatch {
        if self.inner.is_some() {
            Stopwatch::armed()
        } else {
            Stopwatch::disarmed()
        }
    }

    /// Records a transaction begin.
    pub fn txn_begun(&self, txn: ActivityId) {
        if let Some(inner) = &self.inner {
            inner.txns_begun.fetch_add(1, Ordering::Relaxed);
            inner.trace.record(
                Self::now_ns(inner),
                TraceKind::Begin,
                u64::from(txn.raw()),
                0,
                None,
            );
        }
    }

    /// Records the start of commit phase 1 (prepare).
    pub fn txn_prepare(&self, txn: ActivityId) {
        if let Some(inner) = &self.inner {
            inner.trace.record(
                Self::now_ns(inner),
                TraceKind::Prepare,
                u64::from(txn.raw()),
                0,
                None,
            );
        }
    }

    /// Records a commit; `commit_ns` is the measured commit-path time
    /// (from an armed [`Stopwatch`]), if any.
    pub fn txn_committed(&self, txn: ActivityId, commit_ns: Option<u64>) {
        if let Some(inner) = &self.inner {
            inner.txns_committed.fetch_add(1, Ordering::Relaxed);
            if let Some(ns) = commit_ns {
                inner.commit_ns.record(ns);
            }
            inner.trace.record(
                Self::now_ns(inner),
                TraceKind::Commit,
                u64::from(txn.raw()),
                0,
                None,
            );
        }
    }

    /// Records an abort, attributed to `reason` when known.
    pub fn txn_aborted(&self, txn: ActivityId, reason: Option<AbortReason>) {
        if let Some(inner) = &self.inner {
            inner.txns_aborted.fetch_add(1, Ordering::Relaxed);
            if let Some(r) = reason {
                inner.abort_reasons[r.index()].fetch_add(1, Ordering::Relaxed);
            }
            inner.trace.record(
                Self::now_ns(inner),
                TraceKind::Abort,
                u64::from(txn.raw()),
                0,
                reason.map(|r| r.index() as u64),
            );
        }
    }

    /// Records an abort cause without counting an abort: error sites call
    /// this when they *return* a must-abort error; the manager counts the
    /// actual abort when the caller follows through.
    pub fn abort_cause(&self, reason: AbortReason) {
        if let Some(inner) = &self.inner {
            inner.abort_reasons[reason.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sum of the always-on counters across every registered object.
    pub fn aggregate_stats(&self) -> StatsSnapshot {
        match &self.inner {
            None => StatsSnapshot::default(),
            Some(inner) => inner.objects.lock().iter().map(|o| o.stats()).sum(),
        }
    }

    /// Records one durable-log flush: `batch` records were made durable
    /// by a device sync that took `flush_ns` nanoseconds. Sync-each logs
    /// record `batch = 1` per commit; group commit records the whole
    /// batch a single fsync retired. No-op on a disabled registry.
    pub fn wal_flush(&self, batch: u64, flush_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.wal_flush_ns.record(flush_ns);
            inner.wal_batch.record(batch);
        }
    }

    /// Reports online-certifier progress: `observed` newly ingested
    /// events and the certifier's current retained-event count. The
    /// retained count feeds a high-water-mark gauge
    /// ([`MetricsSnapshot::certifier_retained_peak`]) — the witness that
    /// watermark retirement keeps monitor memory bounded while the
    /// history grows. No-op on a disabled registry.
    pub fn certifier_progress(&self, observed: u64, retained_now: u64) {
        if let Some(inner) = &self.inner {
            inner
                .certifier_observed
                .fetch_add(observed, Ordering::Relaxed);
            inner
                .certifier_retained_peak
                .fetch_max(retained_now, Ordering::Relaxed);
        }
    }

    /// Drains the trace ring (empty on a disabled registry).
    pub fn trace_events(&self) -> TraceCollection {
        match &self.inner {
            None => TraceCollection::default(),
            Some(inner) => inner.trace.collect(),
        }
    }

    /// A point-in-time copy of everything the registry has collected.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => {
                let objects: Vec<ObjectMetricsSnapshot> =
                    inner.objects.lock().iter().map(|o| o.snapshot()).collect();
                let abort_reasons = AbortReason::ALL
                    .iter()
                    .map(|r| {
                        (
                            r.label().to_string(),
                            inner.abort_reasons[r.index()].load(Ordering::Relaxed),
                        )
                    })
                    .filter(|(_, n)| *n > 0)
                    .collect();
                let mut invoke_ns = HistogramSnapshot::default();
                let mut block_ns = HistogramSnapshot::default();
                for o in &objects {
                    invoke_ns.merge(&o.invoke_ns);
                    block_ns.merge(&o.block_ns);
                }
                MetricsSnapshot {
                    enabled: true,
                    txns_begun: inner.txns_begun.load(Ordering::Relaxed),
                    txns_committed: inner.txns_committed.load(Ordering::Relaxed),
                    txns_aborted: inner.txns_aborted.load(Ordering::Relaxed),
                    abort_reasons,
                    invoke_ns,
                    block_ns,
                    commit_ns: inner.commit_ns.snapshot(),
                    wal_flush_ns: inner.wal_flush_ns.snapshot(),
                    wal_batch: inner.wal_batch.snapshot(),
                    certifier_observed: inner.certifier_observed.load(Ordering::Relaxed),
                    certifier_retained_peak: inner.certifier_retained_peak.load(Ordering::Relaxed),
                    trace_written: inner.trace.written(),
                    objects,
                }
            }
        }
    }

    /// The snapshot rendered as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot())
            .expect("metrics snapshot serializes infallibly")
    }
}

// ---------------------------------------------------------------------------
// Per-object handles

/// Latency/trace detail attached to an [`ObjectMetrics`] handle when its
/// registry is enabled.
#[derive(Debug)]
struct ObjectDetail {
    invoke_ns: LatencyHistogram,
    block_ns: LatencyHistogram,
    registry: Arc<RegistryInner>,
}

#[derive(Debug)]
struct ObjectMetricsInner {
    id: ObjectId,
    stats: ObjectStats,
    detail: Option<ObjectDetail>,
}

/// The per-object metrics handle engines record through.
///
/// Replaces the old raw-`ObjectStats` plumbing: the always-on counters
/// live here (see [`ObjectMetrics::stats`]), and when the owning
/// [`MetricsRegistry`] is enabled the same calls also feed the latency
/// histograms, the trace ring, and the abort taxonomy.
#[derive(Debug, Clone)]
pub struct ObjectMetrics {
    inner: Arc<ObjectMetricsInner>,
}

impl ObjectMetrics {
    /// A handle not connected to any registry: counters only.
    pub fn detached(id: ObjectId) -> Self {
        ObjectMetrics {
            inner: Arc::new(ObjectMetricsInner {
                id,
                stats: ObjectStats::default(),
                detail: None,
            }),
        }
    }

    /// The object this handle records for.
    pub fn object_id(&self) -> ObjectId {
        self.inner.id
    }

    /// The always-on counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// A stopwatch, armed iff this handle collects latency detail.
    pub fn stopwatch(&self) -> Stopwatch {
        if self.inner.detail.is_some() {
            Stopwatch::armed()
        } else {
            Stopwatch::disarmed()
        }
    }

    fn trace(&self, kind: TraceKind, txn: ActivityId, reason: Option<u64>) {
        if let Some(detail) = &self.inner.detail {
            detail.registry.trace.record(
                MetricsRegistry::now_ns(&detail.registry),
                kind,
                u64::from(txn.raw()),
                u64::from(self.inner.id.raw()),
                reason,
            );
        }
    }

    /// Records a granted invocation; `sw` should have been taken from
    /// [`ObjectMetrics::stopwatch`] when the invocation entered the
    /// object, so its elapsed time is the invoke latency (inclusive of
    /// any block-and-retry rounds).
    pub fn record_admission(&self, txn: ActivityId, sw: &Stopwatch) {
        self.inner.stats.record_admission();
        if let Some(detail) = &self.inner.detail {
            if let Some(ns) = sw.elapsed_ns() {
                detail.invoke_ns.record(ns);
            }
            self.trace(TraceKind::Invoke, txn, None);
        }
    }

    /// Records that a granted invocation was admitted on a hot path that
    /// skipped the general admission check (synthesized-table hit,
    /// seqlock snapshot read). Always paired with
    /// [`ObjectMetrics::record_admission`].
    pub fn record_fast_admission(&self) {
        self.inner.stats.record_fast_admission();
    }

    /// Records one block-and-retry round.
    pub fn record_block_round(&self, txn: ActivityId) {
        self.inner.stats.record_block();
        self.trace(TraceKind::Block, txn, None);
    }

    /// Records the total time an invocation spent blocked, measured by a
    /// stopwatch armed when the invocation first had to wait.
    pub fn record_block_wait(&self, sw: &Stopwatch) {
        if let Some(detail) = &self.inner.detail {
            if let Some(ns) = sw.elapsed_ns() {
                detail.block_ns.record(ns);
            }
        }
    }

    /// Records a deadlock (wait-die) kill and its abort cause.
    pub fn record_deadlock_kill(&self, _txn: ActivityId) {
        self.inner.stats.record_deadlock_kill();
        if let Some(detail) = &self.inner.detail {
            detail.registry.abort_reasons[AbortReason::Deadlock.index()]
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a timestamp-conflict refusal and its abort cause.
    pub fn record_timestamp_conflict(&self, _txn: ActivityId) {
        self.inner.stats.record_timestamp_conflict();
        if let Some(detail) = &self.inner.detail {
            detail.registry.abort_reasons[AbortReason::TimestampConflict.index()]
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a timestamp-too-old refusal (abort cause only — the
    /// pre-existing counters have no bucket for it).
    pub fn record_timestamp_too_old(&self, _txn: ActivityId) {
        if let Some(detail) = &self.inner.detail {
            detail.registry.abort_reasons[AbortReason::TimestampTooOld.index()]
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a commit at this object.
    pub fn record_commit(&self, _txn: ActivityId) {
        self.inner.stats.record_commit();
    }

    /// Records an abort at this object.
    pub fn record_abort(&self, _txn: ActivityId) {
        self.inner.stats.record_abort();
    }

    /// A point-in-time copy of this object's metrics.
    pub fn snapshot(&self) -> ObjectMetricsSnapshot {
        let (invoke_ns, block_ns) = match &self.inner.detail {
            None => (HistogramSnapshot::default(), HistogramSnapshot::default()),
            Some(d) => (d.invoke_ns.snapshot(), d.block_ns.snapshot()),
        };
        ObjectMetricsSnapshot {
            object: self.inner.id.raw(),
            stats: self.stats(),
            invoke_ns,
            block_ns,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots (serde)

/// One object's slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMetricsSnapshot {
    /// The object's raw id.
    pub object: u32,
    /// The always-on counters.
    pub stats: StatsSnapshot,
    /// Invoke-latency distribution.
    pub invoke_ns: HistogramSnapshot,
    /// Block-wait distribution.
    pub block_ns: HistogramSnapshot,
}

/// Everything a [`MetricsRegistry`] has collected, as plain data.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Whether the registry was collecting (false ⇒ all zeros).
    pub enabled: bool,
    /// Transactions begun.
    pub txns_begun: u64,
    /// Transactions committed.
    pub txns_committed: u64,
    /// Transactions aborted.
    pub txns_aborted: u64,
    /// Abort causes by [`AbortReason::label`] (zero entries omitted).
    /// Causes are recorded where errors arise, so totals can exceed
    /// `txns_aborted` when one transaction hits several must-abort errors.
    pub abort_reasons: std::collections::BTreeMap<String, u64>,
    /// Invoke latency, merged across objects.
    pub invoke_ns: HistogramSnapshot,
    /// Block-wait time, merged across objects.
    pub block_ns: HistogramSnapshot,
    /// Commit-path time (prepare → completion).
    pub commit_ns: HistogramSnapshot,
    /// Durable-log flush (fsync) latency; empty unless a WAL reports in.
    pub wal_flush_ns: HistogramSnapshot,
    /// Durable-log batch-size distribution: records per flush
    /// (`count` = flushes performed, `sum_nanos` = records flushed).
    pub wal_batch: HistogramSnapshot,
    /// Events ingested by an online certifier (0 when no monitor ran).
    #[serde(default)]
    pub certifier_observed: u64,
    /// Peak retained-event count of the online certifier — the
    /// watermark-retirement memory bound witness.
    #[serde(default)]
    pub certifier_retained_peak: u64,
    /// Trace records written (≥ the count retained by the ring).
    pub trace_written: u64,
    /// Per-object detail.
    pub objects: Vec<ObjectMetricsSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        for k in 1..63 {
            let lo = 1u64 << (k - 1);
            assert_eq!(bucket_index(lo), k, "lower bound of bucket {k}");
            assert_eq!(
                bucket_index((1u64 << k) - 1),
                k,
                "upper bound of bucket {k}"
            );
            let mid = bucket_midpoint(k);
            assert!(mid >= lo && mid < (1u64 << k), "midpoint inside bucket {k}");
        }
    }

    #[test]
    fn histogram_percentiles_walk_buckets() {
        let h = LatencyHistogram::default();
        assert_eq!(h.snapshot().percentile(0.5), None);
        for _ in 0..90 {
            h.record(100); // bucket 7: [64, 128)
        }
        for _ in 0..10 {
            h.record(1 << 20); // bucket 21
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.percentile(0.5), Some(bucket_midpoint(7)));
        assert_eq!(snap.percentile(0.9), Some(bucket_midpoint(7)));
        assert_eq!(snap.percentile(0.99), Some(bucket_midpoint(21)));
        assert_eq!(snap.mean(), Some((90 * 100 + 10 * (1 << 20)) / 100));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.record(10);
        b.record(10);
        b.record(1000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum_nanos, 1020);
    }

    #[test]
    fn trace_roundtrips_records_in_stamp_order() {
        let buf = TraceBuffer::new(64);
        buf.record(5, TraceKind::Begin, 7, 0, None);
        buf.record(9, TraceKind::Invoke, 7, 3, None);
        buf.record(
            12,
            TraceKind::Abort,
            7,
            0,
            Some(AbortReason::Deadlock.index() as u64),
        );
        let got = buf.collect();
        assert_eq!(got.dropped, 0);
        assert_eq!(got.records.len(), 3);
        assert_eq!(got.records[0].kind, TraceKind::Begin);
        assert_eq!(got.records[0].nanos, 5);
        assert_eq!(got.records[1].object.raw(), 3);
        assert_eq!(got.records[2].reason, Some(AbortReason::Deadlock));
        assert!(got.records.windows(2).all(|w| w[0].stamp < w[1].stamp));
    }

    #[test]
    fn trace_ring_wraps_and_reports_drops() {
        let buf = TraceBuffer::new(4); // one thread → one shard of 4 slots
        for i in 0..100 {
            buf.record(i, TraceKind::Invoke, i, 1, None);
        }
        let got = buf.collect();
        assert_eq!(buf.written(), 100);
        assert_eq!(got.records.len(), 4, "ring retains its capacity");
        assert_eq!(got.dropped, 96);
        // The survivors are the most recent writes.
        assert!(got.records.iter().all(|r| r.stamp >= 96));
    }

    #[test]
    fn disabled_registry_collects_nothing_but_counters_work() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        assert!(!reg.stopwatch().is_armed());
        let obj = reg.object(ObjectId::new(1));
        assert!(!obj.stopwatch().is_armed());
        let txn = ActivityId::new(1);
        obj.record_admission(txn, &obj.stopwatch());
        obj.record_block_round(txn);
        obj.record_commit(txn);
        reg.txn_begun(txn);
        reg.txn_committed(txn, None);
        // The handle's counters still count (exact-count tests rely on
        // them), but the registry aggregates nothing.
        assert_eq!(obj.stats().admissions, 1);
        assert_eq!(obj.stats().blocks, 1);
        let snap = reg.snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.txns_begun, 0);
        assert!(reg.trace_events().records.is_empty());
    }

    #[test]
    fn enabled_registry_aggregates_objects_and_reasons() {
        let reg = MetricsRegistry::new();
        let txn = ActivityId::new(1);
        let a = reg.object(ObjectId::new(1));
        let b = reg.object(ObjectId::new(2));
        reg.txn_begun(txn);
        let sw = a.stopwatch();
        assert!(sw.is_armed());
        a.record_admission(txn, &sw);
        b.record_admission(txn, &b.stopwatch());
        b.record_deadlock_kill(txn);
        reg.txn_aborted(txn, Some(AbortReason::Deadlock));
        let snap = reg.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.txns_begun, 1);
        assert_eq!(snap.txns_aborted, 1);
        // One cause from the kill site plus one from the attributed abort.
        assert_eq!(snap.abort_reasons["deadlock"], 2);
        assert_eq!(snap.invoke_ns.count, 2);
        assert_eq!(reg.aggregate_stats().admissions, 2);
        assert_eq!(reg.aggregate_stats().deadlock_kills, 1);
        let kinds: Vec<TraceKind> = reg.trace_events().records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Begin,
                TraceKind::Invoke,
                TraceKind::Invoke,
                TraceKind::Abort
            ]
        );
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let reg = MetricsRegistry::new();
        let obj = reg.object(ObjectId::new(9));
        let txn = ActivityId::new(2);
        obj.record_admission(txn, &obj.stopwatch());
        reg.txn_committed(txn, Some(1234));
        let json = reg.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg.snapshot());
        assert_eq!(back.commit_ns.count, 1);
        assert_eq!(back.objects.len(), 1);
        assert_eq!(back.objects[0].object, 9);
    }

    #[test]
    fn concurrent_tracing_is_lossless_within_capacity() {
        let reg = MetricsRegistry::new();
        let obj = reg.object(ObjectId::new(1));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let obj = obj.clone();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let sw = obj.stopwatch();
                        obj.record_admission(ActivityId::new(t * 1000 + i), &sw);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(obj.stats().admissions, 800);
        let snap = reg.snapshot();
        assert_eq!(snap.invoke_ns.count, 800);
        let trace = reg.trace_events();
        assert_eq!(trace.records.len() as u64 + trace.dropped, 800);
        assert_eq!(trace.dropped, 0, "800 events fit in the default ring");
    }
}
