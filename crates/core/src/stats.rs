//! Per-object contention statistics.
//!
//! Each engine counts what its concurrency control actually did —
//! admissions, blocks, deadlock kills, timestamp conflicts — so workloads
//! can report *why* an engine is slow, not just that it is. All counters
//! are monotone and lock-free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters describing one object's concurrency-control work.
///
/// # Example
///
/// ```
/// use atomicity_core::stats::ObjectStats;
/// let stats = ObjectStats::default();
/// stats.record_admission();
/// assert_eq!(stats.snapshot().admissions, 1);
/// ```
#[derive(Debug, Default)]
pub struct ObjectStats {
    admissions: AtomicU64,
    fast_admissions: AtomicU64,
    blocks: AtomicU64,
    deadlock_kills: AtomicU64,
    timestamp_conflicts: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

/// A point-in-time copy of [`ObjectStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// Invocations admitted (a result was returned).
    pub admissions: u64,
    /// Of the admissions, how many were granted on a hot path that
    /// skipped the general admission check: a synthesized-table
    /// commutativity hit (no permutation replay) or a hybrid seqlock
    /// snapshot read (no object mutex).
    #[serde(default)]
    pub fast_admissions: u64,
    /// Times an invocation had to block and retry.
    pub blocks: u64,
    /// Invocations refused because waiting would deadlock.
    pub deadlock_kills: u64,
    /// Invocations refused with a timestamp conflict (static engine).
    pub timestamp_conflicts: u64,
    /// Transactions committed at this object.
    pub commits: u64,
    /// Transactions aborted at this object.
    pub aborts: u64,
}

impl ObjectStats {
    /// Records a granted invocation.
    pub fn record_admission(&self) {
        self.admissions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a granted invocation took a fast path (table hit or
    /// seqlock read) — always paired with [`ObjectStats::record_admission`].
    pub fn record_fast_admission(&self) {
        self.fast_admissions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one block-and-retry round.
    pub fn record_block(&self) {
        self.blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a deadlock kill.
    pub fn record_deadlock_kill(&self) {
        self.deadlock_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a timestamp conflict.
    pub fn record_timestamp_conflict(&self) {
        self.timestamp_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a commit at this object.
    pub fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an abort at this object.
    pub fn record_abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            admissions: self.admissions.load(Ordering::Relaxed),
            fast_admissions: self.fast_admissions.load(Ordering::Relaxed),
            blocks: self.blocks.load(Ordering::Relaxed),
            deadlock_kills: self.deadlock_kills.load(Ordering::Relaxed),
            timestamp_conflicts: self.timestamp_conflicts.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Adds `other`'s counters into `self` (workloads aggregate per-object
    /// snapshots into one system-wide figure).
    pub fn merge(&mut self, other: StatsSnapshot) {
        self.admissions += other.admissions;
        self.fast_admissions += other.fast_admissions;
        self.blocks += other.blocks;
        self.deadlock_kills += other.deadlock_kills;
        self.timestamp_conflicts += other.timestamp_conflicts;
        self.commits += other.commits;
        self.aborts += other.aborts;
    }
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;
    fn add(mut self, other: StatsSnapshot) -> StatsSnapshot {
        self.merge(other);
        self
    }
}

impl std::iter::Sum for StatsSnapshot {
    fn sum<I: Iterator<Item = StatsSnapshot>>(iter: I) -> StatsSnapshot {
        iter.fold(StatsSnapshot::default(), |acc, s| acc + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let s = ObjectStats::default();
        s.record_admission();
        s.record_admission();
        s.record_fast_admission();
        s.record_block();
        s.record_deadlock_kill();
        s.record_timestamp_conflict();
        s.record_commit();
        s.record_abort();
        let snap = s.snapshot();
        assert_eq!(snap.admissions, 2);
        assert_eq!(snap.fast_admissions, 1);
        assert_eq!(snap.blocks, 1);
        assert_eq!(snap.deadlock_kills, 1);
        assert_eq!(snap.timestamp_conflicts, 1);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.aborts, 1);
    }

    #[test]
    fn snapshot_is_copyable_default() {
        let snap = StatsSnapshot::default();
        let copy = snap;
        assert_eq!(copy, snap);
        assert_eq!(copy.admissions, 0);
    }

    #[test]
    fn snapshots_merge_and_sum() {
        let a = StatsSnapshot {
            admissions: 2,
            blocks: 1,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            admissions: 3,
            commits: 4,
            ..StatsSnapshot::default()
        };
        let total: StatsSnapshot = [a, b].into_iter().sum();
        assert_eq!(total.admissions, 5);
        assert_eq!(total.blocks, 1);
        assert_eq!(total.commits, 4);
    }
}
