//! Logical clocks for timestamp generation.
//!
//! Static atomicity needs a timestamp per activity chosen at start; hybrid
//! atomicity needs commit timestamps whose order is consistent with
//! `precedes` at every object. Both are served by a Lamport clock
//! ([Lamport 78], as suggested by [Bernstein & Goodman 82] and §4.3.3 of
//! the paper): a monotone counter that can also be advanced past observed
//! remote timestamps.

use atomicity_spec::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing logical clock.
///
/// `tick` returns a fresh, strictly increasing timestamp; `observe`
/// advances the clock past a timestamp received from elsewhere (used by the
/// distributed simulation to keep per-node clocks consistent with message
/// flow).
///
/// # Example
///
/// ```
/// use atomicity_core::LamportClock;
/// let clock = LamportClock::new();
/// let t1 = clock.tick();
/// let t2 = clock.tick();
/// assert!(t2 > t1);
/// clock.observe(100);
/// assert!(clock.tick() > 100);
/// ```
#[derive(Debug, Default)]
pub struct LamportClock {
    now: AtomicU64,
}

impl LamportClock {
    /// Creates a clock starting at 0 (first tick returns 1).
    pub fn new() -> Self {
        LamportClock {
            now: AtomicU64::new(0),
        }
    }

    /// Creates a clock whose first tick returns `start + 1`.
    ///
    /// Used by the simulation to model skewed per-node clocks (§4.2.3's
    /// "closely synchronized clocks" caveat).
    pub fn starting_at(start: Timestamp) -> Self {
        LamportClock {
            now: AtomicU64::new(start),
        }
    }

    /// Returns a fresh timestamp, strictly greater than all previous ticks
    /// and all observed timestamps.
    pub fn tick(&self) -> Timestamp {
        self.now.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Advances the clock to at least `ts` (subsequent ticks exceed `ts`).
    pub fn observe(&self, ts: Timestamp) {
        self.now.fetch_max(ts, Ordering::SeqCst);
    }

    /// The most recently issued or observed timestamp.
    pub fn now(&self) -> Timestamp {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ticks_are_strictly_increasing() {
        let c = LamportClock::new();
        let mut prev = 0;
        for _ in 0..100 {
            let t = c.tick();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn observe_advances_but_never_rewinds() {
        let c = LamportClock::new();
        c.observe(50);
        assert_eq!(c.now(), 50);
        c.observe(10);
        assert_eq!(c.now(), 50);
        assert_eq!(c.tick(), 51);
    }

    #[test]
    fn starting_at_models_skew() {
        let c = LamportClock::starting_at(1000);
        assert_eq!(c.tick(), 1001);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(LamportClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate timestamps issued");
    }
}
