//! Online transaction runtime implementing the three local atomicity
//! properties of Weihl, *"Data-dependent Concurrency Control and
//! Recovery"* (PODC 1983).
//!
//! The crate provides:
//!
//! - A [`TxnManager`] running one of three [`Protocol`]s — dynamic, static,
//!   or hybrid atomicity — with two-phase commit across participants,
//!   timestamp generation from a [`LamportClock`], and pluggable deadlock
//!   handling ([`DeadlockPolicy`]).
//! - Three engines turning any [`atomicity_spec::SequentialSpec`] into an
//!   atomic object: [`DynamicObject`] (§4.1), [`StaticObject`] (§4.2, a
//!   generalization of Reed's multi-version timestamps), and
//!   [`HybridObject`] (§4.3).
//! - A shared [`HistoryLog`] recording the *actual computation* as a
//!   formal history, so every execution can be checked against the paper's
//!   definitions with [`atomicity_spec::atomicity`].
//! - Recovery substrates ([`recovery`]): simulated stable storage,
//!   intentions-list redo, and undo-log rollback.
//!
//! # Example
//!
//! The paper's §5.1 bank account: concurrent withdrawals are admitted when
//! the balance covers both —
//!
//! ```
//! use atomicity_core::{TxnManager, Protocol, DynamicObject, AtomicObject};
//! use atomicity_spec::specs::BankAccountSpec;
//! use atomicity_spec::atomicity::is_dynamic_atomic;
//! use atomicity_spec::{op, ObjectId, SystemSpec, Value};
//!
//! let mgr = TxnManager::new(Protocol::Dynamic);
//! let acct = DynamicObject::new(ObjectId::new(1), BankAccountSpec::new(), &mgr);
//!
//! let funder = mgr.begin();
//! acct.invoke(&funder, op("deposit", [10]))?;
//! mgr.commit(funder)?;
//!
//! let b = mgr.begin();
//! let c = mgr.begin();
//! assert_eq!(acct.invoke(&b, op("withdraw", [4]))?, Value::ok());
//! assert_eq!(acct.invoke(&c, op("withdraw", [3]))?, Value::ok()); // concurrent!
//! mgr.commit(c)?;
//! mgr.commit(b)?;
//!
//! let spec = SystemSpec::new().with_object(ObjectId::new(1), BankAccountSpec::new());
//! assert!(is_dynamic_atomic(&mgr.history(), &spec));
//! # Ok::<(), atomicity_core::TxnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod clock;
pub mod conflict;
pub mod deadlock;
pub mod engine;
pub mod error;
pub mod log;
pub mod manager;
pub mod object;
pub mod recovery;
pub mod stats;
pub mod trace;
pub mod txn;

pub use admission::{
    Admission, AdmissionOutcome, AdmissionRequest, Combiner, IntentionArena, SeqlockCell,
};
pub use clock::LamportClock;
pub use conflict::{arg_relation, ArgRelation, CommutesRel, ConflictRule, ConflictTable};
pub use deadlock::{DeadlockPolicy, WaitDecision, WaitGraph};
pub use engine::dynamic::DynamicObject;
pub use engine::hybrid::HybridObject;
pub use engine::static_ts::StaticObject;
pub use error::{AbortReason, TxnError};
pub use log::{HistoryLog, LogTap, MergedEvents};
pub use manager::{ManagerBuilder, Protocol, TxnManager};
pub use object::{AtomicObject, Participant};
pub use recovery::{DurableLog, KeyFootprint, LogRecord, RecordKind, StableLog};
pub use stats::{ObjectStats, StatsSnapshot};
pub use trace::{
    HistogramSnapshot, LatencyHistogram, MetricsRegistry, MetricsSnapshot, ObjectMetrics,
    ObjectMetricsSnapshot, Stopwatch, TraceBuffer, TraceKind, TraceRecord,
};
pub use txn::{Txn, TxnKind, TxnStatus};
