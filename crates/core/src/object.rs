//! Object-side traits: operation dispatch and the commit protocol.

use crate::error::TxnError;
use crate::txn::Txn;
use atomicity_spec::{ActivityId, ObjectId, Operation, Timestamp, Value};

/// A participant in the commit/abort protocol.
///
/// The transaction manager calls these hooks on every object a transaction
/// touched. `prepare` may veto (vote "no" in two-phase commit); `commit`
/// installs the transaction's effects and **records the commit event** in
/// the shared history log; `abort` discards them and records the abort
/// event.
///
/// Engines record commit/abort events while holding their internal lock,
/// so the recorded history's event order is faithful to the
/// synchronization performed.
pub trait Participant: Send + Sync {
    /// The identity of the object this participant guards.
    fn object_id(&self) -> ObjectId;

    /// First phase: validate and durably stage the transaction's effects.
    ///
    /// # Errors
    ///
    /// An error vetoes the commit; the manager then aborts the transaction
    /// at every participant.
    fn prepare(&self, txn: ActivityId) -> Result<(), TxnError> {
        let _ = txn;
        Ok(())
    }

    /// Second phase: make the transaction's effects permanent.
    ///
    /// `ts` is the commit timestamp when the protocol assigns one (hybrid
    /// updates); `None` otherwise.
    fn commit(&self, txn: ActivityId, ts: Option<Timestamp>);

    /// Discard the transaction's effects.
    fn abort(&self, txn: ActivityId);
}

/// An atomic object: type-specific concurrency control behind a uniform
/// invocation interface.
///
/// Implementations guarantee a *local atomicity property* (§4): every
/// history they can produce, restricted to this object, is dynamic /
/// static / hybrid atomic, so any system composed of objects implementing
/// the **same** property yields atomic computations (Theorems 1, 4, 5).
pub trait AtomicObject: Participant {
    /// Invokes `operation` on behalf of `txn`, blocking if the operation
    /// is not currently admissible.
    ///
    /// # Errors
    ///
    /// - [`TxnError::Deadlock`] / [`TxnError::TimestampConflict`] /
    ///   [`TxnError::TimestampTooOld`]: the transaction must abort.
    /// - [`TxnError::InvalidOperation`]: the operation is never permitted
    ///   by the object's specification; the transaction may continue.
    /// - [`TxnError::ProtocolMismatch`]: the transaction kind or timestamp
    ///   discipline does not fit this object's protocol.
    /// - [`TxnError::NotActive`]: the transaction already completed.
    fn invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError>;

    /// Non-blocking variant of [`AtomicObject::invoke`]: a single
    /// admission attempt. On contention it returns
    /// [`TxnError::WouldBlock`] **without recording any events**, so a
    /// rejected attempt is as if the invocation never happened — the basis
    /// for the exhaustive schedule explorer in the test suite.
    ///
    /// The default implementation delegates to `invoke` (appropriate for
    /// objects that never block).
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] on contention, plus everything `invoke`
    /// can return except [`TxnError::Deadlock`].
    fn try_invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        self.invoke(txn, operation)
    }

    /// The object's metrics handle: always-on contention counters plus —
    /// when the owning manager's [`crate::MetricsRegistry`] is enabled —
    /// latency histograms, event tracing, and abort causes. Objects that
    /// do not track metrics return a detached handle whose counters stay
    /// zero.
    fn metrics(&self) -> crate::trace::ObjectMetrics {
        crate::trace::ObjectMetrics::detached(self.object_id())
    }
}
