//! Recovery substrates: simulated stable storage, intentions-list (redo)
//! recovery, and undo-log recovery.
//!
//! The paper's model deliberately does **not** fix a recovery technique
//! (§5.1 criticizes models that do); atomicity only requires that
//! `perm(h)` — the committed activities — be serializable, however aborts
//! and crashes are implemented. This module provides the two classical
//! implementations the paper alludes to:
//!
//! - [`IntentionsStore`]: the intentions lists of [Lampson & Sturgis] —
//!   operations are staged durably at prepare and *redone* after a crash
//!   for committed transactions.
//! - [`UndoStore`]: eager in-place update with write-ahead undo records;
//!   crash recovery *undoes* the operations of uncommitted transactions.
//!
//! Crashes are simulated: a [`StableLog`] (and the [`UndoStore`]'s durable
//! cell) survives [`IntentionsStore::crash`], volatile caches do not. The
//! distributed simulation (`atomicity-sim`) injects crashes at every point
//! of the two-phase commit and experiment E6 verifies all-or-nothing
//! behavior across them.
//!
//! Both stores speak to storage through the [`DurableLog`] trait, so the
//! same intentions-list machinery runs over the in-memory [`StableLog`]
//! *or* the real on-disk segmented write-ahead log in `atomicity-durable`
//! — the latter is what the kill-based crash harness and experiment E11
//! exercise.

use atomicity_spec::{ActivityId, ObjectId, OpResult, SequentialSpec};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The read/write key footprint a dependency-logged commit record carries.
///
/// This is the runtime twin of the static shapes in `atomicity-lint`'s
/// footprint extractor (`analysis::footprint::FnFootprint`): where the
/// static pass classifies whole functions by the operations they invoke,
/// this records which integer keys one committed transaction actually
/// read and wrote at one object. Recovery (à la Yao et al., "dependency
/// logging") uses the footprints to build a transaction dependency graph
/// — two commits depend on each other only if their footprints overlap on
/// a key *and* the operations on that key do not commute — and replays
/// independent chains in parallel instead of scanning the log serially.
///
/// Operations without an integer first argument (whole-object scans like
/// `sum`/`size`) have no key to record; they set the `unkeyed_*` flags,
/// which dependency analysis must treat as touching every key
/// (conservative, like the synthesis pass's unknown-shape default).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeyFootprint {
    /// Keys read (sorted, deduplicated).
    pub reads: Vec<i64>,
    /// Keys written (sorted, deduplicated).
    pub writes: Vec<i64>,
    /// A read-only operation without a key (scan): reads every key.
    pub unkeyed_reads: bool,
    /// An updating operation without a key: conservatively writes every
    /// key.
    pub unkeyed_writes: bool,
}

impl KeyFootprint {
    /// Builds a footprint from explicit key sets (sorted + deduplicated).
    pub fn new(reads: Vec<i64>, writes: Vec<i64>) -> Self {
        let mut fp = KeyFootprint {
            reads,
            writes,
            unkeyed_reads: false,
            unkeyed_writes: false,
        };
        fp.normalize();
        fp
    }

    /// Derives the footprint of a transaction's staged operations: the
    /// integer first argument is the key (the convention every keyed ADT
    /// spec in the workspace follows), and `spec.is_read_only` decides
    /// read vs write — the same classification
    /// `analysis::footprint::classify_op` applies statically.
    pub fn from_ops<S: SequentialSpec>(spec: &S, ops: &[OpResult]) -> Self {
        let mut fp = KeyFootprint::default();
        for (op, _) in ops {
            let read_only = spec.is_read_only(op);
            match op.int_arg(0) {
                Some(key) if read_only => fp.reads.push(key),
                Some(key) => fp.writes.push(key),
                None if read_only => fp.unkeyed_reads = true,
                None => fp.unkeyed_writes = true,
            }
        }
        fp.normalize();
        fp
    }

    fn normalize(&mut self) {
        self.reads.sort_unstable();
        self.reads.dedup();
        self.writes.sort_unstable();
        self.writes.dedup();
    }

    /// Whether the footprint records no access at all.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
            && self.writes.is_empty()
            && !self.unkeyed_reads
            && !self.unkeyed_writes
    }

    /// Whether this footprint writes `key` (or writes every key).
    pub fn writes_key(&self, key: i64) -> bool {
        self.unkeyed_writes || self.writes.binary_search(&key).is_ok()
    }

    /// Whether this footprint touches `key` at all (read or write,
    /// including the unkeyed wildcards).
    pub fn touches_key(&self, key: i64) -> bool {
        self.unkeyed_reads
            || self.unkeyed_writes
            || self.reads.binary_search(&key).is_ok()
            || self.writes.binary_search(&key).is_ok()
    }
}

/// A record in the durable write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordKind {
    /// The transaction's intentions at this object are durably staged.
    Prepare {
        /// The staged (operation, result) pairs, in execution order.
        ops: Vec<OpResult>,
    },
    /// The transaction committed (its staged intentions must be redone).
    Commit,
    /// The transaction committed, and the record carries its read/write
    /// footprint — the *dependency log* variant of [`RecordKind::Commit`].
    /// Replay semantics are identical; the footprint lets recovery order
    /// only genuinely conflicting commits instead of the whole log.
    CommitDep {
        /// The transaction's read/write key footprint at this object.
        footprint: KeyFootprint,
    },
    /// The transaction aborted (its staged intentions are discarded).
    Abort,
}

impl RecordKind {
    /// Whether this record marks a durable commit (with or without a
    /// dependency footprint).
    pub fn is_commit(&self) -> bool {
        matches!(self, RecordKind::Commit | RecordKind::CommitDep { .. })
    }
}

/// One durable log record: which transaction, at which object, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The transaction the record belongs to.
    pub txn: ActivityId,
    /// The object whose state the record concerns.
    pub object: ObjectId,
    /// The payload.
    pub kind: RecordKind,
}

/// The durable-log interface shared by every recovery substrate.
///
/// Three implementations speak it: the simulated in-memory [`StableLog`]
/// here, the on-disk segmented write-ahead log in `atomicity-durable`
/// (`Wal`), and whatever a test wants to inject. The contract mirrors
/// what intentions-list recovery needs and nothing more:
///
/// - [`DurableLog::append`] stages a record in the log and returns its
///   log sequence number (LSN — the zero-based position of the record in
///   the logical record sequence). An appended record is **ordered** but
///   not necessarily durable yet.
/// - [`DurableLog::sync`] blocks until every record appended so far is
///   durable. A store must force the log (append + sync) before acting on
///   a record — before voting "prepared", and before acknowledging a
///   commit. Group-commit logs batch many concurrent `sync` calls into
///   one device flush.
/// - [`DurableLog::records`] returns the surviving logical record
///   sequence, in append order. After a crash this is the recovery
///   input: a prefix of what was appended (never a subsequence with
///   holes — torn tails are truncated, not skipped).
pub trait DurableLog: Send + Sync + std::fmt::Debug {
    /// Appends a record to the log, returning its LSN. The record is
    /// ordered immediately but durable only once [`DurableLog::sync`]
    /// returns (or the implementation syncs eagerly).
    fn append(&self, record: LogRecord) -> u64;

    /// Blocks until every record appended before this call is durable.
    fn sync(&self);

    /// A copy of all surviving records, in append order.
    fn records(&self) -> Vec<LogRecord>;

    /// A copy of the records at logical positions `from..`, in append
    /// order. The default clones the whole sequence and discards the
    /// prefix; implementations with random access should override it —
    /// this is the incremental-scan path that keeps
    /// [`IntentionsStore`]'s per-transaction index from re-reading the
    /// log on every commit.
    fn records_from(&self, from: usize) -> Vec<LogRecord> {
        let mut all = self.records();
        if from >= all.len() {
            return Vec::new();
        }
        all.drain(..from);
        all
    }

    /// Number of records in the logical sequence.
    fn len(&self) -> usize;

    /// Whether the log holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Simulated stable storage: an append-only record log that survives
/// crashes. Clones share the same storage (it is the "disk").
#[derive(Debug, Clone, Default)]
pub struct StableLog {
    records: Arc<Mutex<Vec<LogRecord>>>,
}

impl StableLog {
    /// Creates empty stable storage.
    pub fn new() -> Self {
        StableLog {
            records: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Durably appends a record.
    pub fn append(&self, record: LogRecord) {
        self.records.lock().push(record);
    }

    /// A copy of all records, in append order.
    pub fn records(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Truncates the log to its first `n` records — used by the crash
    /// injector to model a crash that lost a suffix of un-flushed records.
    pub fn truncate(&self, n: usize) {
        self.records.lock().truncate(n);
    }
}

impl DurableLog for StableLog {
    fn append(&self, record: LogRecord) -> u64 {
        let mut records = self.records.lock();
        records.push(record);
        records.len() as u64 - 1
    }

    /// Simulated storage is durable the instant it is appended.
    fn sync(&self) {}

    fn records(&self) -> Vec<LogRecord> {
        StableLog::records(self)
    }

    fn records_from(&self, from: usize) -> Vec<LogRecord> {
        let records = self.records.lock();
        records.get(from..).map(<[_]>::to_vec).unwrap_or_default()
    }

    fn len(&self) -> usize {
        StableLog::len(self)
    }
}

/// The outcome of crash recovery at one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Transactions whose effects were reinstalled (committed).
    pub redone: Vec<ActivityId>,
    /// Transactions found prepared but neither committed nor aborted; the
    /// coordinator must be asked (two-phase-commit in-doubt set).
    pub in_doubt: Vec<ActivityId>,
    /// Transactions whose staged effects were discarded.
    pub discarded: Vec<ActivityId>,
}

/// Intentions-list (redo) recovery for an object with specification `S`.
///
/// Usage: stage a transaction's intentions durably with
/// [`IntentionsStore::prepare`]; on [`IntentionsStore::commit`] the commit
/// record is forced and the intentions are applied to the volatile cached
/// state. [`IntentionsStore::crash`] wipes the cache;
/// [`IntentionsStore::recover`] rebuilds it by redoing committed
/// intentions in commit order and reports in-doubt transactions.
#[derive(Debug)]
pub struct IntentionsStore<S: SequentialSpec> {
    spec: S,
    object: ObjectId,
    log: Arc<dyn DurableLog>,
    /// Cached committed state frontier; `None` after a crash until
    /// recovery runs.
    volatile: Mutex<Option<Vec<S::State>>>,
    /// Volatile per-transaction index over this object's slice of the
    /// log, caught up incrementally via [`DurableLog::records_from`].
    /// Purely an accelerator: every answer it gives is the answer a full
    /// log scan would give, and it is discarded on crash. Without it,
    /// every `commit`/`outcome`/`staged_ops` call re-reads the whole
    /// shared log — quadratic over a long-lived store, which is what the
    /// partitioned service's hot path cannot afford.
    index: Mutex<TxnIndex>,
}

/// The incremental index: how far into the log it has looked, the last
/// staged intentions per transaction, and the last durable outcome per
/// transaction (both "last wins", matching the scan they replace).
#[derive(Debug, Default)]
struct TxnIndex {
    seen: usize,
    staged: BTreeMap<ActivityId, Vec<OpResult>>,
    outcome: BTreeMap<ActivityId, bool>,
}

impl TxnIndex {
    fn absorb(&mut self, record: &LogRecord) {
        match &record.kind {
            RecordKind::Prepare { ops } => {
                self.staged.insert(record.txn, ops.clone());
            }
            RecordKind::Commit | RecordKind::CommitDep { .. } => {
                self.outcome.insert(record.txn, true);
            }
            RecordKind::Abort => {
                self.outcome.insert(record.txn, false);
            }
        }
    }
}

impl<S: SequentialSpec> IntentionsStore<S> {
    /// Creates the store over any durable log. Log implementations whose
    /// clones share storage (like [`StableLog`] and the disk WAL) can be
    /// passed by clone so several stores — or the crash injector — keep
    /// handles onto the same log.
    pub fn new<L: DurableLog + 'static>(spec: S, object: ObjectId, log: L) -> Self {
        Self::shared(spec, object, Arc::new(log))
    }

    /// Creates the store over an already-shared durable log handle (the
    /// form used when many objects multiplex one write-ahead log).
    pub fn shared(spec: S, object: ObjectId, log: Arc<dyn DurableLog>) -> Self {
        let initial = vec![spec.initial()];
        IntentionsStore {
            spec,
            object,
            log,
            volatile: Mutex::new(Some(initial)),
            index: Mutex::new(TxnIndex::default()),
        }
    }

    /// The object this store recovers.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// Durably stages `ops` as the transaction's intentions here
    /// (the "prepared" vote of two-phase commit). The log is forced
    /// before this returns: a vote is never given on a volatile prepare.
    pub fn prepare(&self, txn: ActivityId, ops: Vec<OpResult>) {
        self.log.append(LogRecord {
            txn,
            object: self.object,
            kind: RecordKind::Prepare { ops },
        });
        self.log.sync();
    }

    /// Durably commits and applies the staged intentions to the cache.
    ///
    /// Idempotent: a repeated commit (e.g. a duplicated decision message)
    /// is a no-op, as is a commit after an abort — the first durable
    /// outcome wins.
    pub fn commit(&self, txn: ActivityId) {
        self.commit_kind(txn, RecordKind::Commit);
    }

    /// Durably commits with a dependency-log record: the commit record
    /// carries the transaction's read/write key footprint so recovery can
    /// replay non-conflicting commits in parallel. Idempotent like
    /// [`IntentionsStore::commit`].
    pub fn commit_with_footprint(&self, txn: ActivityId, footprint: KeyFootprint) {
        self.commit_kind(txn, RecordKind::CommitDep { footprint });
    }

    /// Durably commits the staged footprint derived from the staged
    /// operations themselves (the common case: the dependency record is
    /// computed from what was prepared, not re-declared by the caller).
    pub fn commit_dependency_logged(&self, txn: ActivityId) {
        let footprint = KeyFootprint::from_ops(&self.spec, &self.staged_ops(txn));
        self.commit_with_footprint(txn, footprint);
    }

    fn commit_kind(&self, txn: ActivityId, kind: RecordKind) {
        debug_assert!(kind.is_commit());
        if self.outcome(txn).is_some() {
            return;
        }
        self.log.append(LogRecord {
            txn,
            object: self.object,
            kind,
        });
        self.log.sync();
        let ops = self.staged_ops(txn);
        let mut vol = self.volatile.lock();
        if let Some(states) = vol.as_mut() {
            let next = crate::engine::replay_frontier(&self.spec, states, &ops);
            if !next.is_empty() {
                *states = next;
            }
        }
    }

    /// Durably aborts, discarding staged intentions. Idempotent, like
    /// [`IntentionsStore::commit`].
    pub fn abort(&self, txn: ActivityId) {
        if self.outcome(txn).is_some() {
            return;
        }
        self.log.append(LogRecord {
            txn,
            object: self.object,
            kind: RecordKind::Abort,
        });
        self.log.sync();
    }

    /// The committed state frontier.
    ///
    /// # Panics
    ///
    /// Panics if called after a crash before [`IntentionsStore::recover`].
    pub fn committed_frontier(&self) -> Vec<S::State> {
        self.volatile
            .lock()
            .clone()
            .expect("crashed store: run recover() first")
    }

    /// Simulates a crash: the volatile cache is lost; stable storage
    /// survives. The per-transaction index is volatile too — it is
    /// discarded here so a crash injector that truncated the log (losing
    /// un-flushed records) is never answered from pre-crash memory.
    pub fn crash(&self) {
        *self.volatile.lock() = None;
        *self.index.lock() = TxnIndex::default();
    }

    /// Brings the per-transaction index up to date with the log and runs
    /// `f` over it. The log is read *outside* the index lock (the log has
    /// locks of its own); overlapping catch-ups are reconciled by
    /// re-checking `seen` before absorbing. A log that shrank underneath
    /// us (checkpoint fold, or a crash injector truncating without
    /// [`IntentionsStore::crash`]) resets the index and rescans.
    fn with_index<R>(&self, f: impl FnOnce(&TxnIndex) -> R) -> R {
        let len = self.log.len();
        let start = {
            let mut idx = self.index.lock();
            if len < idx.seen {
                *idx = TxnIndex::default();
            }
            if idx.seen >= len {
                return f(&idx);
            }
            idx.seen
        };
        let fetched = self.log.records_from(start);
        let mut idx = self.index.lock();
        // `seen` may have moved while the lock was released: forward (a
        // concurrent catch-up — absorb only the remainder) or back to
        // zero (a concurrent crash reset — absorb nothing; the next call
        // rescans from the log).
        if idx.seen >= start && idx.seen < start + fetched.len() {
            for r in &fetched[idx.seen - start..] {
                if r.object == self.object {
                    idx.absorb(r);
                }
            }
            idx.seen = start + fetched.len();
        }
        f(&idx)
    }

    /// Whether the store is crashed (needs recovery).
    pub fn is_crashed(&self) -> bool {
        self.volatile.lock().is_none()
    }

    /// Rebuilds the committed state from stable storage by redoing
    /// committed intentions in commit order; reports in-doubt transactions
    /// (prepared, no outcome record).
    pub fn recover(&self) -> RecoveryOutcome {
        let records = self.log.records();
        let mut states = vec![self.spec.initial()];
        let mut redone: Vec<ActivityId> = Vec::new();
        let mut discarded: Vec<ActivityId> = Vec::new();
        let mut prepared: Vec<ActivityId> = Vec::new();
        for r in &records {
            if r.object != self.object {
                continue;
            }
            match &r.kind {
                RecordKind::Prepare { .. } => {
                    if !prepared.contains(&r.txn) {
                        prepared.push(r.txn);
                    }
                }
                RecordKind::Commit | RecordKind::CommitDep { .. } => {
                    // Duplicate outcome records (a crash can lose the
                    // in-memory idempotency state) are applied once.
                    if redone.contains(&r.txn) || discarded.contains(&r.txn) {
                        continue;
                    }
                    let ops = self.staged_ops(r.txn);
                    let next = crate::engine::replay_frontier(&self.spec, &states, &ops);
                    if !next.is_empty() {
                        states = next;
                    }
                    prepared.retain(|&t| t != r.txn);
                    redone.push(r.txn);
                }
                RecordKind::Abort => {
                    if redone.contains(&r.txn) || discarded.contains(&r.txn) {
                        continue;
                    }
                    prepared.retain(|&t| t != r.txn);
                    discarded.push(r.txn);
                }
            }
        }
        *self.volatile.lock() = Some(states);
        RecoveryOutcome {
            redone,
            in_doubt: prepared,
            discarded,
        }
    }

    /// Resolves an in-doubt transaction after consulting the coordinator.
    pub fn resolve_in_doubt(&self, txn: ActivityId, commit: bool) {
        if commit {
            self.commit(txn);
        } else {
            self.abort(txn);
        }
    }

    /// The durable outcome of `txn` at this object: `Some(true)` if a
    /// commit record exists, `Some(false)` for an abort record, `None`
    /// when the transaction is unprepared or in doubt.
    pub fn outcome(&self, txn: ActivityId) -> Option<bool> {
        self.with_index(|idx| idx.outcome.get(&txn).copied())
    }

    /// The underlying stable storage (shared; its length is a recovery
    /// cost proxy).
    pub fn stable_log(&self) -> &dyn DurableLog {
        self.log.as_ref()
    }

    /// Whether `txn` has a durable prepare record here.
    pub fn prepared(&self, txn: ActivityId) -> bool {
        self.with_index(|idx| idx.staged.contains_key(&txn))
    }

    /// Replays, from the initial state, the staged intentions of exactly
    /// the committed transactions selected by `filter`, in commit-record
    /// order.
    ///
    /// This serves timestamped snapshot reads over the durable log
    /// (distributed hybrid-atomicity audits): with commutative intentions
    /// the result is independent of the commit-record order, so the
    /// filter "commit timestamp < t" yields the state a reader with
    /// timestamp `t` must see.
    pub fn replay_committed_subset(&self, filter: impl Fn(ActivityId) -> bool) -> Vec<S::State> {
        let mut states = vec![self.spec.initial()];
        let mut done: Vec<ActivityId> = Vec::new();
        for r in self.log.records() {
            if r.object != self.object || !r.kind.is_commit() {
                continue;
            }
            if done.contains(&r.txn) || !filter(r.txn) {
                continue;
            }
            done.push(r.txn);
            let ops = self.staged_ops(r.txn);
            let next = crate::engine::replay_frontier(&self.spec, &states, &ops);
            if !next.is_empty() {
                states = next;
            }
        }
        states
    }

    fn staged_ops(&self, txn: ActivityId) -> Vec<OpResult> {
        self.with_index(|idx| idx.staged.get(&txn).cloned().unwrap_or_default())
    }
}

/// Undo-log recovery: eager in-place update with durable operation
/// records; aborts and crash recovery *remove* the operations of
/// uncommitted transactions and recompute the state.
///
/// Both the current state and the operation records live in "durable"
/// storage; a crash loses nothing but leaves uncommitted transactions'
/// effects in place, which [`UndoStore::recover`] rolls back. Rollback is
/// by recomputation (replaying the surviving operations from the initial
/// state), which stays exact even when transactions' operations
/// interleave — as long as the concurrency control above this store kept
/// the surviving operations replayable, which any of the engines in
/// [`crate::engine`] does.
#[derive(Debug)]
pub struct UndoStore<S: SequentialSpec> {
    spec: S,
    object: ObjectId,
    durable: Mutex<UndoDurable<S>>,
}

#[derive(Debug)]
struct UndoDurable<S: SequentialSpec> {
    /// Current state, including uncommitted effects.
    state: Vec<S::State>,
    /// Applied operations in order, tagged by owner.
    applied: Vec<(ActivityId, OpResult)>,
    committed: BTreeSet<ActivityId>,
}

impl<S: SequentialSpec> UndoStore<S> {
    /// Creates the store.
    pub fn new(spec: S, object: ObjectId) -> Self {
        let initial = vec![spec.initial()];
        UndoStore {
            spec,
            object,
            durable: Mutex::new(UndoDurable {
                state: initial,
                applied: Vec::new(),
                committed: BTreeSet::new(),
            }),
        }
    }

    /// The object this store recovers.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// Applies one completed operation in place, writing the operation
    /// record first. Returns `false` (and applies nothing) if the recorded
    /// result is not replayable in the current state.
    pub fn apply(&self, txn: ActivityId, op: OpResult) -> bool {
        let mut d = self.durable.lock();
        let next = crate::engine::replay_frontier(&self.spec, &d.state, std::slice::from_ref(&op));
        if next.is_empty() {
            return false;
        }
        d.applied.push((txn, op));
        d.state = next;
        true
    }

    /// Commits: `txn`'s operations become permanent.
    pub fn commit(&self, txn: ActivityId) {
        self.durable.lock().committed.insert(txn);
    }

    /// Aborts: removes `txn`'s operations and recomputes the state.
    pub fn abort(&self, txn: ActivityId) {
        let mut d = self.durable.lock();
        d.applied.retain(|(t, _)| *t != txn);
        Self::recompute(&self.spec, &mut d);
    }

    /// Crash recovery: removes the operations of every uncommitted
    /// transaction, recomputes the state, and reports what was undone.
    pub fn recover(&self) -> Vec<ActivityId> {
        let mut d = self.durable.lock();
        let committed = d.committed.clone();
        let mut undone = Vec::new();
        d.applied.retain(|(t, _)| {
            let keep = committed.contains(t);
            if !keep && !undone.contains(t) {
                undone.push(*t);
            }
            keep
        });
        Self::recompute(&self.spec, &mut d);
        undone
    }

    fn recompute(spec: &S, d: &mut UndoDurable<S>) {
        let ops: Vec<OpResult> = d.applied.iter().map(|(_, op)| op.clone()).collect();
        let initial = vec![spec.initial()];
        let next = crate::engine::replay_frontier(spec, &initial, &ops);
        debug_assert!(
            !next.is_empty(),
            "surviving operations must stay replayable after rollback"
        );
        if !next.is_empty() {
            d.state = next;
        }
    }

    /// The current state frontier (includes uncommitted effects until
    /// recovery or abort removes them).
    pub fn state(&self) -> Vec<S::State> {
        self.durable.lock().state.clone()
    }

    /// Whether `txn` committed here.
    pub fn is_committed(&self, txn: ActivityId) -> bool {
        self.durable.lock().committed.contains(&txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::specs::{BankAccountSpec, IntSetSpec};
    use atomicity_spec::{op, Value};

    fn t(n: u32) -> ActivityId {
        ActivityId::new(n)
    }

    fn x() -> ObjectId {
        ObjectId::new(1)
    }

    #[test]
    fn intentions_commit_survives_crash() {
        let log = StableLog::new();
        let store = IntentionsStore::new(BankAccountSpec::new(), x(), log);
        store.prepare(t(1), vec![(op("deposit", [10]), Value::ok())]);
        store.commit(t(1));
        assert_eq!(store.committed_frontier(), vec![10]);
        store.crash();
        assert!(store.is_crashed());
        let outcome = store.recover();
        assert_eq!(outcome.redone, vec![t(1)]);
        assert!(outcome.in_doubt.is_empty());
        assert_eq!(store.committed_frontier(), vec![10]);
    }

    #[test]
    fn intentions_uncommitted_are_invisible_after_crash() {
        let log = StableLog::new();
        let store = IntentionsStore::new(BankAccountSpec::new(), x(), log);
        store.prepare(t(1), vec![(op("deposit", [10]), Value::ok())]);
        store.crash();
        let outcome = store.recover();
        assert_eq!(outcome.in_doubt, vec![t(1)]);
        assert_eq!(store.committed_frontier(), vec![0]);
        // Coordinator says commit:
        store.resolve_in_doubt(t(1), true);
        assert_eq!(store.committed_frontier(), vec![10]);
    }

    #[test]
    fn intentions_abort_discards() {
        let log = StableLog::new();
        let store = IntentionsStore::new(BankAccountSpec::new(), x(), log);
        store.prepare(t(1), vec![(op("deposit", [10]), Value::ok())]);
        store.abort(t(1));
        store.crash();
        let outcome = store.recover();
        assert_eq!(outcome.discarded, vec![t(1)]);
        assert_eq!(store.committed_frontier(), vec![0]);
    }

    #[test]
    fn intentions_redo_in_commit_order() {
        let log = StableLog::new();
        let store = IntentionsStore::new(IntSetSpec::new(), x(), log);
        store.prepare(t(1), vec![(op("insert", [3]), Value::ok())]);
        store.prepare(t(2), vec![(op("delete", [3]), Value::ok())]);
        store.commit(t(1));
        store.commit(t(2));
        store.crash();
        store.recover();
        // insert then delete: 3 absent.
        let frontier = store.committed_frontier();
        assert!(frontier.iter().all(|s| !s.contains(&3)));
    }

    #[test]
    fn lost_log_suffix_loses_unflushed_outcome() {
        let log = StableLog::new();
        let store = IntentionsStore::new(BankAccountSpec::new(), x(), log.clone());
        store.prepare(t(1), vec![(op("deposit", [10]), Value::ok())]);
        let flushed = log.len();
        store.commit(t(1));
        // Crash losing the commit record: the transaction is back in doubt.
        log.truncate(flushed);
        store.crash();
        let outcome = store.recover();
        assert_eq!(outcome.in_doubt, vec![t(1)]);
        assert_eq!(store.committed_frontier(), vec![0]);
    }

    #[test]
    fn dependency_logged_commit_recovers_like_value_commit() {
        use atomicity_spec::specs::KvMapSpec;
        let log = StableLog::new();
        let store = IntentionsStore::new(KvMapSpec::with_initial([(1, 50), (2, 50)]), x(), log);
        store.prepare(
            t(1),
            vec![
                (op("adjust", [1, -30]), Value::ok()),
                (op("adjust", [2, 30]), Value::ok()),
            ],
        );
        store.commit_dependency_logged(t(1));
        // The commit record carries the derived footprint.
        let commits: Vec<_> = store
            .stable_log()
            .records()
            .into_iter()
            .filter(|r| r.kind.is_commit())
            .collect();
        assert_eq!(commits.len(), 1);
        match &commits[0].kind {
            RecordKind::CommitDep { footprint } => {
                assert_eq!(footprint.writes, vec![1, 2]);
                assert!(footprint.reads.is_empty());
                assert!(!footprint.unkeyed_reads && !footprint.unkeyed_writes);
            }
            other => panic!("expected CommitDep, got {other:?}"),
        }
        // Recovery redoes it exactly like a plain commit.
        store.crash();
        let outcome = store.recover();
        assert_eq!(outcome.redone, vec![t(1)]);
        let frontier = store.committed_frontier();
        assert_eq!(frontier[0].get(&1), Some(&20));
        assert_eq!(frontier[0].get(&2), Some(&80));
        assert_eq!(store.outcome(t(1)), Some(true));
    }

    #[test]
    fn dependency_commit_is_idempotent_across_kinds() {
        let log = StableLog::new();
        let store = IntentionsStore::new(BankAccountSpec::new(), x(), log.clone());
        store.prepare(t(1), vec![(op("deposit", [10]), Value::ok())]);
        store.commit_with_footprint(t(1), KeyFootprint::new(vec![], vec![1]));
        let len = log.len();
        // A later plain commit (duplicated decision) is a no-op.
        store.commit(t(1));
        store.commit_dependency_logged(t(1));
        assert_eq!(log.len(), len, "first durable outcome wins");
        assert_eq!(store.committed_frontier(), vec![10]);
    }

    #[test]
    fn footprint_from_ops_classifies_reads_writes_and_scans() {
        use atomicity_spec::specs::KvMapSpec;
        let spec = KvMapSpec::new();
        let fp = KeyFootprint::from_ops(
            &spec,
            &[
                (op("adjust", [3, 5]), Value::ok()),
                (op("adjust", [3, 2]), Value::ok()),
                (op("get", [7]), Value::Nil),
                (op("put", [9, 1]), Value::Nil),
            ],
        );
        assert_eq!(fp.reads, vec![7]);
        assert_eq!(fp.writes, vec![3, 9]);
        assert!(!fp.unkeyed_reads && !fp.unkeyed_writes);
        assert!(fp.writes_key(3) && !fp.writes_key(7));
        assert!(fp.touches_key(7) && !fp.touches_key(4));

        let scan = KeyFootprint::from_ops(&spec, &[(op("sum", [] as [i64; 0]), Value::from(0))]);
        assert!(scan.unkeyed_reads && !scan.unkeyed_writes);
        assert!(scan.touches_key(42), "scans touch every key");
        assert!(!scan.writes_key(42));
        assert!(!scan.is_empty());
        assert!(KeyFootprint::default().is_empty());
    }

    #[test]
    fn undo_store_rolls_back_aborts() {
        let store = UndoStore::new(BankAccountSpec::new(), x());
        assert!(store.apply(t(1), (op("deposit", [10]), Value::ok())));
        assert!(store.apply(t(1), (op("withdraw", [4]), Value::ok())));
        assert_eq!(store.state(), vec![6]);
        store.abort(t(1));
        assert_eq!(store.state(), vec![0]);
    }

    #[test]
    fn undo_store_recovery_undoes_uncommitted_only() {
        let store = UndoStore::new(BankAccountSpec::new(), x());
        store.apply(t(1), (op("deposit", [10]), Value::ok()));
        store.commit(t(1));
        store.apply(t(2), (op("withdraw", [3]), Value::ok()));
        // Crash: t2 never committed.
        let undone = store.recover();
        assert_eq!(undone, vec![t(2)]);
        assert_eq!(store.state(), vec![10]);
        assert!(store.is_committed(t(1)));
        assert!(!store.is_committed(t(2)));
    }

    #[test]
    fn undo_store_rejects_unreplayable_ops() {
        let store = UndoStore::new(BankAccountSpec::new(), x());
        // withdraw claiming ok with no funds: rejected, state unchanged.
        assert!(!store.apply(t(1), (op("withdraw", [5]), Value::ok())));
        assert_eq!(store.state(), vec![0]);
    }

    #[test]
    fn interleaved_undo_restores_exact_states() {
        let store = UndoStore::new(IntSetSpec::new(), x());
        store.apply(t(1), (op("insert", [1]), Value::ok()));
        store.apply(t(2), (op("insert", [2]), Value::ok()));
        store.apply(t(1), (op("insert", [3]), Value::ok()));
        store.commit(t(2));
        store.abort(t(1));
        let state = store.state();
        assert!(state
            .iter()
            .all(|s| s.contains(&2) && !s.contains(&1) && !s.contains(&3)));
    }
}
