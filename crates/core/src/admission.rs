//! The unified admission API: one surface through which every engine and
//! baseline admits operations, plus the hot-path machinery behind it.
//!
//! Historically each engine grew its own admission entry points
//! ([`crate::AtomicObject::invoke`] with engine-specific blocking loops,
//! `try_invoke` variants, baseline lock paths), and every caller — the
//! benches, the simulator, the lint gate — had to know which one it was
//! talking to. The [`Admission`] trait replaces that tangle with three
//! verbs and an explicit [`AdmissionOutcome`]:
//!
//! - [`Admission::try_admit`] — one non-blocking admission attempt;
//! - [`Admission::admit_batch`] — admit a whole queue of pending
//!   intentions under **one** acquisition of the object's internal lock
//!   (the flat-combining building block);
//! - [`Admission::read_at`] — the read-only entry, which the hybrid
//!   engine serves from a [`SeqlockCell`]-published version without ever
//!   touching the object mutex.
//!
//! The module also provides the hot-path primitives themselves:
//! [`SeqlockCell`] (a safe epoch/seqlock publication cell),
//! [`Combiner`] (flat-combining submission: threads enqueue requests and
//! one thread drains the queue through `admit_batch` on behalf of all),
//! and [`IntentionArena`] (recycles intentions-list allocations across
//! transactions).

use crate::error::TxnError;
use crate::object::AtomicObject;
use crate::txn::{Txn, TxnKind};
use atomicity_spec::{ActivityId, ObjectId, OpResult, Operation, Timestamp, Value};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a combiner-queue waiter sleeps between checks for its filled
/// result slot (a safety net on top of combiner notifications).
const COMBINE_WAIT_SLICE: Duration = Duration::from_millis(1);

/// Intentions lists recycled by an [`IntentionArena`] beyond this count
/// are dropped instead of pooled.
const ARENA_POOL_CAP: usize = 256;

/// The explicit result of one admission attempt.
///
/// Unlike `Result<Value, TxnError>`, the blocked case is first-class and
/// carries the conflict holders, so batch admission can report *why* each
/// rejected request must wait without conflating contention with errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// The operation was admitted with this result; events were recorded
    /// and the intention installed.
    Admitted(Value),
    /// The operation is currently inadmissible; nothing was recorded.
    Blocked {
        /// The transactions whose pending intentions conflict (empty when
        /// the implementation does not attribute the conflict).
        holders: BTreeSet<ActivityId>,
    },
    /// The operation was refused for a non-contention reason; nothing
    /// was recorded unless the protocol requires it (e.g. the static
    /// engine's must-abort refusals record the invoke event).
    Rejected(TxnError),
}

impl AdmissionOutcome {
    /// Whether the operation was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionOutcome::Admitted(_))
    }

    /// Converts to the classic `try_invoke` result shape: blocked becomes
    /// [`TxnError::WouldBlock`] at `object`.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] for [`AdmissionOutcome::Blocked`], the
    /// carried error for [`AdmissionOutcome::Rejected`].
    pub fn into_result(self, object: ObjectId) -> Result<Value, TxnError> {
        match self {
            AdmissionOutcome::Admitted(v) => Ok(v),
            AdmissionOutcome::Blocked { .. } => Err(TxnError::WouldBlock { object }),
            AdmissionOutcome::Rejected(e) => Err(e),
        }
    }

    /// Converts from a `try_invoke`-shaped result:
    /// [`TxnError::WouldBlock`] becomes an unattributed
    /// [`AdmissionOutcome::Blocked`].
    pub fn from_result(result: Result<Value, TxnError>) -> Self {
        match result {
            Ok(v) => AdmissionOutcome::Admitted(v),
            Err(TxnError::WouldBlock { .. }) => AdmissionOutcome::Blocked {
                holders: BTreeSet::new(),
            },
            Err(e) => AdmissionOutcome::Rejected(e),
        }
    }
}

/// One admission request, detached from the (thread-pinned, non-`Clone`)
/// [`Txn`] handle so it can cross threads in a combiner queue.
///
/// The submitting thread must have registered the object as a
/// participant first ([`Admission::register_txn`]); the request then
/// carries only the copyable facts admission needs.
#[derive(Debug, Clone)]
pub struct AdmissionRequest {
    /// The requesting transaction.
    pub txn: ActivityId,
    /// Update or read-only (hybrid routes on this).
    pub kind: TxnKind,
    /// The transaction's start timestamp, when its protocol assigns one.
    pub start_ts: Option<Timestamp>,
    /// The operation to admit.
    pub operation: Operation,
}

impl AdmissionRequest {
    /// Captures the admission-relevant facts of `txn`.
    pub fn from_txn(txn: &Txn, operation: Operation) -> Self {
        AdmissionRequest {
            txn: txn.id(),
            kind: txn.kind(),
            start_ts: txn.start_ts(),
            operation,
        }
    }
}

/// The unified admission surface every engine and baseline implements.
///
/// Callers that hold a live [`Txn`] use [`Admission::try_admit`] /
/// [`Admission::read_at`]; batch machinery ([`Combiner`]) uses
/// [`Admission::register_txn`] + [`Admission::admit_batch`] with
/// detached [`AdmissionRequest`]s. Blocking behaviour stays with
/// [`AtomicObject::invoke`] — admission itself never blocks.
pub trait Admission: AtomicObject {
    /// Registers the object as a commit/abort participant of `txn`
    /// (idempotent). Must be called by the transaction's own thread
    /// before its requests are admitted on its behalf by another thread.
    fn register_txn(&self, txn: &Txn);

    /// One non-blocking admission attempt for a detached request. The
    /// transaction must already be registered
    /// ([`Admission::register_txn`]); liveness of the transaction is the
    /// caller's concern, exactly as for the classic `try_invoke` path.
    fn admit_one(&self, request: &AdmissionRequest) -> AdmissionOutcome;

    /// Admits a queue of requests, acquiring the object's internal lock
    /// **once** for the whole batch where the engine supports it. The
    /// outcome at index `i` answers request `i`; admitted requests take
    /// effect in queue order, so the batch admits exactly the set a
    /// sequence of [`Admission::admit_one`] calls in the same order
    /// would.
    fn admit_batch(&self, requests: &[AdmissionRequest]) -> Vec<AdmissionOutcome> {
        requests.iter().map(|r| self.admit_one(r)).collect()
    }

    /// One non-blocking admission attempt for a live transaction:
    /// checks liveness, registers the participant, then delegates to
    /// [`Admission::admit_one`].
    fn try_admit(&self, txn: &Txn, operation: Operation) -> AdmissionOutcome {
        if !txn.is_active() {
            return AdmissionOutcome::Rejected(TxnError::NotActive { txn: txn.id() });
        }
        self.register_txn(txn);
        self.admit_one(&AdmissionRequest::from_txn(txn, operation))
    }

    /// The read-only entry point. Engines with a dedicated read path
    /// (hybrid: timestamped snapshot reads off a [`SeqlockCell`], no
    /// object mutex) override this; the default delegates to
    /// [`AtomicObject::invoke`].
    ///
    /// # Errors
    ///
    /// Everything [`AtomicObject::invoke`] can return.
    fn read_at(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        self.invoke(txn, operation)
    }
}

/// A safe epoch/seqlock publication cell: one writer at a time publishes
/// a value, any number of readers take a consistent snapshot without
/// blocking the writer (and without ever contending on the slot a write
/// is in flight on).
///
/// The classic seqlock reads racing data and revalidates; that needs
/// `unsafe`, which this crate forbids. This cell gets the same access
/// pattern from safe parts: a version counter (odd = write in flight)
/// plus **two** slots. The writer bumps the counter to odd, writes the
/// *inactive* slot, then bumps to even, making the written slot active.
/// Readers load the counter, lock the active slot (never the one being
/// written), clone the `Arc`, and retry if the counter moved — so a
/// reader's critical section on a slot mutex is a handful of
/// instructions and never overlaps a writer's.
#[derive(Debug, Default)]
pub struct SeqlockCell<T> {
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
    /// Even = stable (slot `(seq/2) % 2` is active); odd = write in
    /// flight.
    seq: AtomicU64,
    slots: [Mutex<Option<Arc<T>>>; 2],
}

impl<T> SeqlockCell<T> {
    /// An empty cell; [`SeqlockCell::load`] returns `None` until the
    /// first publish.
    pub fn new() -> Self {
        SeqlockCell {
            writer: Mutex::new(()),
            seq: AtomicU64::new(0),
            slots: [Mutex::new(None), Mutex::new(None)],
        }
    }

    /// Publishes `value` as the current snapshot.
    pub fn publish(&self, value: Arc<T>) {
        let _w = self.writer.lock();
        let s0 = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s0 % 2, 0, "writer lock held, seq must be even");
        self.seq.store(s0 + 1, Ordering::Release);
        let inactive = (((s0 / 2) + 1) % 2) as usize;
        *self.slots[inactive].lock() = Some(value);
        self.seq.store(s0 + 2, Ordering::Release);
    }

    /// The current snapshot, or `None` before the first publish.
    pub fn load(&self) -> Option<Arc<T>> {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                // Write in flight; the next load observes the new even
                // value promptly.
                std::hint::spin_loop();
                continue;
            }
            let active = ((s1 / 2) % 2) as usize;
            let value = self.slots[active].lock().clone();
            if self.seq.load(Ordering::Acquire) == s1 {
                return value;
            }
        }
    }

    /// Number of publishes so far.
    pub fn version(&self) -> u64 {
        self.seq.load(Ordering::Acquire) / 2
    }
}

/// A pool of intentions-list allocations.
///
/// Engines embed one inside their lock-protected state: lists are taken
/// from the pool when a transaction first touches the object and
/// returned (cleared, capacity kept) when it commits or aborts, so the
/// steady-state hot path allocates nothing per transaction. The arena is
/// deliberately *not* synchronized — its owner already holds the lock
/// guarding the intentions table.
#[derive(Debug, Default)]
pub struct IntentionArena {
    pool: Vec<Vec<OpResult>>,
}

impl IntentionArena {
    /// An empty arena.
    pub fn new() -> Self {
        IntentionArena { pool: Vec::new() }
    }

    /// A cleared list, recycled if one is pooled.
    pub fn acquire(&mut self) -> Vec<OpResult> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a list to the pool (cleared; dropped once the pool is
    /// full).
    pub fn release(&mut self, mut list: Vec<OpResult>) {
        if self.pool.len() < ARENA_POOL_CAP && list.capacity() > 0 {
            list.clear();
            self.pool.push(list);
        }
    }

    /// Lists currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// A filled-in-place result slot a submitting thread waits on.
#[derive(Debug, Default)]
struct Slot {
    out: Mutex<Option<AdmissionOutcome>>,
    cv: Condvar,
}

impl Slot {
    fn fill(&self, outcome: AdmissionOutcome) {
        *self.out.lock() = Some(outcome);
        self.cv.notify_all();
    }

    fn take(&self) -> Option<AdmissionOutcome> {
        self.out.lock().take()
    }

    fn wait(&self) -> Option<AdmissionOutcome> {
        let mut g = self.out.lock();
        if g.is_none() {
            self.cv.wait_for(&mut g, COMBINE_WAIT_SLICE);
        }
        g.take()
    }
}

/// Flat-combining admission: submitting threads enqueue their requests;
/// whichever thread finds the combiner role free drains the whole queue
/// through [`Admission::admit_batch`] — one object-lock acquisition for
/// the entire batch — and distributes the outcomes.
///
/// One combiner typically fronts one heavily contended object, but the
/// combiner holds no object reference: the target is passed per submit,
/// so a combiner can also front a group of objects serialized together.
#[derive(Debug, Default)]
pub struct Combiner {
    queue: Mutex<Vec<(AdmissionRequest, Arc<Slot>)>>,
    combine: Mutex<()>,
}

impl Combiner {
    /// An empty combiner.
    pub fn new() -> Self {
        Combiner::default()
    }

    /// Admits `operation` for `txn` at `object` through the combining
    /// queue and waits for the outcome. Registration happens on the
    /// calling thread (the transaction's own), then the detached request
    /// may be admitted by any thread currently holding the combiner
    /// role.
    pub fn submit(
        &self,
        object: &dyn Admission,
        txn: &Txn,
        operation: Operation,
    ) -> AdmissionOutcome {
        if !txn.is_active() {
            return AdmissionOutcome::Rejected(TxnError::NotActive { txn: txn.id() });
        }
        object.register_txn(txn);
        let slot = Arc::new(Slot::default());
        let request = AdmissionRequest::from_txn(txn, operation);
        self.queue.lock().push((request, Arc::clone(&slot)));
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            match self.combine.try_lock() {
                Some(_combining) => {
                    self.drain(object);
                    // Everything enqueued before we took the role — our
                    // own request included — is now answered.
                    if let Some(outcome) = slot.take() {
                        return outcome;
                    }
                }
                None => {
                    // Another thread is combining on our behalf.
                    if let Some(outcome) = slot.wait() {
                        return outcome;
                    }
                }
            }
        }
    }

    /// Drains the queue until empty, answering every waiter. Called with
    /// the combiner role held.
    fn drain(&self, object: &dyn Admission) {
        loop {
            let batch = std::mem::take(&mut *self.queue.lock());
            if batch.is_empty() {
                return;
            }
            let (requests, slots): (Vec<AdmissionRequest>, Vec<Arc<Slot>>) =
                batch.into_iter().unzip();
            let outcomes = object.admit_batch(&requests);
            debug_assert_eq!(outcomes.len(), requests.len());
            for (slot, outcome) in slots.iter().zip(outcomes) {
                slot.fill(outcome);
            }
        }
    }

    /// Requests currently queued (waiting for a combiner).
    pub fn queued(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::op;

    #[test]
    fn outcome_result_round_trip() {
        let object = ObjectId::new(9);
        assert_eq!(
            AdmissionOutcome::Admitted(Value::from(3)).into_result(object),
            Ok(Value::from(3))
        );
        assert_eq!(
            AdmissionOutcome::Blocked {
                holders: BTreeSet::new()
            }
            .into_result(object),
            Err(TxnError::WouldBlock { object })
        );
        let e = TxnError::NotActive {
            txn: ActivityId::new(1),
        };
        assert_eq!(
            AdmissionOutcome::Rejected(e.clone()).into_result(object),
            Err(e.clone())
        );
        assert!(AdmissionOutcome::from_result(Ok(Value::ok())).is_admitted());
        assert_eq!(
            AdmissionOutcome::from_result(Err(TxnError::WouldBlock { object })),
            AdmissionOutcome::Blocked {
                holders: BTreeSet::new()
            }
        );
        assert_eq!(
            AdmissionOutcome::from_result(Err(e.clone())),
            AdmissionOutcome::Rejected(e)
        );
    }

    #[test]
    fn seqlock_cell_publishes_and_loads() {
        let cell: SeqlockCell<i64> = SeqlockCell::new();
        assert!(cell.load().is_none());
        assert_eq!(cell.version(), 0);
        cell.publish(Arc::new(7));
        assert_eq!(cell.load().as_deref(), Some(&7));
        cell.publish(Arc::new(8));
        cell.publish(Arc::new(9));
        assert_eq!(cell.load().as_deref(), Some(&9));
        assert_eq!(cell.version(), 3);
    }

    #[test]
    fn seqlock_cell_is_consistent_under_concurrent_publish() {
        let cell: Arc<SeqlockCell<(u64, u64)>> = Arc::new(SeqlockCell::new());
        cell.publish(Arc::new((0, 0)));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=2000u64 {
                    // Both halves move together; readers must never see
                    // them disagree.
                    cell.publish(Arc::new((i, i * 3)));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..4000 {
                        let snap = cell.load().expect("published before spawn");
                        assert_eq!(snap.1, snap.0 * 3, "torn snapshot");
                        assert!(snap.0 >= last, "snapshots must not go backwards");
                        last = snap.0;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.load().as_deref(), Some(&(2000, 6000)));
    }

    #[test]
    fn arena_recycles_capacity() {
        let mut arena = IntentionArena::new();
        let mut list = arena.acquire();
        list.push((op("deposit", [1]), Value::ok()));
        list.reserve(32);
        let cap = list.capacity();
        arena.release(list);
        assert_eq!(arena.pooled(), 1);
        let recycled = arena.acquire();
        assert!(recycled.is_empty());
        assert_eq!(recycled.capacity(), cap, "capacity survives recycling");
        assert_eq!(arena.pooled(), 0);
        // Zero-capacity lists are not worth pooling.
        arena.release(Vec::new());
        assert_eq!(arena.pooled(), 0);
    }
}
