//! Deadlock handling for blocking admission.
//!
//! Dynamic atomicity is implemented with *blocking*: an operation that is
//! not currently admissible waits for the conflicting transactions to
//! complete (the paper contrasts this with static atomicity's aborts,
//! §4.2.3). Blocking brings deadlock; the manager offers two classic
//! policies:
//!
//! - [`DeadlockPolicy::Detect`]: maintain the waits-for graph and abort a
//!   requester whose wait would close a cycle.
//! - [`DeadlockPolicy::WaitDie`]: timestamp-ordered prevention — an older
//!   requester may wait for a younger holder, a younger requester dies.

use atomicity_spec::ActivityId;
use std::collections::{BTreeMap, BTreeSet};

/// How the transaction manager resolves potential deadlocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockPolicy {
    /// Waits-for-graph cycle detection; the requester whose edge closes a
    /// cycle is told to abort.
    #[default]
    Detect,
    /// Wait-die prevention: a requester older (smaller id) than every
    /// conflicting holder waits; otherwise it is told to abort.
    WaitDie,
}

/// Outcome of asking to wait for a set of conflicting transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitDecision {
    /// The requester may block; its waits-for edges have been recorded.
    Wait,
    /// The requester must abort (cycle detected or wait-die says die).
    Die,
}

/// The waits-for graph shared by all objects of one transaction manager.
///
/// Engines call [`WaitGraph::request_wait`] before blocking and
/// [`WaitGraph::clear_waiter`] after waking (or aborting); edges are
/// also cleared for completed transactions via
/// [`WaitGraph::clear_target`].
#[derive(Debug, Default)]
pub struct WaitGraph {
    edges: BTreeMap<ActivityId, BTreeSet<ActivityId>>,
}

impl WaitGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        WaitGraph {
            edges: BTreeMap::new(),
        }
    }

    /// Asks for permission for `waiter` to block on `holders`.
    ///
    /// Under [`DeadlockPolicy::Detect`], the edges are added tentatively
    /// and a cycle through `waiter` is searched; on a cycle the edges are
    /// removed and [`WaitDecision::Die`] is returned. Under
    /// [`DeadlockPolicy::WaitDie`], the requester dies iff some holder is
    /// older (smaller raw id).
    pub fn request_wait(
        &mut self,
        waiter: ActivityId,
        holders: &BTreeSet<ActivityId>,
        policy: DeadlockPolicy,
    ) -> WaitDecision {
        debug_assert!(!holders.contains(&waiter), "waiting on self");
        match policy {
            DeadlockPolicy::WaitDie => {
                if holders.iter().any(|h| h.raw() < waiter.raw()) {
                    WaitDecision::Die
                } else {
                    self.edges.entry(waiter).or_default().extend(holders);
                    WaitDecision::Wait
                }
            }
            DeadlockPolicy::Detect => {
                self.edges.entry(waiter).or_default().extend(holders);
                if self.on_cycle(waiter) {
                    self.clear_waiter(waiter);
                    WaitDecision::Die
                } else {
                    WaitDecision::Wait
                }
            }
        }
    }

    /// Removes all outgoing edges of `waiter` (it woke up or aborted).
    pub fn clear_waiter(&mut self, waiter: ActivityId) {
        self.edges.remove(&waiter);
    }

    /// Removes all incoming edges to `target` (it committed or aborted, so
    /// nobody is truly waiting on it any more).
    pub fn clear_target(&mut self, target: ActivityId) {
        self.edges.remove(&target);
        for holders in self.edges.values_mut() {
            holders.remove(&target);
        }
    }

    /// Whether `start` can reach itself through waits-for edges.
    fn on_cycle(&self, start: ActivityId) -> bool {
        let mut stack: Vec<ActivityId> = self
            .edges
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen = BTreeSet::new();
        while let Some(node) = stack.pop() {
            if node == start {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = self.edges.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Number of transactions currently registered as waiting.
    pub fn waiter_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> ActivityId {
        ActivityId::new(n)
    }

    fn set(ids: &[u32]) -> BTreeSet<ActivityId> {
        ids.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn detect_allows_acyclic_waits() {
        let mut g = WaitGraph::new();
        assert_eq!(
            g.request_wait(id(1), &set(&[2]), DeadlockPolicy::Detect),
            WaitDecision::Wait
        );
        assert_eq!(
            g.request_wait(id(2), &set(&[3]), DeadlockPolicy::Detect),
            WaitDecision::Wait
        );
        assert_eq!(g.waiter_count(), 2);
    }

    #[test]
    fn detect_kills_cycle_closer() {
        let mut g = WaitGraph::new();
        g.request_wait(id(1), &set(&[2]), DeadlockPolicy::Detect);
        g.request_wait(id(2), &set(&[3]), DeadlockPolicy::Detect);
        // 3 -> 1 closes the cycle 1 -> 2 -> 3 -> 1.
        assert_eq!(
            g.request_wait(id(3), &set(&[1]), DeadlockPolicy::Detect),
            WaitDecision::Die
        );
        // The dying requester's edges were rolled back.
        assert_eq!(g.waiter_count(), 2);
    }

    #[test]
    fn detect_kills_two_party_cycle() {
        let mut g = WaitGraph::new();
        g.request_wait(id(1), &set(&[2]), DeadlockPolicy::Detect);
        assert_eq!(
            g.request_wait(id(2), &set(&[1]), DeadlockPolicy::Detect),
            WaitDecision::Die
        );
    }

    #[test]
    fn wait_die_orders_by_age() {
        let mut g = WaitGraph::new();
        // Older (1) waits on younger (2).
        assert_eq!(
            g.request_wait(id(1), &set(&[2]), DeadlockPolicy::WaitDie),
            WaitDecision::Wait
        );
        // Younger (3) dies waiting on older (2).
        assert_eq!(
            g.request_wait(id(3), &set(&[2]), DeadlockPolicy::WaitDie),
            WaitDecision::Die
        );
        // Mixed holders: any older holder kills the request.
        assert_eq!(
            g.request_wait(id(5), &set(&[6, 4]), DeadlockPolicy::WaitDie),
            WaitDecision::Die
        );
    }

    #[test]
    fn clearing_target_unblocks_dependents() {
        let mut g = WaitGraph::new();
        g.request_wait(id(1), &set(&[2]), DeadlockPolicy::Detect);
        g.request_wait(id(2), &set(&[3]), DeadlockPolicy::Detect);
        g.clear_target(id(3));
        // 3 gone: 3->... edges gone and 2's edge to 3 removed, so a new
        // wait 3-free graph has no cycle for 2 -> 1.
        assert_eq!(
            g.request_wait(id(3), &set(&[1]), DeadlockPolicy::Detect),
            WaitDecision::Wait
        );
    }

    #[test]
    fn clear_waiter_removes_outgoing_edges() {
        let mut g = WaitGraph::new();
        g.request_wait(id(1), &set(&[2]), DeadlockPolicy::Detect);
        g.clear_waiter(id(1));
        assert_eq!(g.waiter_count(), 0);
        // No stale cycle: 2 can now wait on 1.
        assert_eq!(
            g.request_wait(id(2), &set(&[1]), DeadlockPolicy::Detect),
            WaitDecision::Wait
        );
    }
}
