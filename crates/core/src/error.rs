//! Error types for the transaction runtime.

use atomicity_spec::{ActivityId, ObjectId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A stable, payload-free code classifying a [`TxnError`].
///
/// Every `TxnError` variant maps to exactly one reason via
/// [`TxnError::reason`]. The metrics layer keys its abort taxonomy on
/// these codes, and retry loops can branch on them instead of
/// pattern-matching the (non-exhaustive, payload-carrying) error enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// The transaction was already committed or aborted.
    NotActive,
    /// Waiting would deadlock (or wait-die killed the requester).
    Deadlock,
    /// Serializing at the transaction's timestamp would invalidate
    /// results already returned (static engine).
    TimestampConflict,
    /// The operation is not permitted by the object's specification.
    InvalidOperation,
    /// The operation or transaction kind does not fit the protocol.
    ProtocolMismatch,
    /// The timestamp predates the object's compaction watermark.
    TimestampTooOld,
    /// A participant vetoed prepare; the transaction was aborted.
    PrepareFailed,
    /// A non-blocking invocation found the operation inadmissible.
    WouldBlock,
}

impl AbortReason {
    /// Every reason, in taxonomy (index) order.
    pub const ALL: [AbortReason; 8] = [
        AbortReason::NotActive,
        AbortReason::Deadlock,
        AbortReason::TimestampConflict,
        AbortReason::InvalidOperation,
        AbortReason::ProtocolMismatch,
        AbortReason::TimestampTooOld,
        AbortReason::PrepareFailed,
        AbortReason::WouldBlock,
    ];

    /// A short stable label (used as JSON keys in metrics reports).
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::NotActive => "not_active",
            AbortReason::Deadlock => "deadlock",
            AbortReason::TimestampConflict => "timestamp_conflict",
            AbortReason::InvalidOperation => "invalid_operation",
            AbortReason::ProtocolMismatch => "protocol_mismatch",
            AbortReason::TimestampTooOld => "timestamp_too_old",
            AbortReason::PrepareFailed => "prepare_failed",
            AbortReason::WouldBlock => "would_block",
        }
    }

    /// The reason's position in [`AbortReason::ALL`]; metrics use it to
    /// index a fixed array of counters.
    pub fn index(self) -> usize {
        AbortReason::ALL
            .iter()
            .position(|r| *r == self)
            .expect("every reason is in ALL")
    }

    /// Whether errors with this reason oblige the caller to abort.
    pub fn must_abort(self) -> bool {
        matches!(
            self,
            AbortReason::Deadlock | AbortReason::TimestampConflict | AbortReason::TimestampTooOld
        )
    }

    /// Whether this reason stems from timestamp-order validation (the
    /// static engine's refusals, retryable with a fresh timestamp).
    pub fn is_timestamp(self) -> bool {
        matches!(
            self,
            AbortReason::TimestampConflict | AbortReason::TimestampTooOld
        )
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An error surfaced by the transaction runtime.
///
/// Operations on atomic objects and transaction-manager calls return
/// `Result<_, TxnError>`. Several variants (notably
/// [`TxnError::Deadlock`] and [`TxnError::TimestampConflict`]) signal that
/// the *calling transaction must abort*; the caller is expected to invoke
/// [`crate::TxnManager::abort`] and may then retry with a fresh
/// transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TxnError {
    /// The transaction was already committed or aborted.
    NotActive {
        /// The transaction in question.
        txn: ActivityId,
    },
    /// Waiting for a conflicting transaction would deadlock (or the
    /// wait-die policy chose to kill the requester). The transaction must
    /// abort.
    Deadlock {
        /// The transaction that must abort.
        txn: ActivityId,
        /// The object at which the conflict arose.
        object: ObjectId,
    },
    /// Under static (timestamp) atomicity, executing the operation at the
    /// transaction's timestamp would invalidate results already returned
    /// to other activities — the generalization of Reed's write-after-read
    /// abort. The transaction must abort.
    TimestampConflict {
        /// The transaction that must abort.
        txn: ActivityId,
        /// The object at which validation failed.
        object: ObjectId,
    },
    /// The operation is not permitted by the object's specification in any
    /// state (unknown name or ill-typed arguments).
    InvalidOperation {
        /// The object rejecting the operation.
        object: ObjectId,
        /// Rendered operation, for diagnostics.
        operation: String,
    },
    /// The operation or transaction kind does not fit the object's
    /// protocol (e.g. a mutating operation by a read-only transaction, or
    /// a timestamp-protocol object invoked by a transaction without a
    /// timestamp).
    ProtocolMismatch {
        /// The object reporting the mismatch.
        object: ObjectId,
        /// What was wrong.
        detail: String,
    },
    /// The transaction's timestamp is older than the object's compaction
    /// watermark; history needed to serve it has been discarded. The
    /// transaction must abort.
    TimestampTooOld {
        /// The transaction that must abort.
        txn: ActivityId,
        /// The object whose history was compacted.
        object: ObjectId,
    },
    /// Commit failed because a participant could not prepare; the
    /// transaction has been aborted.
    PrepareFailed {
        /// The transaction that was aborted.
        txn: ActivityId,
        /// The participant that refused.
        object: ObjectId,
    },
    /// A non-blocking invocation ([`crate::AtomicObject::try_invoke`])
    /// found the operation currently inadmissible; nothing was recorded
    /// and the caller may retry later.
    WouldBlock {
        /// The object at which the operation would have to wait.
        object: ObjectId,
    },
}

impl TxnError {
    /// Whether this error obliges the caller to abort the transaction.
    pub fn must_abort(&self) -> bool {
        self.reason().must_abort()
    }

    /// The stable [`AbortReason`] code for this error.
    pub fn reason(&self) -> AbortReason {
        match self {
            TxnError::NotActive { .. } => AbortReason::NotActive,
            TxnError::Deadlock { .. } => AbortReason::Deadlock,
            TxnError::TimestampConflict { .. } => AbortReason::TimestampConflict,
            TxnError::InvalidOperation { .. } => AbortReason::InvalidOperation,
            TxnError::ProtocolMismatch { .. } => AbortReason::ProtocolMismatch,
            TxnError::TimestampTooOld { .. } => AbortReason::TimestampTooOld,
            TxnError::PrepareFailed { .. } => AbortReason::PrepareFailed,
            TxnError::WouldBlock { .. } => AbortReason::WouldBlock,
        }
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::NotActive { txn } => write!(f, "transaction {txn} is not active"),
            TxnError::Deadlock { txn, object } => {
                write!(f, "transaction {txn} would deadlock at {object}")
            }
            TxnError::TimestampConflict { txn, object } => write!(
                f,
                "transaction {txn} conflicts with later timestamps at {object}"
            ),
            TxnError::InvalidOperation { object, operation } => {
                write!(f, "operation {operation} is not valid for {object}")
            }
            TxnError::ProtocolMismatch { object, detail } => {
                write!(f, "protocol mismatch at {object}: {detail}")
            }
            TxnError::TimestampTooOld { txn, object } => write!(
                f,
                "timestamp of transaction {txn} predates the compaction watermark of {object}"
            ),
            TxnError::PrepareFailed { txn, object } => {
                write!(
                    f,
                    "participant {object} failed to prepare transaction {txn}"
                )
            }
            TxnError::WouldBlock { object } => {
                write!(f, "operation would block at {object}")
            }
        }
    }
}

impl Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn must_abort_classification() {
        let txn = ActivityId::new(1);
        let object = ObjectId::new(1);
        assert!(TxnError::Deadlock { txn, object }.must_abort());
        assert!(TxnError::TimestampConflict { txn, object }.must_abort());
        assert!(TxnError::TimestampTooOld { txn, object }.must_abort());
        assert!(!TxnError::NotActive { txn }.must_abort());
        assert!(!TxnError::InvalidOperation {
            object,
            operation: "frob".into()
        }
        .must_abort());
        assert!(!TxnError::WouldBlock { object }.must_abort());
    }

    #[test]
    fn reason_is_stable_and_indexed() {
        let txn = ActivityId::new(1);
        let object = ObjectId::new(1);
        assert_eq!(
            TxnError::Deadlock { txn, object }.reason(),
            AbortReason::Deadlock
        );
        assert_eq!(
            TxnError::WouldBlock { object }.reason(),
            AbortReason::WouldBlock
        );
        for (i, reason) in AbortReason::ALL.iter().enumerate() {
            assert_eq!(reason.index(), i);
        }
        assert!(AbortReason::TimestampConflict.is_timestamp());
        assert!(AbortReason::TimestampTooOld.is_timestamp());
        assert!(!AbortReason::Deadlock.is_timestamp());
        let labels: std::collections::BTreeSet<&str> =
            AbortReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), AbortReason::ALL.len(), "labels are unique");
    }

    #[test]
    fn display_is_informative() {
        let txn = ActivityId::new(3);
        let object = ObjectId::new(7);
        let e = TxnError::Deadlock { txn, object };
        let s = e.to_string();
        assert!(s.contains("a3") && s.contains("x7"));
    }
}
