//! Machine-generated conflict tables and the commutativity-relation
//! abstraction consumed by table-driven lockers.
//!
//! Hand-written commutativity tables (the Schwarz & Spector style baseline
//! in `atomicity-baselines`) are plain `fn(&Operation, &Operation) -> bool`
//! pointers. The synthesis pass in `atomicity-lint` instead *derives* the
//! relation from the object's sequential specification and ships it as a
//! [`ConflictTable`]: a small set of generalized rules keyed by operation
//! names plus an [`ArgRelation`] bucket, with provenance recording exactly
//! which bounded state universe the rules were proven over.
//!
//! Both representations implement [`CommutesRel`], so a locker can hold an
//! `Arc<dyn CommutesRel>` and stay agnostic about whether its table was
//! written by a human or synthesized by the analyzer.
//!
//! Lookups are **conservative by construction**: an operation pair that
//! matches no rule (unknown name, or an argument shape the universe never
//! exercised) is reported as conflicting. A generated table can therefore
//! lose concurrency on out-of-universe operations, but never admits a pair
//! the synthesis did not prove commutative.

use atomicity_spec::Operation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the arguments of two operation instances relate — the bucketing used
/// to generalize per-instance commutativity verdicts into table rules.
///
/// The buckets are deliberately coarse: they only distinguish shapes that
/// the shipped ADT specifications actually branch on (equality of the whole
/// invocation, and equality of an integer first argument — the "key" of
/// sets, maps and keyed queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ArgRelation {
    /// Same name and identical argument list (e.g. `withdraw(5)` twice).
    Identical,
    /// Both operations carry an integer first argument and the keys are
    /// equal, but the invocations are not identical (e.g. `put(1,5)` vs
    /// `put(1,9)`, or `adjust(1,1)` vs `adjust(1,2)`).
    SameKey,
    /// Both operations carry an integer first argument and the keys differ
    /// (e.g. `insert(1)` vs `insert(2)`).
    DistinctKey,
    /// At least one side has no integer first argument (nullary observers,
    /// scans, …) and the invocations are not identical.
    Unkeyed,
}

impl ArgRelation {
    /// Short label used in reports (`identical`, `same-key`, …).
    pub fn label(self) -> &'static str {
        match self {
            ArgRelation::Identical => "identical",
            ArgRelation::SameKey => "same-key",
            ArgRelation::DistinctKey => "distinct-key",
            ArgRelation::Unkeyed => "unkeyed",
        }
    }
}

impl fmt::Display for ArgRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies how the arguments of `p` and `q` relate.
///
/// The relation is symmetric: `arg_relation(p, q) == arg_relation(q, p)`.
pub fn arg_relation(p: &Operation, q: &Operation) -> ArgRelation {
    if p == q {
        return ArgRelation::Identical;
    }
    match (p.int_arg(0), q.int_arg(0)) {
        (Some(a), Some(b)) if a == b => ArgRelation::SameKey,
        (Some(_), Some(_)) => ArgRelation::DistinctKey,
        _ => ArgRelation::Unkeyed,
    }
}

/// One generalized table rule: a verdict for every pair of operations with
/// these names whose arguments fall in `relation`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictRule {
    /// First operation name; rules are stored with `p_name <= q_name`.
    pub p_name: String,
    /// Second operation name.
    pub q_name: String,
    /// Argument bucket the rule covers.
    pub relation: ArgRelation,
    /// Whether every universe instance pair in this bucket commutes in
    /// every explored state.
    pub commutes: bool,
    /// How many universe instance pairs back this rule (provenance; a rule
    /// supported by more pairs generalizes from more evidence).
    pub instance_pairs: usize,
}

/// A machine-generated commutativity table with provenance.
///
/// Produced by the synthesis pass in `atomicity-lint`; consumed by the
/// commutativity-locking baseline through [`CommutesRel`]. Serializes to
/// JSON for the gap report artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictTable {
    /// Human name of the ADT the table covers (`"bank"`, `"escrow"`, …).
    pub adt: String,
    /// Name of the sequential specification the rules were derived from.
    pub spec: String,
    /// BFS depth of the state universe the verdicts were proven over.
    pub depth: usize,
    /// Number of distinct states explored.
    pub states_explored: usize,
    /// Number of states cut off by the exploration cap (0 means the bounded
    /// universe was exhausted).
    pub truncated: usize,
    /// Display form of the operation instances that seeded the universe.
    pub universe: Vec<String>,
    /// The generalized rules. Absent (name pair, relation) combinations are
    /// treated as conflicting.
    pub rules: Vec<ConflictRule>,
}

impl ConflictTable {
    /// Looks up the rule covering `(p, q)`, if any.
    pub fn rule_for(&self, p: &Operation, q: &Operation) -> Option<&ConflictRule> {
        let relation = arg_relation(p, q);
        let (a, b) = if p.name() <= q.name() {
            (p.name(), q.name())
        } else {
            (q.name(), p.name())
        };
        self.rules
            .iter()
            .find(|r| r.relation == relation && r.p_name == a && r.q_name == b)
    }

    /// Whether the table declares `p` and `q` commutative. Pairs covered by
    /// no rule conflict (conservative default).
    pub fn commutes(&self, p: &Operation, q: &Operation) -> bool {
        self.rule_for(p, q).is_some_and(|r| r.commutes)
    }

    /// Number of rules declaring commutativity.
    pub fn commuting_rules(&self) -> usize {
        self.rules.iter().filter(|r| r.commutes).count()
    }
}

/// A symmetric commutativity relation over operations — the interface a
/// table-driven locker needs, abstracting over hand-written function
/// pointers and generated [`ConflictTable`]s.
pub trait CommutesRel: Send + Sync {
    /// Whether `p` and `q` may be held concurrently by distinct
    /// transactions.
    fn commutes(&self, p: &Operation, q: &Operation) -> bool;
}

impl CommutesRel for ConflictTable {
    fn commutes(&self, p: &Operation, q: &Operation) -> bool {
        ConflictTable::commutes(self, p, q)
    }
}

impl<F> CommutesRel for F
where
    F: Fn(&Operation, &Operation) -> bool + Send + Sync,
{
    fn commutes(&self, p: &Operation, q: &Operation) -> bool {
        self(p, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::op;

    fn table() -> ConflictTable {
        ConflictTable {
            adt: "bank".into(),
            spec: "BankAccountSpec".into(),
            depth: 4,
            states_explored: 19,
            truncated: 0,
            universe: vec!["deposit(5)".into(), "withdraw(5)".into()],
            rules: vec![
                ConflictRule {
                    p_name: "deposit".into(),
                    q_name: "deposit".into(),
                    relation: ArgRelation::Identical,
                    commutes: true,
                    instance_pairs: 2,
                },
                ConflictRule {
                    p_name: "deposit".into(),
                    q_name: "withdraw".into(),
                    relation: ArgRelation::DistinctKey,
                    commutes: false,
                    instance_pairs: 2,
                },
            ],
        }
    }

    #[test]
    fn arg_relation_buckets() {
        assert_eq!(
            arg_relation(&op("withdraw", [5]), &op("withdraw", [5])),
            ArgRelation::Identical
        );
        assert_eq!(
            arg_relation(&op("put", [1, 5]), &op("put", [1, 9])),
            ArgRelation::SameKey
        );
        assert_eq!(
            arg_relation(&op("insert", [1]), &op("insert", [2])),
            ArgRelation::DistinctKey
        );
        assert_eq!(
            arg_relation(&op("front", [] as [i64; 0]), &op("len", [] as [i64; 0])),
            ArgRelation::Unkeyed
        );
        // Identical nullary invocations are Identical, not Unkeyed.
        assert_eq!(
            arg_relation(&op("deq", [] as [i64; 0]), &op("deq", [] as [i64; 0])),
            ArgRelation::Identical
        );
    }

    #[test]
    fn lookup_is_symmetric_and_conservative() {
        let t = table();
        let d = op("deposit", [5]);
        assert!(t.commutes(&d, &d));
        let w = op("withdraw", [9]);
        // Covered rule with commutes=false.
        assert!(!t.commutes(&d, &w));
        assert!(!t.commutes(&w, &d));
        // Unknown name: no rule, conservative conflict.
        let z = op("zap", [1]);
        assert!(!t.commutes(&d, &z));
        // Unknown bucket for a known pair: conservative conflict.
        let d2 = op("deposit", [3]);
        assert!(!t.commutes(&d, &d2)); // distinct-key deposit/deposit has no rule here
        assert_eq!(t.commuting_rules(), 1);
    }

    #[test]
    fn fn_pointers_and_tables_share_the_relation_trait() {
        fn never(_: &Operation, _: &Operation) -> bool {
            false
        }
        let as_rel: &dyn CommutesRel = &never;
        assert!(!as_rel.commutes(&op("a", [] as [i64; 0]), &op("b", [] as [i64; 0])));
        let t = table();
        let as_rel: &dyn CommutesRel = &t;
        assert!(as_rel.commutes(&op("deposit", [5]), &op("deposit", [5])));
    }

    #[test]
    fn tables_round_trip_through_json() {
        let t = table();
        let json = serde_json::to_string(&t).unwrap();
        let back: ConflictTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
