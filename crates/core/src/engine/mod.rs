//! Online engines implementing the three local atomicity properties.
//!
//! Each engine wraps a [`atomicity_spec::SequentialSpec`] and exposes the
//! uniform [`crate::AtomicObject`] interface; each guarantees that the
//! histories it contributes to the shared [`crate::HistoryLog`] satisfy
//! the corresponding property of §4:
//!
//! - [`dynamic::DynamicObject`] — state-dependent admission over
//!   intentions lists; conflicts block (§4.1).
//! - [`static_ts::StaticObject`] — a timestamp-ordered operation log with
//!   replay validation, generalizing Reed's multi-version scheme (§4.2).
//! - [`hybrid::HybridObject`] — the dynamic engine for updates plus
//!   commit-timestamped versions served to read-only transactions (§4.3).

pub mod dynamic;
pub mod hybrid;
pub mod static_ts;

use atomicity_spec::{OpResult, SequentialSpec};

/// Applies `ops` to every state in `frontier`, collecting all reachable
/// states in which each operation returned its recorded result.
///
/// The frontier-set representation is what makes non-deterministic
/// specifications (§5.2) compose correctly: committing a transaction never
/// collapses the object's abstract state to one arbitrary branch.
pub(crate) fn replay_frontier<S: SequentialSpec>(
    spec: &S,
    frontier: &[S::State],
    ops: &[OpResult],
) -> Vec<S::State> {
    let mut states: Vec<S::State> = frontier.to_vec();
    for (op, expected) in ops {
        let mut next: Vec<S::State> = Vec::new();
        for s in &states {
            for (value, s2) in spec.step(s, op) {
                if &value == expected && !next.contains(&s2) {
                    next.push(s2);
                }
            }
        }
        if next.is_empty() {
            return Vec::new();
        }
        states = next;
    }
    states
}

/// Whether **every** permutation of `lists` replays successfully from
/// `frontier` — the admission invariant of the dynamic engine: all
/// serialization orders of the active transactions must remain acceptable.
pub(crate) fn all_orders_replay<S: SequentialSpec>(
    spec: &S,
    frontier: &[S::State],
    lists: &[&[OpResult]],
) -> bool {
    fn rec<S: SequentialSpec>(
        spec: &S,
        frontier: &[S::State],
        lists: &[&[OpResult]],
        remaining: u32,
    ) -> bool {
        if remaining == 0 {
            return true;
        }
        for (i, list) in lists.iter().enumerate() {
            if remaining & (1 << i) == 0 {
                continue;
            }
            let next = replay_frontier(spec, frontier, list);
            if next.is_empty() {
                // Some permutation starting with this prefix fails.
                return false;
            }
            if !rec(spec, &next, lists, remaining & !(1 << i)) {
                return false;
            }
        }
        true
    }
    debug_assert!(lists.len() <= 31);
    rec(spec, frontier, lists, (1u32 << lists.len()) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::specs::{BankAccountSpec, SemiqueueSpec};
    use atomicity_spec::{op, Value};

    #[test]
    fn replay_frontier_tracks_nondeterministic_branches() {
        let q = SemiqueueSpec::new();
        let initial = vec![q.initial()];
        let after = replay_frontier(
            &q,
            &initial,
            &[(op("enq", [1]), Value::ok()), (op("enq", [2]), Value::ok())],
        );
        assert_eq!(after.len(), 1);
        // A deq with unrecorded choice: both branches survive via two
        // different recorded values.
        let branch1 = replay_frontier(&q, &after, &[(op("deq", [] as [i64; 0]), Value::from(1))]);
        let branch2 = replay_frontier(&q, &after, &[(op("deq", [] as [i64; 0]), Value::from(2))]);
        assert_eq!(branch1.len(), 1);
        assert_eq!(branch2.len(), 1);
        assert_ne!(branch1, branch2);
    }

    #[test]
    fn all_orders_replay_bank_examples() {
        let spec = BankAccountSpec::new();
        let base = vec![10i64];
        let b: Vec<_> = vec![(op("withdraw", [4]), Value::ok())];
        let c: Vec<_> = vec![(op("withdraw", [3]), Value::ok())];
        // Enough money for both orders.
        assert!(all_orders_replay(&spec, &base, &[&b, &c]));
        // Balance 5: withdraw(4)+withdraw(3) cannot both be ok in either
        // order.
        let tight = vec![5i64];
        assert!(!all_orders_replay(&spec, &tight, &[&b, &c]));
        // Withdraw needing a concurrent uncommitted deposit: fails the
        // order where the withdrawal goes first.
        let poor = vec![2i64];
        let dep: Vec<_> = vec![(op("deposit", [5]), Value::ok())];
        let wd: Vec<_> = vec![(op("withdraw", [3]), Value::ok())];
        assert!(!all_orders_replay(&spec, &poor, &[&dep, &wd]));
    }

    #[test]
    fn all_orders_replay_empty_is_true() {
        let spec = BankAccountSpec::new();
        assert!(all_orders_replay(&spec, &[0i64], &[]));
    }
}
