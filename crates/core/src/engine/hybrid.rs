//! The hybrid-atomicity engine (§4.3).
//!
//! Updates are processed exactly as under dynamic atomicity
//! (state-dependent admission over intentions lists, conflicts block);
//! when an update commits, the manager assigns it a **commit timestamp**
//! from the Lamport clock (consistent with `precedes` by construction)
//! and the object installs the new committed state as a **version**
//! keyed by that timestamp.
//!
//! Read-only transactions choose their timestamps at start and are served
//! from the version chain: a reader with timestamp `t` sees exactly the
//! committed updates with timestamps less than `t` — it never blocks,
//! never aborts, and never interferes with updates (§4.3.3: "audits under
//! the implementation of hybrid atomicity do not interfere with any
//! updates").

use crate::admission::{
    Admission, AdmissionOutcome, AdmissionRequest, IntentionArena, SeqlockCell,
};
use crate::conflict::CommutesRel;
use crate::engine::{all_orders_replay, replay_frontier};
use crate::error::TxnError;
use crate::log::HistoryLog;
use crate::manager::TxnManager;
use crate::object::{AtomicObject, Participant};
use crate::stats::StatsSnapshot;
use crate::trace::ObjectMetrics;
use crate::txn::{Txn, TxnKind};
use atomicity_spec::{
    ActivityId, Event, ObjectId, OpResult, Operation, SequentialSpec, Timestamp, Value,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Weak};
use std::time::Duration;

const DEFAULT_MAX_CHECK: usize = 6;
const WAIT_SLICE: Duration = Duration::from_millis(5);

/// An atomic object guaranteeing **hybrid atomicity** for a sequential
/// specification `S`.
///
/// Use under [`crate::Protocol::Hybrid`]: updates from
/// [`crate::TxnManager::begin`], audits from
/// [`crate::TxnManager::begin_read_only`].
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol, HybridObject, AtomicObject};
/// use atomicity_spec::specs::BankAccountSpec;
/// use atomicity_spec::{op, ObjectId, Value};
///
/// let mgr = TxnManager::new(Protocol::Hybrid);
/// let acct = HybridObject::new(ObjectId::new(1), BankAccountSpec::new(), &mgr);
/// let t = mgr.begin();
/// acct.invoke(&t, op("deposit", [10]))?;
/// mgr.commit(t)?;
/// let audit = mgr.begin_read_only();
/// assert_eq!(acct.invoke(&audit, op("balance", [] as [i64; 0]))?, Value::from(10));
/// mgr.commit(audit)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
pub struct HybridObject<S: SequentialSpec> {
    id: ObjectId,
    spec: S,
    log: HistoryLog,
    mu: Mutex<Inner<S>>,
    cv: Condvar,
    max_check: usize,
    /// Optional state-independent commutativity relation (a synthesized
    /// conflict table) used as an update-admission fast path.
    fast_rel: Option<Arc<dyn CommutesRel>>,
    /// The newest committed version, published for the lock-free read
    /// path. The manager's commit gate orders every publish with
    /// timestamp below a reader's start timestamp before that reader
    /// begins, so a reader whose timestamp exceeds the published
    /// version's never needs the version chain (and never takes `mu`).
    latest: SeqlockCell<(Timestamp, Vec<S::State>)>,
    /// Read-only transactions that have touched this object. Kept outside
    /// `mu` so the read path never contends with update admission.
    readers: Mutex<BTreeSet<ActivityId>>,
    metrics: ObjectMetrics,
    self_ref: Weak<HybridObject<S>>,
}

struct Inner<S: SequentialSpec> {
    /// The newest committed state frontier (admission base for updates).
    current: Vec<S::State>,
    /// Committed versions, ascending by commit timestamp.
    versions: Vec<(Timestamp, Vec<S::State>)>,
    /// Intentions list per active update transaction.
    intentions: BTreeMap<ActivityId, Vec<OpResult>>,
    /// Recycles intentions-list allocations across transactions.
    arena: IntentionArena,
}

enum Admit {
    Granted(Value),
    Invalid,
    Conflict(BTreeSet<ActivityId>),
}

impl<S: SequentialSpec> HybridObject<S> {
    /// Creates the object and wires it to the manager's history log.
    pub fn new(id: ObjectId, spec: S, mgr: &TxnManager) -> Arc<Self> {
        Self::with_max_check(id, spec, mgr, DEFAULT_MAX_CHECK)
    }

    /// Creates the object with a custom concurrent-admission bound.
    pub fn with_max_check(id: ObjectId, spec: S, mgr: &TxnManager, max_check: usize) -> Arc<Self> {
        Self::build(id, spec, mgr, max_check, None)
    }

    /// Creates the object with a state-independent commutativity relation
    /// used as an update-admission fast path (see
    /// [`DynamicObject::with_relation`](crate::DynamicObject::with_relation)
    /// — update admission is identical under hybrid atomicity).
    pub fn with_relation(
        id: ObjectId,
        spec: S,
        mgr: &TxnManager,
        rel: Arc<dyn CommutesRel>,
    ) -> Arc<Self> {
        Self::build(id, spec, mgr, DEFAULT_MAX_CHECK, Some(rel))
    }

    fn build(
        id: ObjectId,
        spec: S,
        mgr: &TxnManager,
        max_check: usize,
        fast_rel: Option<Arc<dyn CommutesRel>>,
    ) -> Arc<Self> {
        let initial = vec![spec.initial()];
        Arc::new_cyclic(|self_ref| HybridObject {
            id,
            spec,
            log: mgr.log(),
            mu: Mutex::new(Inner {
                current: initial,
                versions: Vec::new(),
                intentions: BTreeMap::new(),
                arena: IntentionArena::new(),
            }),
            cv: Condvar::new(),
            max_check,
            fast_rel,
            latest: SeqlockCell::new(),
            readers: Mutex::new(BTreeSet::new()),
            metrics: mgr.metrics().object(id),
            self_ref: self_ref.clone(),
        })
    }

    /// Contention statistics for this object.
    pub fn stats(&self) -> StatsSnapshot {
        self.metrics.stats()
    }

    /// Number of retained committed versions.
    pub fn version_count(&self) -> usize {
        self.mu.lock().versions.len()
    }

    /// Discards versions no longer needed by readers with timestamps
    /// `>= horizon` (the newest version strictly below the horizon is
    /// retained as their snapshot base).
    pub fn truncate_versions_below(&self, horizon: Timestamp) {
        let mut inner = self.mu.lock();
        let keep_from = inner
            .versions
            .partition_point(|(ts, _)| *ts < horizon)
            .saturating_sub(1);
        inner.versions.drain(..keep_from);
    }

    fn self_participant(&self) -> Arc<dyn Participant> {
        self.self_ref
            .upgrade()
            .expect("HybridObject used after its Arc was dropped")
    }

    /// The state frontier visible to a reader with timestamp `ts`: the
    /// newest version committed strictly before `ts`.
    fn snapshot_at(&self, inner: &Inner<S>, ts: Timestamp) -> Vec<S::State> {
        let idx = inner.versions.partition_point(|(vts, _)| *vts < ts);
        if idx == 0 {
            vec![self.spec.initial()]
        } else {
            inner.versions[idx - 1].1.clone()
        }
    }

    fn try_admit_update(&self, inner: &Inner<S>, me: ActivityId, op: &Operation) -> Admit {
        let empty = Vec::new();
        let own = inner.intentions.get(&me).unwrap_or(&empty);
        let own_frontier = replay_frontier(&self.spec, &inner.current, own);
        debug_assert!(!own_frontier.is_empty());

        let mut candidates: Vec<Value> = Vec::new();
        for s in &own_frontier {
            for (v, _) in self.spec.step(s, op) {
                if !candidates.contains(&v) {
                    candidates.push(v);
                }
            }
        }
        if candidates.is_empty() {
            return Admit::Invalid;
        }
        candidates.sort();

        let others: Vec<(&ActivityId, &Vec<OpResult>)> = inner
            .intentions
            .iter()
            .filter(|(id, list)| **id != me && !list.is_empty())
            .collect();
        if others.is_empty() {
            return Admit::Granted(candidates.remove(0));
        }
        // Table fast path — see `DynamicObject::decide_admit`: a
        // deterministic operation commuting with every pending operation
        // replays identically in all orders, so it is admissible without
        // permutation enumeration and without the `max_check` block.
        if candidates.len() == 1 {
            if let Some(rel) = &self.fast_rel {
                if others
                    .iter()
                    .all(|(_, list)| list.iter().all(|(q, _)| rel.commutes(op, q)))
                {
                    self.metrics.record_fast_admission();
                    return Admit::Granted(candidates.remove(0));
                }
            }
        }
        if others.len() + 1 > self.max_check {
            return Admit::Conflict(others.iter().map(|(id, _)| **id).collect());
        }
        for v in candidates {
            let mut mine = own.clone();
            mine.push((op.clone(), v.clone()));
            let mut lists: Vec<&[OpResult]> = others.iter().map(|(_, l)| l.as_slice()).collect();
            lists.push(&mine);
            if all_orders_replay(&self.spec, &inner.current, &lists) {
                return Admit::Granted(v);
            }
        }
        Admit::Conflict(others.iter().map(|(id, _)| **id).collect())
    }

    /// The state frontier a reader with timestamp `ts` observes, taken
    /// from the seqlock-published newest version when possible.
    ///
    /// Lock-free case: the manager's commit gate serializes commit-
    /// timestamp assignment and version publication against read-only
    /// starts, so every version with timestamp below `ts` is published
    /// before the reader begins, and published versions are monotone in
    /// timestamp. Hence if the published newest version predates `ts`, it
    /// *is* the reader's snapshot. Only historical readers (pinned below
    /// the newest version) fall back to the version chain under `mu`.
    /// Returns the snapshot states and whether they came off the
    /// mutex-free seqlock path.
    fn read_snapshot(&self, ts: Timestamp) -> (Vec<S::State>, bool) {
        if let Some(latest) = self.latest.load() {
            if latest.0 < ts {
                return (latest.1.clone(), true);
            }
            let inner = self.mu.lock();
            return (self.snapshot_at(&inner, ts), false);
        }
        // Nothing published: no update with a timestamp below `ts` has
        // committed, so the reader sees the initial state.
        (vec![self.spec.initial()], true)
    }

    /// One read-only admission against the reader's timestamped snapshot.
    /// Never touches `mu` unless the read is historical.
    fn admit_read_only(&self, req: &AdmissionRequest) -> AdmissionOutcome {
        let me = req.txn;
        let operation = &req.operation;
        let Some(ts) = req.start_ts else {
            return AdmissionOutcome::Rejected(TxnError::ProtocolMismatch {
                object: self.id,
                detail: "read-only transactions require a start timestamp".into(),
            });
        };
        if !self.spec.is_read_only(operation) {
            return AdmissionOutcome::Rejected(TxnError::ProtocolMismatch {
                object: self.id,
                detail: format!("operation {operation} may modify state"),
            });
        }
        let invoke_sw = self.metrics.stopwatch();
        let (states, fast) = self.read_snapshot(ts);
        let mut candidates: Vec<Value> = Vec::new();
        for s in &states {
            for (v, _) in self.spec.step(s, operation) {
                if !candidates.contains(&v) {
                    candidates.push(v);
                }
            }
        }
        if candidates.is_empty() {
            return AdmissionOutcome::Rejected(TxnError::InvalidOperation {
                object: self.id,
                operation: operation.to_string(),
            });
        }
        candidates.sort();
        let v = candidates.remove(0);
        let mut events = Vec::with_capacity(3);
        if self.readers.lock().insert(me) {
            events.push(Event::initiate(me, self.id, ts));
        }
        events.push(Event::invoke(me, self.id, operation.clone()));
        events.push(Event::respond(me, self.id, v.clone()));
        self.log.record_all(events);
        if fast {
            self.metrics.record_fast_admission();
        }
        self.metrics.record_admission(me, &invoke_sw);
        AdmissionOutcome::Admitted(v)
    }

    fn invoke_read_only(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        txn.register(self.self_participant());
        self.admit_read_only(&AdmissionRequest::from_txn(txn, operation))
            .into_result(self.id)
    }

    fn invoke_update(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        txn.register(self.self_participant());
        let me = txn.id();
        let invoke_sw = self.metrics.stopwatch();
        let mut block_sw = crate::trace::Stopwatch::disarmed();
        let mut inner = self.mu.lock();
        let mut invoked = false;
        loop {
            match self.try_admit_update(&inner, me, &operation) {
                Admit::Invalid => {
                    return Err(TxnError::InvalidOperation {
                        object: self.id,
                        operation: operation.to_string(),
                    });
                }
                Admit::Granted(v) => {
                    let mut events = Vec::with_capacity(2);
                    if !invoked {
                        events.push(Event::invoke(me, self.id, operation.clone()));
                    }
                    events.push(Event::respond(me, self.id, v.clone()));
                    Self::push_intention(&mut inner, me, operation, v.clone());
                    self.log.record_all(events);
                    if block_sw.is_armed() {
                        self.metrics.record_block_wait(&block_sw);
                    }
                    self.metrics.record_admission(me, &invoke_sw);
                    return Ok(v);
                }
                Admit::Conflict(holders) => {
                    if !invoked {
                        self.log
                            .record(Event::invoke(me, self.id, operation.clone()));
                        invoked = true;
                    }
                    match txn.request_wait(&holders) {
                        crate::deadlock::WaitDecision::Die => {
                            txn.clear_wait();
                            self.metrics.record_deadlock_kill(me);
                            return Err(TxnError::Deadlock {
                                txn: me,
                                object: self.id,
                            });
                        }
                        crate::deadlock::WaitDecision::Wait => {
                            if !block_sw.is_armed() {
                                block_sw = self.metrics.stopwatch();
                            }
                            self.metrics.record_block_round(me);
                            self.cv.wait_for(&mut inner, WAIT_SLICE);
                            txn.clear_wait();
                        }
                    }
                }
            }
        }
    }

    /// Appends `(op, v)` to `me`'s intentions list, drawing the list
    /// allocation from the arena on first use.
    fn push_intention(inner: &mut Inner<S>, me: ActivityId, op: Operation, v: Value) {
        if !inner.intentions.contains_key(&me) {
            let fresh = inner.arena.acquire();
            inner.intentions.insert(me, fresh);
        }
        inner
            .intentions
            .get_mut(&me)
            .expect("intentions list just ensured")
            .push((op, v));
    }

    /// One update-admission attempt with the object lock already held:
    /// the shared core of [`Admission::admit_one`],
    /// [`Admission::admit_batch`] and the non-blocking `try_invoke`.
    fn admit_locked(&self, inner: &mut Inner<S>, req: &AdmissionRequest) -> AdmissionOutcome {
        let me = req.txn;
        let invoke_sw = self.metrics.stopwatch();
        match self.try_admit_update(inner, me, &req.operation) {
            Admit::Invalid => AdmissionOutcome::Rejected(TxnError::InvalidOperation {
                object: self.id,
                operation: req.operation.to_string(),
            }),
            Admit::Granted(v) => {
                self.log.record_all([
                    Event::invoke(me, self.id, req.operation.clone()),
                    Event::respond(me, self.id, v.clone()),
                ]);
                Self::push_intention(inner, me, req.operation.clone(), v.clone());
                self.metrics.record_admission(me, &invoke_sw);
                AdmissionOutcome::Admitted(v)
            }
            Admit::Conflict(holders) => AdmissionOutcome::Blocked { holders },
        }
    }
}

impl<S: SequentialSpec> Admission for HybridObject<S> {
    fn register_txn(&self, txn: &Txn) {
        txn.register(self.self_participant());
    }

    fn admit_one(&self, request: &AdmissionRequest) -> AdmissionOutcome {
        match request.kind {
            TxnKind::ReadOnly => self.admit_read_only(request),
            TxnKind::Update => {
                let mut inner = self.mu.lock();
                self.admit_locked(&mut inner, request)
            }
        }
    }

    fn admit_batch(&self, requests: &[AdmissionRequest]) -> Vec<AdmissionOutcome> {
        // Two passes: read-only requests go through the mutex-free read
        // path first (they are timestamp-serialized, so their outcome is
        // independent of the updates in the batch), then every update is
        // admitted under a single acquisition of `mu`.
        let mut outcomes: Vec<Option<AdmissionOutcome>> = requests
            .iter()
            .map(|r| match r.kind {
                TxnKind::ReadOnly => Some(self.admit_read_only(r)),
                TxnKind::Update => None,
            })
            .collect();
        if outcomes.iter().any(Option::is_none) {
            let mut inner = self.mu.lock();
            for (slot, r) in outcomes.iter_mut().zip(requests) {
                if slot.is_none() {
                    *slot = Some(self.admit_locked(&mut inner, r));
                }
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every request answered"))
            .collect()
    }

    fn read_at(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        match txn.kind() {
            TxnKind::ReadOnly => self.invoke_read_only(txn, operation),
            TxnKind::Update => self.invoke(txn, operation),
        }
    }
}

impl<S: SequentialSpec> AtomicObject for HybridObject<S> {
    fn metrics(&self) -> ObjectMetrics {
        self.metrics.clone()
    }

    fn invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        match txn.kind() {
            TxnKind::ReadOnly => self.invoke_read_only(txn, operation),
            TxnKind::Update => self.invoke_update(txn, operation),
        }
    }

    fn try_invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        match txn.kind() {
            // Read-only invocations never block.
            TxnKind::ReadOnly => self.invoke_read_only(txn, operation),
            TxnKind::Update => {
                txn.register(self.self_participant());
                let mut inner = self.mu.lock();
                self.admit_locked(&mut inner, &AdmissionRequest::from_txn(txn, operation))
                    .into_result(self.id)
            }
        }
    }
}

impl<S: SequentialSpec> Participant for HybridObject<S> {
    fn object_id(&self) -> ObjectId {
        self.id
    }

    fn commit(&self, txn: ActivityId, ts: Option<Timestamp>) {
        // A transaction is either a reader or an updater here, never
        // both, so the two sets can be checked sequentially.
        if self.readers.lock().remove(&txn) {
            self.log.record(Event::commit(txn, self.id));
            self.metrics.record_commit(txn);
            self.cv.notify_all();
            return;
        }
        let mut inner = self.mu.lock();
        if let Some(list) = inner.intentions.remove(&txn) {
            let next = replay_frontier(&self.spec, &inner.current, &list);
            debug_assert!(
                !next.is_empty(),
                "admitted intentions must replay at commit"
            );
            if !next.is_empty() {
                inner.current = next;
            }
            inner.arena.release(list);
        }
        match ts {
            Some(t) => {
                let snapshot = inner.current.clone();
                inner.versions.push((t, snapshot.clone()));
                // Publish under `mu` so published versions stay monotone
                // in timestamp; the manager's commit gate orders this
                // before any reader with a larger timestamp begins.
                self.latest.publish(Arc::new((t, snapshot)));
                self.log.record(Event::commit_ts(txn, self.id, t));
            }
            None => {
                // Degenerate use without commit timestamps (not hybrid
                // well-formed, but keeps the object usable under other
                // protocols in tests).
                self.log.record(Event::commit(txn, self.id));
            }
        }
        self.metrics.record_commit(txn);
        self.cv.notify_all();
    }

    fn abort(&self, txn: ActivityId) {
        if self.readers.lock().remove(&txn) {
            self.log.record(Event::abort(txn, self.id));
            self.metrics.record_abort(txn);
            return;
        }
        let mut inner = self.mu.lock();
        if let Some(list) = inner.intentions.remove(&txn) {
            inner.arena.release(list);
        }
        self.log.record(Event::abort(txn, self.id));
        self.metrics.record_abort(txn);
        self.cv.notify_all();
    }
}

impl<S: SequentialSpec> std::fmt::Debug for HybridObject<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridObject")
            .field("id", &self.id)
            .field("versions", &self.version_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Protocol;
    use atomicity_spec::atomicity::is_hybrid_atomic;
    use atomicity_spec::specs::{BankAccountSpec, IntSetSpec};
    use atomicity_spec::well_formed::WellFormedness;
    use atomicity_spec::{op, SystemSpec};

    fn x() -> ObjectId {
        ObjectId::new(1)
    }

    fn bal() -> Operation {
        op("balance", [] as [i64; 0])
    }

    #[test]
    fn updates_and_reader_produce_hybrid_atomic_history() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let acct = HybridObject::new(x(), BankAccountSpec::new(), &mgr);
        let t1 = mgr.begin();
        acct.invoke(&t1, op("deposit", [10])).unwrap();
        mgr.commit(t1).unwrap();
        let audit = mgr.begin_read_only();
        let t2 = mgr.begin();
        acct.invoke(&t2, op("deposit", [5])).unwrap();
        mgr.commit(t2).unwrap();
        // The audit began before t2 committed: it must see 10, not 15.
        assert_eq!(acct.invoke(&audit, bal()).unwrap(), Value::from(10));
        mgr.commit(audit).unwrap();

        let h = mgr.history();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(WellFormedness::Hybrid.is_well_formed(&h));
        assert!(is_hybrid_atomic(&h, &spec));
    }

    #[test]
    fn readers_never_block_on_active_updates() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let acct = HybridObject::new(x(), BankAccountSpec::new(), &mgr);
        let w = mgr.begin();
        acct.invoke(&w, op("deposit", [100])).unwrap(); // uncommitted
        let audit = mgr.begin_read_only();
        // Non-blocking even though w holds intentions.
        assert_eq!(acct.invoke(&audit, bal()).unwrap(), Value::from(0));
        mgr.commit(audit).unwrap();
        mgr.commit(w).unwrap();
        let h = mgr.history();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_hybrid_atomic(&h, &spec));
    }

    #[test]
    fn readers_do_not_block_updates() {
        // Under dynamic atomicity a balance observation blocks deposits;
        // under hybrid the audit reads a version and the deposit proceeds.
        let mgr = TxnManager::new(Protocol::Hybrid);
        let acct = HybridObject::new(x(), BankAccountSpec::new(), &mgr);
        let audit = mgr.begin_read_only();
        assert_eq!(acct.invoke(&audit, bal()).unwrap(), Value::from(0));
        let w = mgr.begin();
        // Admitted immediately — the audit holds no intentions.
        acct.invoke(&w, op("deposit", [5])).unwrap();
        mgr.commit(w).unwrap();
        // The audit keeps seeing its snapshot.
        assert_eq!(acct.invoke(&audit, bal()).unwrap(), Value::from(0));
        mgr.commit(audit).unwrap();
        let h = mgr.history();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(WellFormedness::Hybrid.is_well_formed(&h));
        assert!(is_hybrid_atomic(&h, &spec));
    }

    #[test]
    fn reader_rejects_mutating_operations() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let acct = HybridObject::new(x(), BankAccountSpec::new(), &mgr);
        let audit = mgr.begin_read_only();
        let err = acct.invoke(&audit, op("deposit", [1])).unwrap_err();
        assert!(matches!(err, TxnError::ProtocolMismatch { .. }));
        mgr.abort(audit);
    }

    #[test]
    fn concurrent_updates_use_dynamic_admission() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let acct = HybridObject::new(x(), BankAccountSpec::new(), &mgr);
        let setup = mgr.begin();
        acct.invoke(&setup, op("deposit", [10])).unwrap();
        mgr.commit(setup).unwrap();
        let b = mgr.begin();
        let c = mgr.begin();
        assert_eq!(acct.invoke(&b, op("withdraw", [4])).unwrap(), Value::ok());
        assert_eq!(acct.invoke(&c, op("withdraw", [3])).unwrap(), Value::ok());
        mgr.commit(c).unwrap();
        mgr.commit(b).unwrap();
        let h = mgr.history();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(WellFormedness::Hybrid.is_well_formed(&h));
        assert!(is_hybrid_atomic(&h, &spec));
    }

    #[test]
    fn version_chain_serves_historical_reads() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let set = HybridObject::new(x(), IntSetSpec::new(), &mgr);
        let mut commit_timestamps = Vec::new();
        for i in 0..3 {
            let t = mgr.begin();
            set.invoke(&t, op("insert", [i])).unwrap();
            commit_timestamps.push(mgr.commit(t).unwrap().unwrap());
        }
        assert_eq!(set.version_count(), 3);
        // A reader pinned between the first and second commit sees size 1.
        let pinned = mgr.begin_read_only_at(commit_timestamps[0] + 1);
        assert!(commit_timestamps[0] < commit_timestamps[1]);
        assert_eq!(
            set.invoke(&pinned, op("size", [] as [i64; 0])).unwrap(),
            Value::from(1)
        );
        mgr.commit(pinned).unwrap();
    }

    #[test]
    fn truncation_keeps_snapshot_base() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let set = HybridObject::new(x(), IntSetSpec::new(), &mgr);
        let mut ts = Vec::new();
        for i in 0..5 {
            let t = mgr.begin();
            set.invoke(&t, op("insert", [i])).unwrap();
            ts.push(mgr.commit(t).unwrap().unwrap());
        }
        set.truncate_versions_below(ts[3]);
        assert!(set.version_count() >= 2);
        // A reader just above ts[3] still gets the right snapshot.
        let r = mgr.begin_read_only_at(ts[3] + 1);
        assert!(ts[3] < ts[4]);
        assert_eq!(
            set.invoke(&r, op("size", [] as [i64; 0])).unwrap(),
            Value::from(4)
        );
        mgr.commit(r).unwrap();
    }

    #[test]
    fn reader_ignores_prepared_but_uncommitted_updates() {
        // An update holding intentions (not yet committed) is invisible to
        // readers regardless of timing: versions are keyed by commit
        // timestamps only.
        let mgr = TxnManager::new(Protocol::Hybrid);
        let acct = HybridObject::new(x(), BankAccountSpec::new(), &mgr);
        let w = mgr.begin();
        acct.invoke(&w, op("deposit", [100])).unwrap();
        let audit = mgr.begin_read_only();
        assert_eq!(acct.invoke(&audit, bal()).unwrap(), Value::from(0));
        mgr.commit(w).unwrap();
        // The audit's timestamp predates w's commit timestamp: it keeps
        // seeing 0 even after w commits.
        assert_eq!(acct.invoke(&audit, bal()).unwrap(), Value::from(0));
        mgr.commit(audit).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_hybrid_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn repeatable_reads_across_many_commits() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let ctr = HybridObject::new(x(), IntSetSpec::new(), &mgr);
        let audit = mgr.begin_read_only();
        for i in 0..5 {
            let t = mgr.begin();
            ctr.invoke(&t, op("insert", [i])).unwrap();
            mgr.commit(t).unwrap();
            // The audit's view never moves.
            assert_eq!(
                ctr.invoke(&audit, op("size", [] as [i64; 0])).unwrap(),
                Value::from(0)
            );
        }
        mgr.commit(audit).unwrap();
        let spec = SystemSpec::new().with_object(x(), IntSetSpec::new());
        assert!(is_hybrid_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn stats_track_reader_and_update_activity() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let acct = HybridObject::new(x(), BankAccountSpec::new(), &mgr);
        let t = mgr.begin();
        acct.invoke(&t, op("deposit", [5])).unwrap();
        mgr.commit(t).unwrap();
        let audit = mgr.begin_read_only();
        acct.invoke(&audit, bal()).unwrap();
        mgr.commit(audit).unwrap();
        let snap = acct.stats();
        assert_eq!(snap.admissions, 2);
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.blocks, 0, "hybrid audits never block");
    }

    #[test]
    fn aborted_update_leaves_no_version() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let acct = HybridObject::new(x(), BankAccountSpec::new(), &mgr);
        let t = mgr.begin();
        acct.invoke(&t, op("deposit", [9])).unwrap();
        mgr.abort(t);
        assert_eq!(acct.version_count(), 0);
        let audit = mgr.begin_read_only();
        assert_eq!(acct.invoke(&audit, bal()).unwrap(), Value::from(0));
        mgr.commit(audit).unwrap();
        let h = mgr.history();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_hybrid_atomic(&h, &spec));
    }
}
