//! The dynamic-atomicity engine (§4.1).
//!
//! Deferred update with **state-dependent admission**: the object holds the
//! committed abstract state plus, per active transaction, the *intentions
//! list* of (operation, result) pairs it has executed. A new invocation is
//! admitted with result `v` only if every permutation of the active
//! transactions' intention lists (with the caller's extended by the new
//! pair) replays successfully from the committed state — i.e. all
//! serialization orders of the concurrent transactions remain acceptable,
//! which is exactly what dynamic atomicity requires of orders not pinned
//! by `precedes`.
//!
//! This state-dependent test is what separates the engine from
//! commutativity-table locking: two withdrawals are admitted concurrently
//! *when the balance covers both* (the paper's §5.1 example), and
//! interleaved enqueues on a FIFO queue are admitted (the §5.1
//! scheduler-model counterexample), while genuinely order-sensitive
//! interleavings still block.

use crate::admission::{Admission, AdmissionOutcome, AdmissionRequest, IntentionArena};
use crate::conflict::CommutesRel;
use crate::engine::{all_orders_replay, replay_frontier};
use crate::error::TxnError;
use crate::log::HistoryLog;
use crate::manager::TxnManager;
use crate::object::{AtomicObject, Participant};
use crate::stats::StatsSnapshot;
use crate::trace::ObjectMetrics;
use crate::txn::Txn;
use atomicity_spec::{
    ActivityId, Event, ObjectId, OpResult, Operation, SequentialSpec, Timestamp, Value,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Upper bound on concurrently checked intention lists; above it the
/// engine conservatively blocks instead of enumerating permutations.
const DEFAULT_MAX_CHECK: usize = 6;

/// How long a blocked invocation sleeps between admission retries (a
/// safety net on top of commit/abort notifications).
const WAIT_SLICE: Duration = Duration::from_millis(5);

/// An atomic object guaranteeing **dynamic atomicity** for a sequential
/// specification `S`.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol, DynamicObject, AtomicObject};
/// use atomicity_spec::specs::BankAccountSpec;
/// use atomicity_spec::{op, ObjectId, Value};
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let acct = DynamicObject::new(ObjectId::new(1), BankAccountSpec::new(), &mgr);
/// let t = mgr.begin();
/// acct.invoke(&t, op("deposit", [10]))?;
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
pub struct DynamicObject<S: SequentialSpec> {
    id: ObjectId,
    spec: S,
    log: HistoryLog,
    mu: Mutex<Inner<S>>,
    cv: Condvar,
    max_check: usize,
    /// Optional state-independent commutativity relation (a synthesized
    /// conflict table): operations that commute with every pending
    /// operation are admitted without permutation replay.
    fast_rel: Option<Arc<dyn CommutesRel>>,
    metrics: ObjectMetrics,
    self_ref: Weak<DynamicObject<S>>,
}

struct Inner<S: SequentialSpec> {
    /// All abstract states consistent with the committed prefix (a set,
    /// because specifications may be non-deterministic). Invariant:
    /// non-empty.
    committed: Vec<S::State>,
    /// Intentions list per active transaction, in execution order.
    intentions: BTreeMap<ActivityId, Vec<OpResult>>,
    /// Recycles intentions-list allocations across transactions.
    arena: IntentionArena,
}

/// The outcome of one admission attempt.
enum Admit {
    Granted(Value),
    Invalid,
    Conflict(BTreeSet<ActivityId>),
}

impl<S: SequentialSpec> DynamicObject<S> {
    /// Creates the object and wires it to the manager's history log.
    pub fn new(id: ObjectId, spec: S, mgr: &TxnManager) -> Arc<Self> {
        Self::with_max_check(id, spec, mgr, DEFAULT_MAX_CHECK)
    }

    /// Creates the object with a custom bound on the number of concurrent
    /// intention lists checked exhaustively (above it, conflicts are
    /// assumed).
    pub fn with_max_check(id: ObjectId, spec: S, mgr: &TxnManager, max_check: usize) -> Arc<Self> {
        Self::build(id, spec, mgr, max_check, None)
    }

    /// Creates the object with a state-independent commutativity relation
    /// (typically a machine-synthesized
    /// [`ConflictTable`](crate::ConflictTable)): a deterministic operation
    /// commuting with every pending operation of every other active
    /// transaction is admitted directly — no permutation replay, and no
    /// conservative block above the `max_check` bound. Pairs the relation
    /// does not admit fall back to the state-dependent replay check, so
    /// the engine stays strictly more permissive than table locking.
    pub fn with_relation(
        id: ObjectId,
        spec: S,
        mgr: &TxnManager,
        rel: Arc<dyn CommutesRel>,
    ) -> Arc<Self> {
        Self::build(id, spec, mgr, DEFAULT_MAX_CHECK, Some(rel))
    }

    fn build(
        id: ObjectId,
        spec: S,
        mgr: &TxnManager,
        max_check: usize,
        fast_rel: Option<Arc<dyn CommutesRel>>,
    ) -> Arc<Self> {
        let initial = vec![spec.initial()];
        Arc::new_cyclic(|self_ref| DynamicObject {
            id,
            spec,
            log: mgr.log(),
            mu: Mutex::new(Inner {
                committed: initial,
                intentions: BTreeMap::new(),
                arena: IntentionArena::new(),
            }),
            cv: Condvar::new(),
            max_check,
            fast_rel,
            metrics: mgr.metrics().object(id),
            self_ref: self_ref.clone(),
        })
    }

    /// Contention statistics for this object.
    pub fn stats(&self) -> StatsSnapshot {
        self.metrics.stats()
    }

    /// The object's sequential specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// A copy of the committed abstract state set (for inspection/tests).
    pub fn committed_states(&self) -> Vec<S::State> {
        self.mu.lock().committed.clone()
    }

    /// Number of transactions with pending intentions at this object.
    pub fn active_count(&self) -> usize {
        self.mu.lock().intentions.len()
    }

    fn self_participant(&self) -> Arc<dyn Participant> {
        self.self_ref
            .upgrade()
            .expect("DynamicObject used after its Arc was dropped")
    }

    fn decide_admit(&self, inner: &Inner<S>, me: ActivityId, op: &Operation) -> Admit {
        let empty = Vec::new();
        let own = inner.intentions.get(&me).unwrap_or(&empty);
        let own_frontier = replay_frontier(&self.spec, &inner.committed, own);
        debug_assert!(!own_frontier.is_empty(), "own intentions must replay");

        // Candidate results, deterministically ordered.
        let mut candidates: Vec<Value> = Vec::new();
        for s in &own_frontier {
            for (v, _) in self.spec.step(s, op) {
                if !candidates.contains(&v) {
                    candidates.push(v);
                }
            }
        }
        if candidates.is_empty() {
            return Admit::Invalid;
        }
        candidates.sort();

        let others: Vec<(&ActivityId, &Vec<OpResult>)> = inner
            .intentions
            .iter()
            .filter(|(id, list)| **id != me && !list.is_empty())
            .collect();
        if others.is_empty() {
            return Admit::Granted(candidates.remove(0));
        }
        // Table fast path: a deterministic operation that commutes (per the
        // installed state-independent relation) with every pending operation
        // of every other active transaction replays identically in all
        // orders, so it is admissible without permutation enumeration — and
        // without the conservative block above `max_check`. Misses fall
        // through to the state-dependent check, so the engine stays at
        // least as permissive as with no relation installed.
        if candidates.len() == 1 {
            if let Some(rel) = &self.fast_rel {
                if others
                    .iter()
                    .all(|(_, list)| list.iter().all(|(q, _)| rel.commutes(op, q)))
                {
                    self.metrics.record_fast_admission();
                    return Admit::Granted(candidates.remove(0));
                }
            }
        }
        if others.len() + 1 > self.max_check {
            return Admit::Conflict(others.iter().map(|(id, _)| **id).collect());
        }

        for v in candidates {
            let mut mine = own.clone();
            mine.push((op.clone(), v.clone()));
            let mut lists: Vec<&[OpResult]> = others.iter().map(|(_, l)| l.as_slice()).collect();
            lists.push(&mine);
            if all_orders_replay(&self.spec, &inner.committed, &lists) {
                return Admit::Granted(v);
            }
        }
        Admit::Conflict(others.iter().map(|(id, _)| **id).collect())
    }

    /// Appends `(op, v)` to `me`'s intentions list, drawing the list
    /// allocation from the arena on first use.
    fn push_intention(inner: &mut Inner<S>, me: ActivityId, op: Operation, v: Value) {
        if !inner.intentions.contains_key(&me) {
            let fresh = inner.arena.acquire();
            inner.intentions.insert(me, fresh);
        }
        inner
            .intentions
            .get_mut(&me)
            .expect("intentions list just ensured")
            .push((op, v));
    }

    /// One admission attempt with the object lock already held: the shared
    /// core of [`Admission::admit_one`], [`Admission::admit_batch`] and the
    /// non-blocking `try_invoke`. Events are recorded only on a grant, so a
    /// blocked attempt is as if the invocation never happened.
    fn admit_locked(&self, inner: &mut Inner<S>, req: &AdmissionRequest) -> AdmissionOutcome {
        let me = req.txn;
        let invoke_sw = self.metrics.stopwatch();
        match self.decide_admit(inner, me, &req.operation) {
            Admit::Invalid => AdmissionOutcome::Rejected(TxnError::InvalidOperation {
                object: self.id,
                operation: req.operation.to_string(),
            }),
            Admit::Granted(v) => {
                self.log.record_all([
                    Event::invoke(me, self.id, req.operation.clone()),
                    Event::respond(me, self.id, v.clone()),
                ]);
                Self::push_intention(inner, me, req.operation.clone(), v.clone());
                self.metrics.record_admission(me, &invoke_sw);
                AdmissionOutcome::Admitted(v)
            }
            Admit::Conflict(holders) => AdmissionOutcome::Blocked { holders },
        }
    }
}

impl<S: SequentialSpec> Admission for DynamicObject<S> {
    fn register_txn(&self, txn: &Txn) {
        txn.register(self.self_participant());
    }

    fn admit_one(&self, request: &AdmissionRequest) -> AdmissionOutcome {
        let mut inner = self.mu.lock();
        self.admit_locked(&mut inner, request)
    }

    fn admit_batch(&self, requests: &[AdmissionRequest]) -> Vec<AdmissionOutcome> {
        let mut inner = self.mu.lock();
        requests
            .iter()
            .map(|r| self.admit_locked(&mut inner, r))
            .collect()
    }
}

impl<S: SequentialSpec> AtomicObject for DynamicObject<S> {
    fn try_invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        self.try_invoke_once(txn, operation)
    }

    fn metrics(&self) -> ObjectMetrics {
        self.metrics.clone()
    }

    fn invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        txn.register(self.self_participant());
        let me = txn.id();
        let invoke_sw = self.metrics.stopwatch();
        let mut block_sw = crate::trace::Stopwatch::disarmed();
        let mut inner = self.mu.lock();
        let mut invoked = false;
        loop {
            match self.decide_admit(&inner, me, &operation) {
                Admit::Invalid => {
                    // Nothing was recorded: the operation never happened.
                    return Err(TxnError::InvalidOperation {
                        object: self.id,
                        operation: operation.to_string(),
                    });
                }
                Admit::Granted(v) => {
                    let mut events = Vec::with_capacity(2);
                    if !invoked {
                        events.push(Event::invoke(me, self.id, operation.clone()));
                    }
                    events.push(Event::respond(me, self.id, v.clone()));
                    Self::push_intention(&mut inner, me, operation, v.clone());
                    self.log.record_all(events);
                    if block_sw.is_armed() {
                        self.metrics.record_block_wait(&block_sw);
                    }
                    self.metrics.record_admission(me, &invoke_sw);
                    return Ok(v);
                }
                Admit::Conflict(holders) => {
                    if !invoked {
                        self.log
                            .record(Event::invoke(me, self.id, operation.clone()));
                        invoked = true;
                    }
                    match txn.request_wait(&holders) {
                        crate::deadlock::WaitDecision::Die => {
                            txn.clear_wait();
                            self.metrics.record_deadlock_kill(me);
                            return Err(TxnError::Deadlock {
                                txn: me,
                                object: self.id,
                            });
                        }
                        crate::deadlock::WaitDecision::Wait => {
                            if !block_sw.is_armed() {
                                block_sw = self.metrics.stopwatch();
                            }
                            self.metrics.record_block_round(me);
                            self.cv.wait_for(&mut inner, WAIT_SLICE);
                            txn.clear_wait();
                        }
                    }
                }
            }
        }
    }
}

impl<S: SequentialSpec> DynamicObject<S> {
    /// One non-blocking admission attempt (see
    /// [`AtomicObject::try_invoke`]).
    fn try_invoke_once(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        txn.register(self.self_participant());
        let mut inner = self.mu.lock();
        self.admit_locked(&mut inner, &AdmissionRequest::from_txn(txn, operation))
            .into_result(self.id)
    }
}

impl<S: SequentialSpec> Participant for DynamicObject<S> {
    fn object_id(&self) -> ObjectId {
        self.id
    }

    fn commit(&self, txn: ActivityId, ts: Option<Timestamp>) {
        let mut inner = self.mu.lock();
        if let Some(list) = inner.intentions.remove(&txn) {
            let next = replay_frontier(&self.spec, &inner.committed, &list);
            debug_assert!(
                !next.is_empty(),
                "admitted intentions must replay at commit"
            );
            if !next.is_empty() {
                inner.committed = next;
            }
            inner.arena.release(list);
        }
        let event = match ts {
            Some(t) => Event::commit_ts(txn, self.id, t),
            None => Event::commit(txn, self.id),
        };
        self.log.record(event);
        self.metrics.record_commit(txn);
        self.cv.notify_all();
    }

    fn abort(&self, txn: ActivityId) {
        let mut inner = self.mu.lock();
        if let Some(list) = inner.intentions.remove(&txn) {
            inner.arena.release(list);
        }
        self.log.record(Event::abort(txn, self.id));
        self.metrics.record_abort(txn);
        self.cv.notify_all();
        drop(inner);
    }
}

impl<S: SequentialSpec> std::fmt::Debug for DynamicObject<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicObject")
            .field("id", &self.id)
            .field("active", &self.active_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Protocol;
    use atomicity_spec::atomicity::{is_atomic, is_dynamic_atomic};
    use atomicity_spec::specs::{BankAccountSpec, FifoQueueSpec, SemiqueueSpec};
    use atomicity_spec::{op, SystemSpec};

    fn x() -> ObjectId {
        ObjectId::new(1)
    }

    #[test]
    fn serial_transactions_round_trip() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let t = mgr.begin();
        assert_eq!(acct.invoke(&t, op("deposit", [10])).unwrap(), Value::ok());
        assert_eq!(
            acct.invoke(&t, op("balance", [] as [i64; 0])).unwrap(),
            Value::from(10)
        );
        mgr.commit(t).unwrap();
        let t2 = mgr.begin();
        assert_eq!(
            acct.invoke(&t2, op("balance", [] as [i64; 0])).unwrap(),
            Value::from(10)
        );
        mgr.commit(t2).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        let h = mgr.history();
        assert!(is_dynamic_atomic(&h, &spec));
    }

    #[test]
    fn concurrent_withdrawals_with_headroom_are_admitted() {
        // Paper §5.1: balance 10 covers withdraw(4) and withdraw(3) in
        // either order, so both run concurrently without blocking.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let setup = mgr.begin();
        acct.invoke(&setup, op("deposit", [10])).unwrap();
        mgr.commit(setup).unwrap();

        let b = mgr.begin();
        let c = mgr.begin();
        assert_eq!(acct.invoke(&b, op("withdraw", [4])).unwrap(), Value::ok());
        // c is admitted while b is still uncommitted.
        assert_eq!(acct.invoke(&c, op("withdraw", [3])).unwrap(), Value::ok());
        mgr.commit(c).unwrap();
        mgr.commit(b).unwrap();

        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn insufficient_headroom_blocks_until_commit() {
        // Balance 5: withdraw(4) and withdraw(3) cannot both succeed; the
        // second blocks until the first commits, then gets
        // insufficient_funds.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let setup = mgr.begin();
        acct.invoke(&setup, op("deposit", [5])).unwrap();
        mgr.commit(setup).unwrap();

        let b = mgr.begin();
        assert_eq!(acct.invoke(&b, op("withdraw", [4])).unwrap(), Value::ok());

        let acct2 = Arc::clone(&acct);
        let mgr2_handle = std::thread::spawn({
            let c = mgr.begin();
            let mgr_log = mgr.log();
            move || {
                let v = acct2.invoke(&c, op("withdraw", [3])).unwrap();
                let _ = mgr_log; // silence unused in this closure shape
                (c, v)
            }
        });
        // Give the second withdrawal a moment to block, then commit b.
        std::thread::sleep(Duration::from_millis(30));
        mgr.commit(b).unwrap();
        let (c, v) = mgr2_handle.join().unwrap();
        assert_eq!(v, BankAccountSpec::insufficient_funds());
        mgr.commit(c).unwrap();

        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn interleaved_enqueues_are_admitted() {
        // Paper §5.1 scheduler-model counterexample: a and b interleave
        // enqueues; the engine admits all four without blocking.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let q = DynamicObject::new(x(), FifoQueueSpec::new(), &mgr);
        let a = mgr.begin();
        let b = mgr.begin();
        q.invoke(&a, op("enqueue", [1])).unwrap();
        q.invoke(&b, op("enqueue", [1])).unwrap();
        q.invoke(&a, op("enqueue", [2])).unwrap();
        q.invoke(&b, op("enqueue", [2])).unwrap();
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        let c = mgr.begin();
        let deq = || op("dequeue", [] as [i64; 0]);
        // Commit order a-b: the committed queue is a's elements then b's.
        assert_eq!(q.invoke(&c, deq()).unwrap(), Value::from(1));
        assert_eq!(q.invoke(&c, deq()).unwrap(), Value::from(2));
        assert_eq!(q.invoke(&c, deq()).unwrap(), Value::from(1));
        assert_eq!(q.invoke(&c, deq()).unwrap(), Value::from(2));
        mgr.commit(c).unwrap();

        let spec = SystemSpec::new().with_object(x(), FifoQueueSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn order_sensitive_reads_block_writers() {
        // A balance observation pins the state: a concurrent deposit would
        // invalidate it in one order, so the deposit blocks until the
        // reader commits.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let r = mgr.begin();
        assert_eq!(
            acct.invoke(&r, op("balance", [] as [i64; 0])).unwrap(),
            Value::from(0)
        );
        let acct2 = Arc::clone(&acct);
        let writer = std::thread::spawn({
            let w = mgr.begin();
            move || {
                let v = acct2.invoke(&w, op("deposit", [5])).unwrap();
                (w, v)
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        // Writer must still be blocked.
        assert_eq!(acct.active_count(), 1);
        mgr.commit(r).unwrap();
        let (w, v) = writer.join().unwrap();
        assert_eq!(v, Value::ok());
        mgr.commit(w).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let x1 = DynamicObject::new(ObjectId::new(1), BankAccountSpec::new(), &mgr);
        let x2 = DynamicObject::new(ObjectId::new(2), BankAccountSpec::new(), &mgr);
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        // t1 reads x1, t2 reads x2; then each deposits at the other's
        // object: classic cross deadlock.
        x1.invoke(&t1, op("balance", [] as [i64; 0])).unwrap();
        x2.invoke(&t2, op("balance", [] as [i64; 0])).unwrap();
        let x1b = Arc::clone(&x1);
        let mgr2 = mgr.clone();
        // Each side resolves its own transaction immediately, so whichever
        // one the deadlock policy kills unblocks the other.
        let h = std::thread::spawn(move || {
            let r = x1b.invoke(&t2, op("deposit", [1]));
            let died = r.is_err();
            if died {
                mgr2.abort(t2);
            } else {
                mgr2.commit(t2).unwrap();
            }
            died
        });
        std::thread::sleep(Duration::from_millis(20));
        let r1 = x2.invoke(&t1, op("deposit", [1]));
        let t1_died = r1.is_err();
        if t1_died {
            mgr.abort(t1);
        } else {
            mgr.commit(t1).unwrap();
        }
        let t2_died = h.join().unwrap();
        assert!(
            t1_died || t2_died,
            "at least one side must die to break the cycle"
        );
        let spec = SystemSpec::new()
            .with_object(ObjectId::new(1), BankAccountSpec::new())
            .with_object(ObjectId::new(2), BankAccountSpec::new());
        assert!(is_atomic(&mgr.history(), &spec));
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let t = mgr.begin();
        acct.invoke(&t, op("deposit", [100])).unwrap();
        mgr.abort(t);
        let t2 = mgr.begin();
        assert_eq!(
            acct.invoke(&t2, op("balance", [] as [i64; 0])).unwrap(),
            Value::from(0)
        );
        mgr.commit(t2).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn invalid_operation_records_nothing() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let t = mgr.begin();
        let err = acct.invoke(&t, op("frob", [1])).unwrap_err();
        assert!(matches!(err, TxnError::InvalidOperation { .. }));
        assert!(mgr.history().is_empty());
        mgr.commit(t).unwrap();
    }

    #[test]
    fn stats_count_blocks_and_admissions() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let r = mgr.begin();
        acct.invoke(&r, op("balance", [] as [i64; 0])).unwrap();
        let acct2 = Arc::clone(&acct);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let w = mgr2.begin();
            acct2.invoke(&w, op("deposit", [5])).unwrap();
            mgr2.commit(w).unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        mgr.commit(r).unwrap();
        h.join().unwrap();
        let snap = acct.stats();
        assert_eq!(snap.admissions, 2);
        assert!(snap.blocks >= 1, "the deposit must have blocked");
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.deadlock_kills, 0);
    }

    #[test]
    fn nondeterministic_semiqueue_preserves_branches() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let q = DynamicObject::new(x(), SemiqueueSpec::new(), &mgr);
        let t = mgr.begin();
        q.invoke(&t, op("enq", [1])).unwrap();
        q.invoke(&t, op("enq", [2])).unwrap();
        mgr.commit(t).unwrap();
        let t2 = mgr.begin();
        let v = q.invoke(&t2, op("deq", [] as [i64; 0])).unwrap();
        assert!(v == Value::from(1) || v == Value::from(2));
        mgr.commit(t2).unwrap();
        let spec = SystemSpec::new().with_object(x(), SemiqueueSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn pairwise_fine_but_triple_conflicts() {
        // Balance 10: any two withdraw(4)s fit, three do not — the third
        // must block until one of the first two resolves, then observe
        // insufficient funds (if both commit).
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let setup = mgr.begin();
        acct.invoke(&setup, op("deposit", [10])).unwrap();
        mgr.commit(setup).unwrap();

        let a = mgr.begin();
        let b = mgr.begin();
        assert_eq!(acct.invoke(&a, op("withdraw", [4])).unwrap(), Value::ok());
        assert_eq!(acct.invoke(&b, op("withdraw", [4])).unwrap(), Value::ok());

        let acct2 = Arc::clone(&acct);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let c = mgr2.begin();
            let v = acct2.invoke(&c, op("withdraw", [4])).unwrap();
            mgr2.commit(c).unwrap();
            v
        });
        std::thread::sleep(Duration::from_millis(30));
        // c must be blocked: only a and b hold intentions.
        assert_eq!(acct.active_count(), 2);
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        assert_eq!(h.join().unwrap(), BankAccountSpec::insufficient_funds());
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn blocked_txn_proceeds_after_conflicting_abort() {
        // The conflicting transaction aborts instead of committing: the
        // blocked withdrawal then succeeds against the unchanged balance.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::new(x(), BankAccountSpec::new(), &mgr);
        let setup = mgr.begin();
        acct.invoke(&setup, op("deposit", [5])).unwrap();
        mgr.commit(setup).unwrap();

        let b = mgr.begin();
        assert_eq!(acct.invoke(&b, op("withdraw", [4])).unwrap(), Value::ok());
        let acct2 = Arc::clone(&acct);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let c = mgr2.begin();
            let v = acct2.invoke(&c, op("withdraw", [3])).unwrap();
            mgr2.commit(c).unwrap();
            v
        });
        std::thread::sleep(Duration::from_millis(30));
        mgr.abort(b);
        assert_eq!(h.join().unwrap(), Value::ok(), "abort frees the funds");
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn many_commutative_writers_scale_past_check_bound() {
        // More concurrent writers than max_check: the engine conservatively
        // serializes the excess, but everything still completes and the
        // history stays dynamic atomic.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = DynamicObject::with_max_check(x(), BankAccountSpec::new(), &mgr, 3);
        let mut handles = Vec::new();
        for _ in 0..6 {
            let acct = Arc::clone(&acct);
            let mgr = mgr.clone();
            handles.push(std::thread::spawn(move || {
                let t = mgr.begin();
                match acct.invoke(&t, op("deposit", [1])) {
                    Ok(_) => {
                        mgr.commit(t).unwrap();
                        true
                    }
                    Err(_) => {
                        mgr.abort(t);
                        false
                    }
                }
            }));
        }
        let committed = handles
            .into_iter()
            .filter(|_| true)
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count();
        assert!(committed >= 1);
        let t = mgr.begin();
        let v = acct.invoke(&t, op("balance", [] as [i64; 0])).unwrap();
        assert_eq!(v, Value::from(committed as i64));
        mgr.commit(t).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }
}
