//! The static-atomicity engine (§4.2), generalizing Reed's multi-version
//! timestamp scheme to user-specified operations.
//!
//! The object keeps a **timestamp-ordered log** of executed
//! (operation, result) entries — the generalization of Reed's version
//! chain. An invocation by a transaction with start timestamp `t`:
//!
//! 1. computes its result by replaying the entries ordered before `t`;
//! 2. must be **insertable** at position `t`: replaying the whole log with
//!    the new entry in place must keep every later entry's recorded result
//!    valid — otherwise results already returned to other activities would
//!    be invalidated, and the invoker must abort (Reed's
//!    write-after-later-read abort, generalized);
//! 3. must be valid in **every commit/abort future** of the other active
//!    transactions with entries in the log — when no single result is,
//!    the invocation *waits* for the uncommitted entries ordered before
//!    `t` (Reed's wait-on-uncommitted-version), and aborts if the
//!    ambiguity comes only from later entries.
//!
//! Because waiting is only ever on *smaller* timestamps, the engine cannot
//! deadlock.

use crate::admission::{Admission, AdmissionOutcome, AdmissionRequest};
use crate::engine::replay_frontier;
use crate::error::TxnError;
use crate::log::HistoryLog;
use crate::manager::TxnManager;
use crate::object::{AtomicObject, Participant};
use crate::stats::StatsSnapshot;
use crate::trace::ObjectMetrics;
use crate::txn::Txn;
use atomicity_spec::{
    ActivityId, Event, ObjectId, OpResult, Operation, SequentialSpec, Timestamp, Value,
};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Upper bound on the number of active transactions whose commit/abort
/// futures are enumerated; above it the engine waits or aborts
/// conservatively.
const DEFAULT_MAX_FUTURES: usize = 4;

/// Log length beyond which fully-committed prefixes are folded into the
/// base state (discarding old versions, as Reed's scheme eventually must).
const DEFAULT_COMPACTION: usize = 64;

const WAIT_SLICE: Duration = Duration::from_millis(5);

/// An atomic object guaranteeing **static atomicity** for a sequential
/// specification `S`.
///
/// Transactions must carry start timestamps
/// ([`crate::TxnManager::begin`] under [`crate::Protocol::Static`]).
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol, StaticObject, AtomicObject};
/// use atomicity_spec::specs::IntSetSpec;
/// use atomicity_spec::{op, ObjectId, Value};
///
/// let mgr = TxnManager::new(Protocol::Static);
/// let set = StaticObject::new(ObjectId::new(1), IntSetSpec::new(), &mgr);
/// let t = mgr.begin();
/// set.invoke(&t, op("insert", [3]))?;
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
pub struct StaticObject<S: SequentialSpec> {
    id: ObjectId,
    spec: S,
    log: HistoryLog,
    mu: Mutex<Inner<S>>,
    cv: Condvar,
    max_futures: usize,
    compaction_threshold: usize,
    metrics: ObjectMetrics,
    self_ref: Weak<StaticObject<S>>,
}

struct Inner<S: SequentialSpec> {
    /// State frontier summarizing all folded (compacted) entries.
    base: Vec<S::State>,
    /// Largest folded timestamp; new invocations must arrive strictly
    /// after it. 0 = nothing folded.
    watermark: Timestamp,
    /// The operation log, sorted by (timestamp, sequence).
    entries: Vec<Entry>,
    next_seq: u64,
    /// Transactions whose initiation event has been recorded here.
    initiated: BTreeSet<ActivityId>,
}

#[derive(Debug, Clone)]
struct Entry {
    ts: Timestamp,
    seq: u64,
    owner: ActivityId,
    op: Operation,
    value: Value,
    committed: bool,
}

enum Admit {
    Granted(Value),
    Invalid,
    WaitOn(BTreeSet<ActivityId>),
    MustAbort,
}

impl<S: SequentialSpec> StaticObject<S> {
    /// Creates the object with default bounds.
    pub fn new(id: ObjectId, spec: S, mgr: &TxnManager) -> Arc<Self> {
        Self::with_bounds(id, spec, mgr, DEFAULT_MAX_FUTURES, DEFAULT_COMPACTION)
    }

    /// Creates the object with explicit future-enumeration and compaction
    /// bounds.
    pub fn with_bounds(
        id: ObjectId,
        spec: S,
        mgr: &TxnManager,
        max_futures: usize,
        compaction_threshold: usize,
    ) -> Arc<Self> {
        let initial = vec![spec.initial()];
        Arc::new_cyclic(|self_ref| StaticObject {
            id,
            spec,
            log: mgr.log(),
            mu: Mutex::new(Inner {
                base: initial,
                watermark: 0,
                entries: Vec::new(),
                next_seq: 0,
                initiated: BTreeSet::new(),
            }),
            cv: Condvar::new(),
            max_futures,
            compaction_threshold,
            metrics: mgr.metrics().object(id),
            self_ref: self_ref.clone(),
        })
    }

    /// Contention statistics for this object.
    pub fn stats(&self) -> StatsSnapshot {
        self.metrics.stats()
    }

    /// Number of entries currently retained in the timestamp log.
    pub fn log_len(&self) -> usize {
        self.mu.lock().entries.len()
    }

    /// The compaction watermark (largest discarded timestamp).
    pub fn watermark(&self) -> Timestamp {
        self.mu.lock().watermark
    }

    fn self_participant(&self) -> Arc<dyn Participant> {
        self.self_ref
            .upgrade()
            .expect("StaticObject used after its Arc was dropped")
    }

    /// Replays the entries selected by `future` (committed entries, the
    /// caller's own, and entries of transactions assumed to commit),
    /// up to but excluding position (`t`,`seq`), returning the reachable
    /// frontier.
    fn prefix_frontier(
        &self,
        inner: &Inner<S>,
        me: ActivityId,
        t: Timestamp,
        future: &BTreeSet<ActivityId>,
    ) -> Vec<S::State> {
        let ops: Vec<OpResult> = inner
            .entries
            .iter()
            .filter(|e| e.ts < t || (e.ts == t && e.owner == me))
            .filter(|e| e.committed || e.owner == me || future.contains(&e.owner))
            .map(|e| (e.op.clone(), e.value.clone()))
            .collect();
        replay_frontier(&self.spec, &inner.base, &ops)
    }

    /// Whether the full log, with `(op,value)` inserted at (`t`,`seq`),
    /// replays under the given future.
    #[allow(clippy::too_many_arguments)]
    fn insertion_valid(
        &self,
        inner: &Inner<S>,
        me: ActivityId,
        t: Timestamp,
        seq: u64,
        op: &Operation,
        value: &Value,
        future: &BTreeSet<ActivityId>,
    ) -> bool {
        let mut ops: Vec<OpResult> = Vec::with_capacity(inner.entries.len() + 1);
        let mut inserted = false;
        for e in &inner.entries {
            if !inserted && (e.ts, e.seq) > (t, seq) {
                ops.push((op.clone(), value.clone()));
                inserted = true;
            }
            if e.committed || e.owner == me || future.contains(&e.owner) {
                ops.push((e.op.clone(), e.value.clone()));
            }
        }
        if !inserted {
            ops.push((op.clone(), value.clone()));
        }
        !replay_frontier(&self.spec, &inner.base, &ops).is_empty()
    }

    fn decide_admit(
        &self,
        inner: &Inner<S>,
        me: ActivityId,
        t: Timestamp,
        op: &Operation,
    ) -> Admit {
        // Other active transactions with entries anywhere in the log.
        let actives: Vec<ActivityId> = {
            let mut s = BTreeSet::new();
            for e in &inner.entries {
                if !e.committed && e.owner != me {
                    s.insert(e.owner);
                }
            }
            s.into_iter().collect()
        };
        // Those ordered before t — the ones waiting can resolve.
        let earlier: BTreeSet<ActivityId> = inner
            .entries
            .iter()
            .filter(|e| !e.committed && e.owner != me && e.ts < t)
            .map(|e| e.owner)
            .collect();

        if actives.len() > self.max_futures {
            return if earlier.is_empty() {
                Admit::MustAbort
            } else {
                Admit::WaitOn(earlier)
            };
        }

        // Candidate results must agree across every commit/abort future.
        let all: BTreeSet<ActivityId> = actives.iter().copied().collect();
        let full_frontier = self.prefix_frontier(inner, me, t, &all);
        let mut full_candidates: Vec<Value> = Vec::new();
        for s in &full_frontier {
            for (v, _) in self.spec.step(s, op) {
                if !full_candidates.contains(&v) {
                    full_candidates.push(v);
                }
            }
        }
        if full_frontier.is_empty() {
            // The log itself is momentarily unexplainable under this
            // future; wait for resolution if possible.
            return if earlier.is_empty() {
                Admit::MustAbort
            } else {
                Admit::WaitOn(earlier)
            };
        }
        if full_candidates.is_empty() {
            return Admit::Invalid;
        }

        let futures = enumerate_futures(&actives);
        let mut common = full_candidates;
        for future in &futures {
            let frontier = self.prefix_frontier(inner, me, t, future);
            common.retain(|v| {
                frontier
                    .iter()
                    .any(|s| self.spec.step(s, op).iter().any(|(cv, _)| cv == v))
            });
            if common.is_empty() {
                break;
            }
        }
        common.sort();

        let seq = inner.next_seq;
        for v in &common {
            if futures
                .iter()
                .all(|f| self.insertion_valid(inner, me, t, seq, op, v, f))
            {
                return Admit::Granted(v.clone());
            }
        }
        if earlier.is_empty() {
            Admit::MustAbort
        } else {
            Admit::WaitOn(earlier)
        }
    }

    fn record_first_events(
        &self,
        inner: &mut Inner<S>,
        me: ActivityId,
        t: Timestamp,
        op: &Operation,
        invoked: &mut bool,
    ) {
        let mut events = Vec::with_capacity(2);
        if inner.initiated.insert(me) {
            events.push(Event::initiate(me, self.id, t));
        }
        if !*invoked {
            events.push(Event::invoke(me, self.id, op.clone()));
            *invoked = true;
        }
        self.log.record_all(events);
    }

    /// One non-blocking admission attempt with the object lock already
    /// held: the shared core of [`Admission::admit_one`],
    /// [`Admission::admit_batch`] and the non-blocking `try_invoke`.
    /// Contention maps to [`AdmissionOutcome::Blocked`] carrying the
    /// earlier-timestamp holders; must-abort refusals record the paper's
    /// required events and reject with
    /// [`TxnError::TimestampConflict`].
    fn admit_locked(&self, inner: &mut Inner<S>, req: &AdmissionRequest) -> AdmissionOutcome {
        let me = req.txn;
        let operation = &req.operation;
        let Some(t) = req.start_ts else {
            return AdmissionOutcome::Rejected(TxnError::ProtocolMismatch {
                object: self.id,
                detail: "static objects require a start timestamp".into(),
            });
        };
        let invoke_sw = self.metrics.stopwatch();
        if t <= inner.watermark {
            self.metrics.record_timestamp_too_old(me);
            return AdmissionOutcome::Rejected(TxnError::TimestampTooOld {
                txn: me,
                object: self.id,
            });
        }
        match self.decide_admit(inner, me, t, operation) {
            Admit::Invalid => AdmissionOutcome::Rejected(TxnError::InvalidOperation {
                object: self.id,
                operation: operation.to_string(),
            }),
            Admit::Granted(v) => {
                let mut invoked = false;
                self.record_first_events(inner, me, t, operation, &mut invoked);
                let seq = inner.next_seq;
                inner.next_seq += 1;
                let pos = inner.entries.partition_point(|e| (e.ts, e.seq) < (t, seq));
                inner.entries.insert(
                    pos,
                    Entry {
                        ts: t,
                        seq,
                        owner: me,
                        op: operation.clone(),
                        value: v.clone(),
                        committed: false,
                    },
                );
                self.log.record(Event::respond(me, self.id, v.clone()));
                self.metrics.record_admission(me, &invoke_sw);
                AdmissionOutcome::Admitted(v)
            }
            Admit::WaitOn(holders) => AdmissionOutcome::Blocked { holders },
            Admit::MustAbort => {
                let mut invoked = false;
                self.record_first_events(inner, me, t, operation, &mut invoked);
                self.metrics.record_timestamp_conflict(me);
                AdmissionOutcome::Rejected(TxnError::TimestampConflict {
                    txn: me,
                    object: self.id,
                })
            }
        }
    }

    fn compact(&self, inner: &mut Inner<S>) {
        while inner.entries.len() > self.compaction_threshold
            && inner.entries.first().is_some_and(|e| e.committed)
        {
            let e = inner.entries.remove(0);
            let next = replay_frontier(&self.spec, &inner.base, &[(e.op, e.value)]);
            debug_assert!(!next.is_empty(), "committed entries must replay");
            if next.is_empty() {
                return;
            }
            inner.base = next;
            inner.watermark = e.ts;
        }
    }
}

/// All subsets of `actives` (each active transaction either commits or
/// aborts), as sets.
fn enumerate_futures(actives: &[ActivityId]) -> Vec<BTreeSet<ActivityId>> {
    let n = actives.len();
    (0..(1usize << n))
        .map(|mask| {
            actives
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| *a)
                .collect()
        })
        .collect()
}

impl<S: SequentialSpec> AtomicObject for StaticObject<S> {
    fn metrics(&self) -> ObjectMetrics {
        self.metrics.clone()
    }

    fn try_invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        txn.register(self.self_participant());
        let mut inner = self.mu.lock();
        self.admit_locked(&mut inner, &AdmissionRequest::from_txn(txn, operation))
            .into_result(self.id)
    }

    fn invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        let t = txn.start_ts().ok_or_else(|| TxnError::ProtocolMismatch {
            object: self.id,
            detail: "static objects require a start timestamp".into(),
        })?;
        txn.register(self.self_participant());
        let me = txn.id();
        let invoke_sw = self.metrics.stopwatch();
        let mut block_sw = crate::trace::Stopwatch::disarmed();
        let mut inner = self.mu.lock();
        if t <= inner.watermark {
            self.metrics.record_timestamp_too_old(me);
            return Err(TxnError::TimestampTooOld {
                txn: me,
                object: self.id,
            });
        }
        let mut invoked = false;
        loop {
            match self.decide_admit(&inner, me, t, &operation) {
                Admit::Invalid => {
                    return Err(TxnError::InvalidOperation {
                        object: self.id,
                        operation: operation.to_string(),
                    });
                }
                Admit::Granted(v) => {
                    self.record_first_events(&mut inner, me, t, &operation, &mut invoked);
                    let seq = inner.next_seq;
                    inner.next_seq += 1;
                    let pos = inner.entries.partition_point(|e| (e.ts, e.seq) < (t, seq));
                    inner.entries.insert(
                        pos,
                        Entry {
                            ts: t,
                            seq,
                            owner: me,
                            op: operation,
                            value: v.clone(),
                            committed: false,
                        },
                    );
                    self.log.record(Event::respond(me, self.id, v.clone()));
                    if block_sw.is_armed() {
                        self.metrics.record_block_wait(&block_sw);
                    }
                    self.metrics.record_admission(me, &invoke_sw);
                    return Ok(v);
                }
                Admit::WaitOn(holders) => {
                    self.record_first_events(&mut inner, me, t, &operation, &mut invoked);
                    match txn.request_wait(&holders) {
                        crate::deadlock::WaitDecision::Die => {
                            txn.clear_wait();
                            self.metrics.record_deadlock_kill(me);
                            return Err(TxnError::Deadlock {
                                txn: me,
                                object: self.id,
                            });
                        }
                        crate::deadlock::WaitDecision::Wait => {
                            if !block_sw.is_armed() {
                                block_sw = self.metrics.stopwatch();
                            }
                            self.metrics.record_block_round(me);
                            self.cv.wait_for(&mut inner, WAIT_SLICE);
                            txn.clear_wait();
                        }
                    }
                }
                Admit::MustAbort => {
                    self.record_first_events(&mut inner, me, t, &operation, &mut invoked);
                    self.metrics.record_timestamp_conflict(me);
                    return Err(TxnError::TimestampConflict {
                        txn: me,
                        object: self.id,
                    });
                }
            }
        }
    }
}

impl<S: SequentialSpec> Admission for StaticObject<S> {
    fn register_txn(&self, txn: &Txn) {
        txn.register(self.self_participant());
    }

    fn admit_one(&self, request: &AdmissionRequest) -> AdmissionOutcome {
        let mut inner = self.mu.lock();
        self.admit_locked(&mut inner, request)
    }

    fn admit_batch(&self, requests: &[AdmissionRequest]) -> Vec<AdmissionOutcome> {
        let mut inner = self.mu.lock();
        requests
            .iter()
            .map(|r| self.admit_locked(&mut inner, r))
            .collect()
    }
}

impl<S: SequentialSpec> Participant for StaticObject<S> {
    fn object_id(&self) -> ObjectId {
        self.id
    }

    fn commit(&self, txn: ActivityId, _ts: Option<Timestamp>) {
        let mut inner = self.mu.lock();
        for e in inner.entries.iter_mut() {
            if e.owner == txn {
                e.committed = true;
            }
        }
        self.compact(&mut inner);
        self.log.record(Event::commit(txn, self.id));
        self.metrics.record_commit(txn);
        self.cv.notify_all();
    }

    fn abort(&self, txn: ActivityId) {
        let mut inner = self.mu.lock();
        inner.entries.retain(|e| e.owner != txn);
        self.log.record(Event::abort(txn, self.id));
        self.metrics.record_abort(txn);
        self.cv.notify_all();
    }
}

impl<S: SequentialSpec> std::fmt::Debug for StaticObject<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticObject")
            .field("id", &self.id)
            .field("log_len", &self.log_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Protocol;
    use atomicity_spec::atomicity::{is_atomic, is_static_atomic};
    use atomicity_spec::specs::{BankAccountSpec, IntSetSpec};
    use atomicity_spec::well_formed::WellFormedness;
    use atomicity_spec::{op, SystemSpec};

    fn x() -> ObjectId {
        ObjectId::new(1)
    }

    fn set_spec() -> SystemSpec {
        SystemSpec::new().with_object(x(), IntSetSpec::new())
    }

    #[test]
    fn serial_execution_in_timestamp_order() {
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        let t1 = mgr.begin();
        set.invoke(&t1, op("insert", [3])).unwrap();
        mgr.commit(t1).unwrap();
        let t2 = mgr.begin();
        assert_eq!(
            set.invoke(&t2, op("member", [3])).unwrap(),
            Value::from(true)
        );
        mgr.commit(t2).unwrap();
        let h = mgr.history();
        assert!(WellFormedness::Static.is_well_formed(&h));
        assert!(is_static_atomic(&h, &set_spec()));
    }

    #[test]
    fn out_of_timestamp_order_execution_is_reordered() {
        // The §4.2.2 "static atomic" example: the later-timestamp insert
        // executes first; the earlier-timestamp member then runs and must
        // NOT see it.
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        let early = mgr.begin(); // ts 1
        let late = mgr.begin(); // ts 2
        set.invoke(&late, op("insert", [3])).unwrap();
        mgr.commit(late).unwrap();
        assert_eq!(
            set.invoke(&early, op("member", [3])).unwrap(),
            Value::from(false),
            "earlier timestamp must see the earlier (empty) state"
        );
        mgr.commit(early).unwrap();
        let h = mgr.history();
        assert!(is_static_atomic(&h, &set_spec()));
        assert!(is_atomic(&h, &set_spec()));
    }

    #[test]
    fn late_write_that_invalidates_read_aborts() {
        // Reed's write-after-read abort: a later-timestamp transaction
        // reads; an earlier-timestamp insert then arrives and would change
        // that answer — the inserter must abort.
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        let early = mgr.begin(); // ts 1
        let late = mgr.begin(); // ts 2
        assert_eq!(
            set.invoke(&late, op("member", [3])).unwrap(),
            Value::from(false)
        );
        mgr.commit(late).unwrap();
        let err = set.invoke(&early, op("insert", [3])).unwrap_err();
        assert!(matches!(err, TxnError::TimestampConflict { .. }));
        mgr.abort(early);
        let h = mgr.history();
        assert!(is_static_atomic(&h, &set_spec()));
    }

    #[test]
    fn late_write_that_commutes_is_admitted() {
        // An earlier-timestamp insert of a *different* element does not
        // invalidate the recorded member(3) and is admitted.
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        let early = mgr.begin();
        let late = mgr.begin();
        assert_eq!(
            set.invoke(&late, op("member", [3])).unwrap(),
            Value::from(false)
        );
        mgr.commit(late).unwrap();
        set.invoke(&early, op("insert", [7])).unwrap();
        mgr.commit(early).unwrap();
        assert!(is_static_atomic(&mgr.history(), &set_spec()));
    }

    #[test]
    fn reader_waits_for_earlier_uncommitted_writer() {
        let mgr = TxnManager::new(Protocol::Static);
        let acct = StaticObject::new(x(), BankAccountSpec::new(), &mgr);
        let writer = mgr.begin(); // ts 1
        let reader = mgr.begin(); // ts 2
        acct.invoke(&writer, op("deposit", [10])).unwrap();
        let acct2 = Arc::clone(&acct);
        let h = std::thread::spawn(move || {
            let v = acct2
                .invoke(&reader, op("balance", [] as [i64; 0]))
                .unwrap();
            (reader, v)
        });
        std::thread::sleep(Duration::from_millis(30));
        mgr.commit(writer).unwrap();
        let (reader, v) = h.join().unwrap();
        assert_eq!(
            v,
            Value::from(10),
            "reader must include the committed deposit"
        );
        mgr.commit(reader).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_static_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn commutative_update_ignores_uncommitted_earlier_reader_free_ops() {
        // A later deposit does not need to wait on an earlier uncommitted
        // deposit: its ok result and all validations hold in both futures.
        let mgr = TxnManager::new(Protocol::Static);
        let acct = StaticObject::new(x(), BankAccountSpec::new(), &mgr);
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        acct.invoke(&t1, op("deposit", [5])).unwrap();
        // t2 proceeds although t1 is uncommitted.
        acct.invoke(&t2, op("deposit", [7])).unwrap();
        mgr.commit(t2).unwrap();
        mgr.commit(t1).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_static_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn timestamp_below_watermark_is_rejected() {
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::with_bounds(x(), IntSetSpec::new(), &mgr, 4, 0);
        for i in 0..3 {
            let t = mgr.begin();
            set.invoke(&t, op("insert", [i])).unwrap();
            mgr.commit(t).unwrap();
        }
        assert!(set.watermark() > 0);
        assert_eq!(set.log_len(), 0);
        let stale = mgr.begin_at(1);
        let err = set.invoke(&stale, op("member", [0])).unwrap_err();
        assert!(matches!(err, TxnError::TimestampTooOld { .. }));
        mgr.abort(stale);
    }

    #[test]
    fn compaction_preserves_semantics() {
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::with_bounds(x(), IntSetSpec::new(), &mgr, 4, 2);
        for i in 0..10 {
            let t = mgr.begin();
            set.invoke(&t, op("insert", [i])).unwrap();
            mgr.commit(t).unwrap();
        }
        assert!(set.log_len() <= 3);
        let t = mgr.begin();
        assert_eq!(
            set.invoke(&t, op("member", [7])).unwrap(),
            Value::from(true)
        );
        assert_eq!(
            set.invoke(&t, op("size", [] as [i64; 0])).unwrap(),
            Value::from(10)
        );
        mgr.commit(t).unwrap();
    }

    #[test]
    fn aborted_entries_disappear() {
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        let t1 = mgr.begin();
        set.invoke(&t1, op("insert", [3])).unwrap();
        mgr.abort(t1);
        let t2 = mgr.begin();
        assert_eq!(
            set.invoke(&t2, op("member", [3])).unwrap(),
            Value::from(false)
        );
        mgr.commit(t2).unwrap();
        assert!(is_static_atomic(&mgr.history(), &set_spec()));
    }

    #[test]
    fn missing_timestamp_is_protocol_mismatch() {
        let mgr = TxnManager::new(Protocol::Dynamic); // no start timestamps
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        let t = mgr.begin();
        let err = set.invoke(&t, op("insert", [1])).unwrap_err();
        assert!(matches!(err, TxnError::ProtocolMismatch { .. }));
        mgr.abort(t);
    }

    #[test]
    fn read_only_transactions_never_get_timestamp_conflicts() {
        // Reed's guarantee, generalized: queries cannot invalidate later
        // results (they change nothing), so a reader is never the one
        // forced to abort — it only ever waits.
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        // Interleave writers and readers with many timestamp inversions.
        let mut txns = Vec::new();
        for _ in 0..6 {
            txns.push(mgr.begin());
        }
        // Writers with LATER timestamps execute first.
        set.invoke(&txns[5], op("insert", [1])).unwrap();
        set.invoke(&txns[4], op("insert", [2])).unwrap();
        // Readers with EARLIER timestamps then query: served from their
        // position, no abort possible. (Three readers keep the number of
        // concurrently active transactions within the default
        // future-enumeration bound; a fourth would conservatively block.)
        for (i, t) in txns.iter().enumerate().take(3) {
            let v = set.invoke(t, op("member", [1])).unwrap();
            assert_eq!(v, Value::from(false), "reader {i} sees its position");
        }
        for t in txns {
            mgr.commit(t).unwrap();
        }
        assert!(is_static_atomic(&mgr.history(), &set_spec()));
    }

    #[test]
    fn same_transaction_sees_its_own_earlier_operations() {
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        let t = mgr.begin();
        set.invoke(&t, op("insert", [3])).unwrap();
        assert_eq!(
            set.invoke(&t, op("member", [3])).unwrap(),
            Value::from(true),
            "read-your-writes within a transaction"
        );
        mgr.commit(t).unwrap();
        assert!(is_static_atomic(&mgr.history(), &set_spec()));
    }

    #[test]
    fn invalid_operation_reported() {
        let mgr = TxnManager::new(Protocol::Static);
        let set = StaticObject::new(x(), IntSetSpec::new(), &mgr);
        let t = mgr.begin();
        let err = set
            .invoke(&t, op("frobnicate", [] as [i64; 0]))
            .unwrap_err();
        assert!(matches!(err, TxnError::InvalidOperation { .. }));
        mgr.abort(t);
    }
}
