//! The shared history recorder.
//!
//! Every engine appends the events it produces — invocations, responses,
//! initiations, commits, aborts — to a [`HistoryLog`]. The resulting
//! [`History`] is the *actual computation* in the paper's formal sense, so
//! tests can hand it straight to the checkers in
//! [`atomicity_spec::atomicity`]: this is the bridge between §4's
//! definitions and the online implementations.
//!
//! # Sharded recording
//!
//! The log is **sharded**: each recording thread appends to one of a fixed
//! set of per-shard buffers, so concurrent recorders on different shards
//! never contend on a common mutex. Ordering is preserved by a global
//! atomic **sequence stamp** drawn at record time: engines record while
//! still holding the affected object's lock, so the stamp order *is* the
//! linearization order the engines enforced, and [`HistoryLog::snapshot`]
//! reconstructs exactly that linearization by merging the shards in stamp
//! order. A single-shard log ([`HistoryLog::coarse`]) degenerates to the
//! old one-big-mutex recorder — benchmarks use it as the contention
//! baseline (experiment E8).

use atomicity_spec::{Event, History};
use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of append shards. A small power of two: enough to spread
/// a machine's worth of worker threads, small enough that snapshot merges
/// stay cheap.
const DEFAULT_SHARDS: usize = 16;

/// A thread-safe, append-only event recorder shared by a transaction
/// manager and all its objects.
///
/// Cloning is cheap (the log is shared). The **stamp order** is the
/// linearization order of the recorded events: engines append responses
/// and commit events while holding the affected object's lock, so the
/// sequence number each event receives is faithful to the synchronization
/// the engines actually performed. [`HistoryLog::snapshot`] merges the
/// per-thread shard buffers back into that order.
///
/// # Example
///
/// ```
/// use atomicity_core::HistoryLog;
/// use atomicity_spec::{Event, op, Value};
/// let log = HistoryLog::new();
/// log.record(Event::invoke(1.into(), 1.into(), op("increment", [] as [i64; 0])));
/// log.record(Event::respond(1.into(), 1.into(), Value::from(1)));
/// assert_eq!(log.snapshot().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct HistoryLog {
    inner: Arc<LogInner>,
}

/// One shard's append buffer of `(stamp, event)` pairs.
type Shard = Mutex<Vec<(u64, Event)>>;

#[derive(Debug)]
struct LogInner {
    /// The global sequence stamp; the next event's linearization index.
    next_seq: AtomicU64,
    /// Per-shard `(stamp, event)` buffers. Threads map to shards by a
    /// per-thread token, so a thread's appends never migrate mid-run.
    shards: Box<[Shard]>,
}

impl Default for HistoryLog {
    fn default() -> Self {
        Self::new()
    }
}

/// A stable per-thread token used to pick this thread's shard.
fn thread_token() -> u64 {
    use std::hash::{Hash, Hasher};
    thread_local! {
        static TOKEN: u64 = {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            hasher.finish()
        };
    }
    TOKEN.with(|t| *t)
}

impl HistoryLog {
    /// Creates an empty log with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty log with an explicit shard count (clamped to at
    /// least 1). Exposed so benchmarks can compare contention profiles.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        HistoryLog {
            inner: Arc::new(LogInner {
                next_seq: AtomicU64::new(0),
                shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            }),
        }
    }

    /// Creates a single-shard log: every append goes through one mutex,
    /// reproducing the pre-sharding recorder's contention profile. Used as
    /// the baseline in the E8 stress experiment.
    pub fn coarse() -> Self {
        Self::with_shards(1)
    }

    /// The number of append shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard(&self) -> &Mutex<Vec<(u64, Event)>> {
        let idx = thread_token() as usize % self.inner.shards.len();
        &self.inner.shards[idx]
    }

    /// Appends an event, returning its sequence stamp (its index in the
    /// linearization).
    ///
    /// Engines call this while holding the affected object's lock, which
    /// is what makes the stamp order a faithful linearization.
    pub fn record(&self, event: Event) -> u64 {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        self.shard().lock().push((seq, event));
        seq
    }

    /// Appends several events with **contiguous** stamps (no other event
    /// can interleave between them in the merged history). Returns the
    /// stamp range.
    pub fn record_all(&self, events: impl IntoIterator<Item = Event>) -> Range<u64> {
        let events: Vec<Event> = events.into_iter().collect();
        let n = events.len() as u64;
        let start = self.inner.next_seq.fetch_add(n, Ordering::Relaxed);
        if n > 0 {
            let mut shard = self.shard().lock();
            shard.reserve(events.len());
            for (i, event) in events.into_iter().enumerate() {
                shard.push((start + i as u64, event));
            }
        }
        start..start + n
    }

    /// The history recorded so far, merged into stamp order.
    ///
    /// Each shard is copied under its own lock, so no appender is ever
    /// blocked for the duration of the full copy (the old single-mutex
    /// recorder stalled every recorder for the whole O(n) clone). At
    /// quiescence the result is exactly the linearization the engines
    /// enforced; while recorders are still running it is a faithful-order
    /// subset. Built on [`HistoryLog::merged_events`], so no intermediate
    /// flat `(stamp, event)` vector is materialized.
    pub fn snapshot(&self) -> History {
        History::from_events(self.merged_events().map(|(_, event)| event))
    }

    /// A streaming iterator over the recorded events in stamp order.
    ///
    /// Each shard is copied under its own lock and sorted individually;
    /// the shard runs are then k-way merged lazily as the iterator is
    /// consumed. Compared to the old snapshot path this skips both the
    /// single O(n) flat `(stamp, event)` vector and the global
    /// O(n log n) sort — the dominant allocation on the verify path —
    /// replacing them with per-shard runs and an O(n log k) merge.
    /// Certifier call sites that only need one in-order pass can consume
    /// events without ever materializing a [`History`].
    pub fn merged_events(&self) -> MergedEvents {
        let mut runs: Vec<std::vec::IntoIter<(u64, Event)>> = Vec::new();
        for shard in self.inner.shards.iter() {
            let mut run = shard.lock().clone();
            if run.is_empty() {
                continue;
            }
            // Within a shard two threads can publish slightly out of
            // stamp order (the stamp draw and the push are not one
            // atomic step), so each run is sorted individually — cheap,
            // because runs are nearly sorted already.
            run.sort_unstable_by_key(|(seq, _)| *seq);
            runs.push(run.into_iter());
        }
        let mut heads = BinaryHeap::with_capacity(runs.len());
        for (idx, run) in runs.iter_mut().enumerate() {
            if let Some((stamp, event)) = run.next() {
                heads.push(MergeHead { stamp, event, idx });
            }
        }
        MergedEvents { runs, heads }
    }

    /// Opens a live, lock-light tap on the stamp stream: a cursor that
    /// [`LogTap::poll`]s newly recorded events out of the shards in exact
    /// stamp order while recorders keep running. See [`LogTap`].
    pub fn tap(&self) -> LogTap {
        LogTap {
            inner: self.inner.clone(),
            cursors: vec![0; self.inner.shards.len()],
            pending: BinaryHeap::new(),
            next: 0,
            retire: false,
        }
    }

    /// Like [`HistoryLog::tap`], but the tap **retires** consumed shard
    /// prefixes: once every event below the tap's frontier has been
    /// copied out, the shard buffers drop them, so the log's resident
    /// memory stays proportional to the unconsumed suffix instead of the
    /// whole history. A retired log's [`HistoryLog::snapshot`] only sees
    /// the suffix — retirement trades post-hoc replay for bounded memory.
    /// At most one retiring tap may consume a log, and the log must not
    /// be [`HistoryLog::clear`]ed while tapped.
    pub fn tap_retiring(&self) -> LogTap {
        let mut tap = self.tap();
        tap.retire = true;
        tap
    }

    /// The number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Discards all recorded events (benchmarks reuse managers between
    /// iterations). Stamps keep increasing across a clear; only relative
    /// order matters. Must not be called while a [`LogTap`] is consuming
    /// the log (the tap's cursors would go stale).
    pub fn clear(&self) {
        for shard in self.inner.shards.iter() {
            shard.lock().clear();
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming merge

/// One run's current head inside the [`MergedEvents`] k-way merge.
#[derive(Debug)]
struct MergeHead {
    stamp: u64,
    event: Event,
    idx: usize,
}

// Ordered by stamp alone (stamps are unique), reversed so the
// std max-heap pops the smallest stamp first.
impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.stamp == other.stamp
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other.stamp.cmp(&self.stamp)
    }
}

/// Lazy k-way merge of the per-shard runs in stamp order
/// (see [`HistoryLog::merged_events`]).
#[derive(Debug)]
pub struct MergedEvents {
    runs: Vec<std::vec::IntoIter<(u64, Event)>>,
    heads: BinaryHeap<MergeHead>,
}

impl Iterator for MergedEvents {
    type Item = (u64, Event);

    fn next(&mut self) -> Option<(u64, Event)> {
        let head = self.heads.pop()?;
        if let Some((stamp, event)) = self.runs[head.idx].next() {
            self.heads.push(MergeHead {
                stamp,
                event,
                idx: head.idx,
            });
        }
        Some((head.stamp, head.event))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.runs.iter().map(|r| r.len()).sum::<usize>() + self.heads.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for MergedEvents {}

// ---------------------------------------------------------------------------
// Live tap

/// A live cursor over the stamp stream of a [`HistoryLog`].
///
/// A tap repeatedly [`LogTap::poll`]s the shards for newly recorded
/// events and emits them in **exact stamp order**: out-of-order arrivals
/// (a thread that drew a stamp but has not pushed yet) are held back in a
/// small pending heap until every smaller stamp has been published —
/// stamps are dense, so emission resumes as soon as the gap fills. The
/// pending heap is bounded by the number of in-flight recorders, not by
/// history length.
///
/// Each `poll` takes each shard lock only long enough to copy the new
/// suffix, so recorders are never blocked behind an O(n) merge — this is
/// what lets an online certifier run against the live stream instead of
/// cloning the history (see `atomicity-certify`).
#[derive(Debug)]
pub struct LogTap {
    inner: Arc<LogInner>,
    /// Per-shard count of entries already copied out.
    cursors: Vec<usize>,
    /// Copied events above the contiguous frontier, keyed by stamp.
    pending: BinaryHeap<MergeHead>,
    /// The next stamp to emit: everything below has been emitted.
    next: u64,
    /// Whether consumed shard prefixes are dropped from the log.
    retire: bool,
}

impl LogTap {
    /// Drains every newly published event whose stamp is ready, in stamp
    /// order, into `sink`; returns how many events were emitted.
    ///
    /// Non-blocking: events recorded but still unreachable (a smaller
    /// stamp is drawn but unpublished) stay pending until a later poll.
    pub fn poll(&mut self, mut sink: impl FnMut(u64, Event)) -> usize {
        for (idx, shard) in self.inner.shards.iter().enumerate() {
            let mut buf = shard.lock();
            let cursor = self.cursors[idx].min(buf.len());
            if cursor < buf.len() {
                for (stamp, event) in buf[cursor..].iter().cloned() {
                    self.pending.push(MergeHead { stamp, event, idx });
                }
            }
            if self.retire {
                buf.clear();
                self.cursors[idx] = 0;
            } else {
                self.cursors[idx] = buf.len();
            }
        }
        let mut emitted = 0;
        while self.pending.peek().is_some_and(|h| h.stamp == self.next) {
            let head = self.pending.pop().expect("peeked");
            sink(head.stamp, head.event);
            self.next += 1;
            emitted += 1;
        }
        emitted
    }

    /// The emission frontier: every event with stamp `< frontier()` has
    /// been handed to a sink. This is the tap's collapsed vector clock —
    /// the per-shard publication clocks folded through the dense global
    /// stamp order into a single watermark.
    pub fn frontier(&self) -> u64 {
        self.next
    }

    /// Events copied out of the shards but held back because a smaller
    /// stamp is still unpublished. Bounded by in-flight recorders.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether this tap retires consumed events from the log.
    pub fn is_retiring(&self) -> bool {
        self.retire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    #[test]
    fn clones_share_the_log() {
        let log = HistoryLog::new();
        let log2 = log.clone();
        log.record(Event::commit(1.into(), 1.into()));
        assert_eq!(log2.len(), 1);
        log2.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn record_all_is_atomic_and_ordered() {
        let log = HistoryLog::new();
        log.record_all(vec![
            Event::invoke(1.into(), 1.into(), op("write", [1])),
            Event::respond(1.into(), 1.into(), Value::ok()),
        ]);
        let h = log.snapshot();
        assert!(h.events()[0].is_invoke());
        assert!(h.events()[1].is_respond());
    }

    #[test]
    fn concurrent_appends_do_not_lose_events() {
        let log = HistoryLog::new();
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    log.record(Event::commit(i.into(), 1.into()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 1000);
    }

    #[test]
    fn record_returns_monotone_stamps_within_a_thread() {
        let log = HistoryLog::new();
        let a = log.record(Event::commit(1.into(), 1.into()));
        let b = log.record(Event::commit(2.into(), 1.into()));
        assert!(b > a);
    }

    #[test]
    fn record_all_returns_contiguous_stamp_range() {
        let log = HistoryLog::new();
        let r = log.record_all(vec![
            Event::invoke(1.into(), 1.into(), op("write", [1])),
            Event::respond(1.into(), 1.into(), Value::ok()),
        ]);
        assert_eq!(r.end - r.start, 2);
        let empty = log.record_all(Vec::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn snapshot_merges_threads_in_stamp_order() {
        let log = HistoryLog::new();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                (0..100u32)
                    .map(|i| log.record(Event::commit((t * 1000 + i).into(), 1.into())))
                    .collect::<Vec<u64>>()
            }));
        }
        let mut stamps: Vec<u64> = Vec::new();
        for h in handles {
            stamps.extend(h.join().unwrap());
        }
        // Stamps are unique and dense.
        stamps.sort_unstable();
        assert_eq!(stamps, (0..800).collect::<Vec<u64>>());
        // The snapshot's length matches and per-thread order is preserved:
        // within one activity (recorded by one thread), the merged history
        // keeps the recording order.
        let h = log.snapshot();
        assert_eq!(h.len(), 800);
        for t in 0..8u32 {
            let ids: Vec<u32> = h
                .events()
                .iter()
                .map(|e| e.activity.raw())
                .filter(|id| id / 1000 == t)
                .collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "thread {t}'s events out of order");
        }
    }

    #[test]
    fn merged_events_streams_in_stamp_order() {
        let log = HistoryLog::with_shards(4);
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    log.record(Event::commit((t * 1000 + i).into(), 1.into()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stamped: Vec<(u64, Event)> = log.merged_events().collect();
        assert_eq!(stamped.len(), 400);
        let stamps: Vec<u64> = stamped.iter().map(|(s, _)| *s).collect();
        assert_eq!(stamps, (0..400).collect::<Vec<u64>>());
        // And the snapshot built on top agrees event for event.
        let h = log.snapshot();
        for (i, e) in h.events().iter().enumerate() {
            assert_eq!(e.activity, stamped[i].1.activity);
        }
    }

    #[test]
    fn tap_emits_exact_stamp_order_while_recording() {
        let log = HistoryLog::with_shards(4);
        let mut tap = log.tap();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    log.record(Event::commit((t * 1000 + i).into(), 1.into()));
                }
            }));
        }
        // Poll concurrently with the recorders: emission must be the
        // dense stamp sequence regardless of arrival interleaving.
        let mut seen = Vec::new();
        while seen.len() < 800 {
            tap.poll(|stamp, _| seen.push(stamp));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen, (0..800).collect::<Vec<u64>>());
        assert_eq!(tap.frontier(), 800);
        assert_eq!(tap.pending_len(), 0);
        // Non-retiring tap leaves the log intact.
        assert_eq!(log.len(), 800);
    }

    #[test]
    fn retiring_tap_bounds_log_memory() {
        let log = HistoryLog::with_shards(2);
        let mut tap = log.tap_retiring();
        assert!(tap.is_retiring());
        for i in 0..100u32 {
            log.record(Event::commit(i.into(), 1.into()));
        }
        let mut n = 0;
        tap.poll(|_, _| n += 1);
        assert_eq!(n, 100);
        // Consumed events are gone from the log...
        assert_eq!(log.len(), 0);
        assert!(log.snapshot().is_empty());
        // ...but the stream continues seamlessly.
        log.record(Event::commit(100.into(), 1.into()));
        let mut last = None;
        tap.poll(|s, _| last = Some(s));
        assert_eq!(last, Some(100));
        assert_eq!(tap.frontier(), 101);
    }

    #[test]
    fn coarse_log_behaves_identically() {
        let log = HistoryLog::coarse();
        assert_eq!(log.shard_count(), 1);
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    log.record(Event::commit(i.into(), 1.into()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 200);
        assert_eq!(log.snapshot().len(), 200);
    }
}
