//! The shared history recorder.
//!
//! Every engine appends the events it produces — invocations, responses,
//! initiations, commits, aborts — to a [`HistoryLog`]. The resulting
//! [`History`] is the *actual computation* in the paper's formal sense, so
//! tests can hand it straight to the checkers in
//! [`atomicity_spec::atomicity`]: this is the bridge between §4's
//! definitions and the online implementations.
//!
//! # Sharded recording
//!
//! The log is **sharded**: each recording thread appends to one of a fixed
//! set of per-shard buffers, so concurrent recorders on different shards
//! never contend on a common mutex. Ordering is preserved by a global
//! atomic **sequence stamp** drawn at record time: engines record while
//! still holding the affected object's lock, so the stamp order *is* the
//! linearization order the engines enforced, and [`HistoryLog::snapshot`]
//! reconstructs exactly that linearization by merging the shards in stamp
//! order. A single-shard log ([`HistoryLog::coarse`]) degenerates to the
//! old one-big-mutex recorder — benchmarks use it as the contention
//! baseline (experiment E8).

use atomicity_spec::{Event, History};
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of append shards. A small power of two: enough to spread
/// a machine's worth of worker threads, small enough that snapshot merges
/// stay cheap.
const DEFAULT_SHARDS: usize = 16;

/// A thread-safe, append-only event recorder shared by a transaction
/// manager and all its objects.
///
/// Cloning is cheap (the log is shared). The **stamp order** is the
/// linearization order of the recorded events: engines append responses
/// and commit events while holding the affected object's lock, so the
/// sequence number each event receives is faithful to the synchronization
/// the engines actually performed. [`HistoryLog::snapshot`] merges the
/// per-thread shard buffers back into that order.
///
/// # Example
///
/// ```
/// use atomicity_core::HistoryLog;
/// use atomicity_spec::{Event, op, Value};
/// let log = HistoryLog::new();
/// log.record(Event::invoke(1.into(), 1.into(), op("increment", [] as [i64; 0])));
/// log.record(Event::respond(1.into(), 1.into(), Value::from(1)));
/// assert_eq!(log.snapshot().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct HistoryLog {
    inner: Arc<LogInner>,
}

/// One shard's append buffer of `(stamp, event)` pairs.
type Shard = Mutex<Vec<(u64, Event)>>;

#[derive(Debug)]
struct LogInner {
    /// The global sequence stamp; the next event's linearization index.
    next_seq: AtomicU64,
    /// Per-shard `(stamp, event)` buffers. Threads map to shards by a
    /// per-thread token, so a thread's appends never migrate mid-run.
    shards: Box<[Shard]>,
}

impl Default for HistoryLog {
    fn default() -> Self {
        Self::new()
    }
}

/// A stable per-thread token used to pick this thread's shard.
fn thread_token() -> u64 {
    use std::hash::{Hash, Hasher};
    thread_local! {
        static TOKEN: u64 = {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            hasher.finish()
        };
    }
    TOKEN.with(|t| *t)
}

impl HistoryLog {
    /// Creates an empty log with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty log with an explicit shard count (clamped to at
    /// least 1). Exposed so benchmarks can compare contention profiles.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        HistoryLog {
            inner: Arc::new(LogInner {
                next_seq: AtomicU64::new(0),
                shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            }),
        }
    }

    /// Creates a single-shard log: every append goes through one mutex,
    /// reproducing the pre-sharding recorder's contention profile. Used as
    /// the baseline in the E8 stress experiment.
    pub fn coarse() -> Self {
        Self::with_shards(1)
    }

    /// The number of append shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard(&self) -> &Mutex<Vec<(u64, Event)>> {
        let idx = thread_token() as usize % self.inner.shards.len();
        &self.inner.shards[idx]
    }

    /// Appends an event, returning its sequence stamp (its index in the
    /// linearization).
    ///
    /// Engines call this while holding the affected object's lock, which
    /// is what makes the stamp order a faithful linearization.
    pub fn record(&self, event: Event) -> u64 {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        self.shard().lock().push((seq, event));
        seq
    }

    /// Appends several events with **contiguous** stamps (no other event
    /// can interleave between them in the merged history). Returns the
    /// stamp range.
    pub fn record_all(&self, events: impl IntoIterator<Item = Event>) -> Range<u64> {
        let events: Vec<Event> = events.into_iter().collect();
        let n = events.len() as u64;
        let start = self.inner.next_seq.fetch_add(n, Ordering::Relaxed);
        if n > 0 {
            let mut shard = self.shard().lock();
            shard.reserve(events.len());
            for (i, event) in events.into_iter().enumerate() {
                shard.push((start + i as u64, event));
            }
        }
        start..start + n
    }

    /// The history recorded so far, merged into stamp order.
    ///
    /// Each shard is copied under its own lock, so no appender is ever
    /// blocked for the duration of the full copy (the old single-mutex
    /// recorder stalled every recorder for the whole O(n) clone). At
    /// quiescence the result is exactly the linearization the engines
    /// enforced; while recorders are still running it is a faithful-order
    /// subset.
    pub fn snapshot(&self) -> History {
        let mut stamped: Vec<(u64, Event)> = Vec::new();
        for shard in self.inner.shards.iter() {
            let buf = shard.lock();
            stamped.extend_from_slice(&buf);
        }
        stamped.sort_unstable_by_key(|(seq, _)| *seq);
        History::from_events(stamped.into_iter().map(|(_, event)| event))
    }

    /// The number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Discards all recorded events (benchmarks reuse managers between
    /// iterations). Stamps keep increasing across a clear; only relative
    /// order matters.
    pub fn clear(&self) {
        for shard in self.inner.shards.iter() {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    #[test]
    fn clones_share_the_log() {
        let log = HistoryLog::new();
        let log2 = log.clone();
        log.record(Event::commit(1.into(), 1.into()));
        assert_eq!(log2.len(), 1);
        log2.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn record_all_is_atomic_and_ordered() {
        let log = HistoryLog::new();
        log.record_all(vec![
            Event::invoke(1.into(), 1.into(), op("write", [1])),
            Event::respond(1.into(), 1.into(), Value::ok()),
        ]);
        let h = log.snapshot();
        assert!(h.events()[0].is_invoke());
        assert!(h.events()[1].is_respond());
    }

    #[test]
    fn concurrent_appends_do_not_lose_events() {
        let log = HistoryLog::new();
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    log.record(Event::commit(i.into(), 1.into()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 1000);
    }

    #[test]
    fn record_returns_monotone_stamps_within_a_thread() {
        let log = HistoryLog::new();
        let a = log.record(Event::commit(1.into(), 1.into()));
        let b = log.record(Event::commit(2.into(), 1.into()));
        assert!(b > a);
    }

    #[test]
    fn record_all_returns_contiguous_stamp_range() {
        let log = HistoryLog::new();
        let r = log.record_all(vec![
            Event::invoke(1.into(), 1.into(), op("write", [1])),
            Event::respond(1.into(), 1.into(), Value::ok()),
        ]);
        assert_eq!(r.end - r.start, 2);
        let empty = log.record_all(Vec::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn snapshot_merges_threads_in_stamp_order() {
        let log = HistoryLog::new();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                (0..100u32)
                    .map(|i| log.record(Event::commit((t * 1000 + i).into(), 1.into())))
                    .collect::<Vec<u64>>()
            }));
        }
        let mut stamps: Vec<u64> = Vec::new();
        for h in handles {
            stamps.extend(h.join().unwrap());
        }
        // Stamps are unique and dense.
        stamps.sort_unstable();
        assert_eq!(stamps, (0..800).collect::<Vec<u64>>());
        // The snapshot's length matches and per-thread order is preserved:
        // within one activity (recorded by one thread), the merged history
        // keeps the recording order.
        let h = log.snapshot();
        assert_eq!(h.len(), 800);
        for t in 0..8u32 {
            let ids: Vec<u32> = h
                .events()
                .iter()
                .map(|e| e.activity.raw())
                .filter(|id| id / 1000 == t)
                .collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "thread {t}'s events out of order");
        }
    }

    #[test]
    fn coarse_log_behaves_identically() {
        let log = HistoryLog::coarse();
        assert_eq!(log.shard_count(), 1);
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    log.record(Event::commit(i.into(), 1.into()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 200);
        assert_eq!(log.snapshot().len(), 200);
    }
}
