//! The shared history recorder.
//!
//! Every engine appends the events it produces — invocations, responses,
//! initiations, commits, aborts — to a [`HistoryLog`]. The resulting
//! [`History`] is the *actual computation* in the paper's formal sense, so
//! tests can hand it straight to the checkers in
//! [`atomicity_spec::atomicity`]: this is the bridge between §4's
//! definitions and the online implementations.

use atomicity_spec::{Event, History};
use parking_lot::Mutex;
use std::sync::Arc;

/// A thread-safe, append-only event recorder shared by a transaction
/// manager and all its objects.
///
/// Cloning is cheap (the log is shared). The append order is the
/// linearization order of the recorded events: engines append responses
/// and commit events while holding the affected object's lock, so the
/// recorded order is faithful to the synchronization the engines actually
/// performed.
///
/// # Example
///
/// ```
/// use atomicity_core::HistoryLog;
/// use atomicity_spec::{Event, op, Value};
/// let log = HistoryLog::new();
/// log.record(Event::invoke(1.into(), 1.into(), op("increment", [] as [i64; 0])));
/// log.record(Event::respond(1.into(), 1.into(), Value::from(1)));
/// assert_eq!(log.snapshot().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryLog {
    inner: Arc<Mutex<History>>,
}

impl HistoryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        HistoryLog {
            inner: Arc::new(Mutex::new(History::new())),
        }
    }

    /// Appends an event.
    pub fn record(&self, event: Event) {
        self.inner.lock().push(event);
    }

    /// Appends several events atomically (no other event can interleave).
    pub fn record_all(&self, events: impl IntoIterator<Item = Event>) {
        let mut h = self.inner.lock();
        for e in events {
            h.push(e);
        }
    }

    /// A copy of the history recorded so far.
    pub fn snapshot(&self) -> History {
        self.inner.lock().clone()
    }

    /// The number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Discards all recorded events (benchmarks reuse managers between
    /// iterations).
    pub fn clear(&self) {
        *self.inner.lock() = History::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    #[test]
    fn clones_share_the_log() {
        let log = HistoryLog::new();
        let log2 = log.clone();
        log.record(Event::commit(1.into(), 1.into()));
        assert_eq!(log2.len(), 1);
        log2.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn record_all_is_atomic_and_ordered() {
        let log = HistoryLog::new();
        log.record_all(vec![
            Event::invoke(1.into(), 1.into(), op("write", [1])),
            Event::respond(1.into(), 1.into(), Value::ok()),
        ]);
        let h = log.snapshot();
        assert!(h.events()[0].is_invoke());
        assert!(h.events()[1].is_respond());
    }

    #[test]
    fn concurrent_appends_do_not_lose_events() {
        let log = HistoryLog::new();
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    log.record(Event::commit(i.into(), 1.into()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 1000);
    }
}
