//! Transaction handles.

use crate::deadlock::WaitDecision;
use crate::manager::ManagerInner;
use crate::object::Participant;
use atomicity_spec::{ActivityId, Timestamp};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Whether a transaction is an update or has declared itself read-only.
///
/// The partition of activities into updates and read-only activities is
/// the extra, user-supplied semantic information hybrid atomicity exploits
/// (§4.3). Under the dynamic protocol the distinction is ignored —
/// precisely the limitation the paper ascribes to dynamic atomicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// May invoke any operation.
    Update,
    /// Promises to invoke only operations that never change object state.
    ReadOnly,
}

/// The lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnStatus {
    /// Running; may invoke operations.
    Active,
    /// Successfully completed; effects are permanent.
    Committed,
    /// Rolled back; effects are discarded.
    Aborted,
}

/// A handle to an active transaction.
///
/// Created by [`crate::TxnManager::begin`] /
/// [`crate::TxnManager::begin_read_only`]; consumed by
/// [`crate::TxnManager::commit`] / [`crate::TxnManager::abort`]. The handle
/// is intentionally neither `Clone` nor `Sync`-shared: a transaction is a
/// single sequential thread of control, exactly as the paper's
/// well-formedness conditions demand.
pub struct Txn {
    pub(crate) id: ActivityId,
    pub(crate) kind: TxnKind,
    pub(crate) start_ts: Option<Timestamp>,
    pub(crate) inner: Arc<ManagerInner>,
}

impl Txn {
    /// The transaction's identity, used as the activity id in recorded
    /// histories.
    pub fn id(&self) -> ActivityId {
        self.id
    }

    /// Update or read-only.
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// The timestamp chosen at start, if the protocol assigns one
    /// (static: all transactions; hybrid: read-only transactions).
    pub fn start_ts(&self) -> Option<Timestamp> {
        self.start_ts
    }

    /// Whether the transaction is still active.
    pub fn is_active(&self) -> bool {
        self.inner.status(self.id) == Some(TxnStatus::Active)
    }

    /// Registers `participant` for the commit/abort protocol; idempotent
    /// per object. Objects call this on first use by the transaction.
    pub fn register(&self, participant: Arc<dyn Participant>) {
        self.inner.register_participant(self.id, participant);
    }

    /// Asks the deadlock policy whether this transaction may block waiting
    /// for `holders`. On [`WaitDecision::Wait`] the waits-for edges are
    /// recorded and must be cleared with [`Txn::clear_wait`] after waking.
    pub fn request_wait(&self, holders: &BTreeSet<ActivityId>) -> WaitDecision {
        self.inner.request_wait(self.id, holders)
    }

    /// Clears this transaction's waits-for edges.
    pub fn clear_wait(&self) {
        self.inner.clear_wait(self.id);
    }
}

impl fmt::Debug for Txn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("start_ts", &self.start_ts)
            .finish()
    }
}
