//! The transaction manager: lifecycle, timestamps, and the commit protocol.

use crate::clock::LamportClock;
use crate::deadlock::{DeadlockPolicy, WaitDecision, WaitGraph};
use crate::error::TxnError;
use crate::log::HistoryLog;
use crate::object::Participant;
use crate::trace::MetricsRegistry;
use crate::txn::{Txn, TxnKind, TxnStatus};
use atomicity_spec::{ActivityId, History, Timestamp};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Number of shards for the transaction table. Transactions map to shards
/// by id, so begin/commit/abort of distinct transactions rarely contend.
const TXN_SHARDS: usize = 16;

/// Which local atomicity property the system is run under.
///
/// The paper's central design rule is that **every object in a system must
/// satisfy the same local atomicity property** (§4); the protocol choice
/// is therefore made once, at the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Dynamic atomicity (§4.1): no timestamps; serialization order
    /// emerges from commit order; conflicts block.
    Dynamic,
    /// Static atomicity (§4.2): every transaction takes a timestamp at
    /// start; conflicts with already-returned results abort.
    Static,
    /// Hybrid atomicity (§4.3): updates run dynamically and take
    /// timestamps at commit; read-only transactions take timestamps at
    /// start and read committed versions without interfering.
    Hybrid,
}

/// The transaction manager.
///
/// Creates transactions, assigns timestamps per the chosen [`Protocol`],
/// drives the two-phase commit across participants, arbitrates deadlocks,
/// and records every commit/abort into the shared [`HistoryLog`].
///
/// Cloning is cheap and yields a handle to the **same** manager (workload
/// threads each hold a clone).
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let t = mgr.begin();
/// assert!(t.is_active());
/// mgr.commit(t).unwrap();
/// ```
#[derive(Clone)]
pub struct TxnManager {
    inner: Arc<ManagerInner>,
}

pub(crate) struct ManagerInner {
    protocol: Protocol,
    policy: DeadlockPolicy,
    next_id: AtomicU32,
    clock: Arc<LamportClock>,
    log: HistoryLog,
    /// Serializes hybrid commit-timestamp assignment + version installation
    /// against read-only initiation, so a reader's timestamp cleanly
    /// partitions "committed before" from "committed after".
    commit_gate: Mutex<()>,
    /// The transaction table, sharded by [`ActivityId`] so the hot
    /// begin/commit/abort path contends only when two threads touch the
    /// same transaction (or collide in a shard), not on every lifecycle
    /// transition in the system.
    txns: Box<[Mutex<HashMap<ActivityId, TxnRecord>>]>,
    waits: Mutex<WaitGraph>,
    /// Fast-path flag mirroring "the wait graph has at least one waiter".
    /// Maintained under the `waits` lock; read without it by `finish`, so
    /// commits and aborts skip the wait-graph mutex entirely while nothing
    /// is blocked (the common case in low-contention workloads).
    has_waiters: AtomicBool,
    /// The observability sink shared by the manager and every object
    /// built against it. Disabled (no-op) unless configured through
    /// [`ManagerBuilder::metrics`].
    metrics: MetricsRegistry,
}

/// Configures and builds a [`TxnManager`].
///
/// ```
/// use atomicity_core::{DeadlockPolicy, MetricsRegistry, Protocol, TxnManager};
/// let mgr = TxnManager::builder(Protocol::Hybrid)
///     .policy(DeadlockPolicy::WaitDie)
///     .metrics(MetricsRegistry::new())
///     .build();
/// assert!(mgr.metrics().is_enabled());
/// ```
#[derive(Debug)]
pub struct ManagerBuilder {
    protocol: Protocol,
    policy: DeadlockPolicy,
    log: HistoryLog,
    metrics: MetricsRegistry,
}

impl ManagerBuilder {
    /// The deadlock policy (default: [`DeadlockPolicy::Detect`]).
    pub fn policy(mut self, policy: DeadlockPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The history log to record into (default: a fresh sharded log).
    pub fn log(mut self, log: HistoryLog) -> Self {
        self.log = log;
        self
    }

    /// The metrics registry to report into (default: disabled).
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builds the manager.
    pub fn build(self) -> TxnManager {
        TxnManager {
            inner: Arc::new(ManagerInner {
                protocol: self.protocol,
                policy: self.policy,
                next_id: AtomicU32::new(1),
                clock: Arc::new(LamportClock::new()),
                log: self.log,
                commit_gate: Mutex::new(()),
                txns: (0..TXN_SHARDS)
                    .map(|_| Mutex::new(HashMap::new()))
                    .collect(),
                waits: Mutex::new(WaitGraph::new()),
                has_waiters: AtomicBool::new(false),
                metrics: self.metrics,
            }),
        }
    }
}

struct TxnRecord {
    status: TxnStatus,
    participants: Vec<Arc<dyn Participant>>,
}

impl TxnManager {
    /// Creates a manager running the given protocol with the default
    /// deadlock policy ([`DeadlockPolicy::Detect`]).
    pub fn new(protocol: Protocol) -> Self {
        Self::with_policy(protocol, DeadlockPolicy::default())
    }

    /// Creates a manager with an explicit deadlock policy.
    pub fn with_policy(protocol: Protocol, policy: DeadlockPolicy) -> Self {
        Self::with_log(protocol, policy, HistoryLog::new())
    }

    /// Creates a manager recording into an explicitly configured log.
    ///
    /// Objects built against this manager obtain the log through
    /// [`TxnManager::log`], so this is the hook benchmarks use to compare
    /// recorder configurations (e.g. [`HistoryLog::coarse`] vs. the default
    /// sharded log in experiment E8).
    pub fn with_log(protocol: Protocol, policy: DeadlockPolicy, log: HistoryLog) -> Self {
        Self::builder(protocol).policy(policy).log(log).build()
    }

    /// Starts configuring a manager: protocol plus optional deadlock
    /// policy, history log, and metrics registry.
    pub fn builder(protocol: Protocol) -> ManagerBuilder {
        ManagerBuilder {
            protocol,
            policy: DeadlockPolicy::default(),
            log: HistoryLog::new(),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// The protocol this manager runs.
    pub fn protocol(&self) -> Protocol {
        self.inner.protocol
    }

    /// The shared metrics registry (objects are constructed with handles
    /// onto it; disabled unless configured via [`ManagerBuilder`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The shared history log (objects are constructed with a clone of it).
    pub fn log(&self) -> HistoryLog {
        self.inner.log.clone()
    }

    /// A snapshot of the history recorded so far.
    pub fn history(&self) -> History {
        self.inner.log.snapshot()
    }

    /// The manager's logical clock.
    pub fn clock(&self) -> Arc<LamportClock> {
        Arc::clone(&self.inner.clock)
    }

    /// Starts an update transaction.
    ///
    /// Under [`Protocol::Static`] a start timestamp is drawn from the
    /// clock; under the other protocols updates carry no start timestamp.
    pub fn begin(&self) -> Txn {
        let ts = match self.inner.protocol {
            Protocol::Static => Some(self.inner.clock.tick()),
            Protocol::Dynamic | Protocol::Hybrid => None,
        };
        self.make_txn(TxnKind::Update, ts)
    }

    /// Starts an update transaction with an explicit start timestamp
    /// (static protocol only — models skewed clocks, experiment E7).
    ///
    /// The caller is responsible for timestamp **uniqueness** across
    /// transactions; the clock is advanced past `ts` so subsequent
    /// automatic timestamps stay monotone.
    pub fn begin_at(&self, ts: Timestamp) -> Txn {
        self.inner.clock.observe(ts);
        self.make_txn(TxnKind::Update, Some(ts))
    }

    /// Starts a read-only transaction.
    ///
    /// Under [`Protocol::Hybrid`] the start timestamp is drawn while
    /// holding the commit gate, so it falls strictly between two update
    /// commits; under [`Protocol::Static`] it is an ordinary start
    /// timestamp; under [`Protocol::Dynamic`] read-only transactions are
    /// indistinguishable from updates (the information is unused — §4.3.3).
    pub fn begin_read_only(&self) -> Txn {
        let ts = match self.inner.protocol {
            Protocol::Static => Some(self.inner.clock.tick()),
            Protocol::Hybrid => {
                let _gate = self.inner.commit_gate.lock();
                Some(self.inner.clock.tick())
            }
            Protocol::Dynamic => None,
        };
        self.make_txn(TxnKind::ReadOnly, ts)
    }

    /// Starts a read-only transaction at an explicit timestamp
    /// (time-travel reads under hybrid or static; uniqueness is the
    /// caller's responsibility).
    pub fn begin_read_only_at(&self, ts: Timestamp) -> Txn {
        self.inner.clock.observe(ts);
        self.make_txn(TxnKind::ReadOnly, Some(ts))
    }

    fn make_txn(&self, kind: TxnKind, start_ts: Option<Timestamp>) -> Txn {
        let id = ActivityId::new(self.inner.next_id.fetch_add(1, Ordering::SeqCst));
        self.inner.txn_shard(id).lock().insert(
            id,
            TxnRecord {
                status: TxnStatus::Active,
                participants: Vec::new(),
            },
        );
        self.inner.metrics.txn_begun(id);
        Txn {
            id,
            kind,
            start_ts,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Commits `txn`: prepares every participant, assigns the commit
    /// timestamp when the protocol calls for one, installs effects, and
    /// records commit events.
    ///
    /// Returns the commit timestamp for hybrid updates, the start
    /// timestamp for static transactions, `None` otherwise.
    ///
    /// # Errors
    ///
    /// - [`TxnError::NotActive`] if the transaction already completed.
    /// - [`TxnError::PrepareFailed`] if a participant vetoed; the
    ///   transaction has then been aborted at every participant.
    pub fn commit(&self, txn: Txn) -> Result<Option<Timestamp>, TxnError> {
        let id = txn.id;
        let participants = {
            let mut shard = self.inner.txn_shard(id).lock();
            let rec = shard.get_mut(&id).ok_or(TxnError::NotActive { txn: id })?;
            if rec.status != TxnStatus::Active {
                return Err(TxnError::NotActive { txn: id });
            }
            rec.participants.clone()
        };
        let sw = self.inner.metrics.stopwatch();

        // Phase 1: prepare.
        self.inner.metrics.txn_prepare(id);
        for p in &participants {
            if let Err(_veto) = p.prepare(id) {
                self.finish(id, &participants, TxnStatus::Aborted, None);
                self.inner
                    .metrics
                    .txn_aborted(id, Some(crate::AbortReason::PrepareFailed));
                return Err(TxnError::PrepareFailed {
                    txn: id,
                    object: p.object_id(),
                });
            }
        }

        // Phase 2: install, with a commit timestamp where required.
        let commit_ts = match (self.inner.protocol, txn.kind) {
            (Protocol::Hybrid, TxnKind::Update) => {
                // The gate's invariant is only about timestamp assignment
                // and version installation racing read-only initiation, so
                // the critical section is exactly that: tick + installs.
                // Record bookkeeping (status, wait edges) happens after the
                // gate is released.
                let ts = {
                    let _gate = self.inner.commit_gate.lock();
                    let ts = self.inner.clock.tick();
                    for p in &participants {
                        p.commit(id, Some(ts));
                    }
                    ts
                };
                self.complete(id, TxnStatus::Committed);
                Some(ts)
            }
            _ => {
                self.finish(id, &participants, TxnStatus::Committed, None);
                txn.start_ts
            }
        };
        self.inner.metrics.txn_committed(id, sw.elapsed_ns());
        Ok(commit_ts)
    }

    /// Aborts `txn`, discarding its effects at every participant and
    /// recording abort events. Aborting a completed transaction is a
    /// no-op.
    pub fn abort(&self, txn: Txn) {
        let id = txn.id;
        let participants = {
            let mut shard = self.inner.txn_shard(id).lock();
            match shard.get_mut(&id) {
                Some(rec) if rec.status == TxnStatus::Active => rec.participants.clone(),
                _ => return,
            }
        };
        self.finish(id, &participants, TxnStatus::Aborted, None);
        self.inner.metrics.txn_aborted(id, None);
    }

    /// Applies the final status at every participant and updates records.
    fn finish(
        &self,
        id: ActivityId,
        participants: &[Arc<dyn Participant>],
        status: TxnStatus,
        ts: Option<Timestamp>,
    ) {
        for p in participants {
            match status {
                TxnStatus::Committed => p.commit(id, ts),
                TxnStatus::Aborted => p.abort(id),
                TxnStatus::Active => unreachable!("finish with Active status"),
            }
        }
        self.complete(id, status);
    }

    /// Final record bookkeeping: status transition and wake-up of waiters.
    ///
    /// When nothing is blocked (`has_waiters` false) the wait-graph lock is
    /// skipped entirely. The flag is maintained under the `waits` lock; the
    /// unlocked read here can race a waiter inserting its first edge, in
    /// which case that waiter's timed wait simply expires and it re-checks
    /// the (now completed) holder — the same bounded retry that already
    /// backstops the status-check/edge-insert race in the engines.
    fn complete(&self, id: ActivityId, status: TxnStatus) {
        if let Some(rec) = self.inner.txn_shard(id).lock().get_mut(&id) {
            rec.status = status;
        }
        if self.inner.has_waiters.load(Ordering::SeqCst) {
            let mut waits = self.inner.waits.lock();
            waits.clear_target(id);
            self.inner
                .has_waiters
                .store(waits.waiter_count() > 0, Ordering::SeqCst);
        }
    }

    /// The status of a transaction, if known.
    pub fn status(&self, id: ActivityId) -> Option<TxnStatus> {
        self.inner.status(id)
    }

    /// Number of transactions currently blocked in waits.
    pub fn blocked_count(&self) -> usize {
        self.inner.waits.lock().waiter_count()
    }
}

impl std::fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnManager")
            .field("protocol", &self.inner.protocol)
            .field("policy", &self.inner.policy)
            .finish()
    }
}

impl ManagerInner {
    /// The transaction-table shard holding `id`'s record.
    fn txn_shard(&self, id: ActivityId) -> &Mutex<HashMap<ActivityId, TxnRecord>> {
        &self.txns[id.raw() as usize % TXN_SHARDS]
    }

    pub(crate) fn status(&self, id: ActivityId) -> Option<TxnStatus> {
        self.txn_shard(id).lock().get(&id).map(|r| r.status)
    }

    pub(crate) fn register_participant(&self, id: ActivityId, p: Arc<dyn Participant>) {
        let mut shard = self.txn_shard(id).lock();
        if let Some(rec) = shard.get_mut(&id) {
            let oid = p.object_id();
            if !rec.participants.iter().any(|q| q.object_id() == oid) {
                rec.participants.push(p);
            }
        }
    }

    pub(crate) fn request_wait(
        &self,
        waiter: ActivityId,
        holders: &std::collections::BTreeSet<ActivityId>,
    ) -> WaitDecision {
        // Never wait on transactions that already completed: their effects
        // are final, waiting on them cannot help.
        let live: std::collections::BTreeSet<ActivityId> = holders
            .iter()
            .filter(|h| {
                self.txn_shard(**h)
                    .lock()
                    .get(h)
                    .map(|r| r.status == TxnStatus::Active)
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        if live.is_empty() {
            // Nothing live to wait on: let the caller retry immediately.
            return WaitDecision::Wait;
        }
        let mut waits = self.waits.lock();
        let decision = waits.request_wait(waiter, &live, self.policy);
        self.has_waiters
            .store(waits.waiter_count() > 0, Ordering::SeqCst);
        decision
    }

    pub(crate) fn clear_wait(&self, waiter: ActivityId) {
        let mut waits = self.waits.lock();
        waits.clear_waiter(waiter);
        self.has_waiters
            .store(waits.waiter_count() > 0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::ObjectId;
    use std::sync::atomic::AtomicUsize;

    /// A participant that counts protocol callbacks.
    #[derive(Default)]
    struct Probe {
        prepared: AtomicUsize,
        committed: AtomicUsize,
        aborted: AtomicUsize,
        veto: bool,
    }

    impl Participant for Probe {
        fn object_id(&self) -> ObjectId {
            ObjectId::new(1)
        }

        fn prepare(&self, txn: ActivityId) -> Result<(), TxnError> {
            self.prepared.fetch_add(1, Ordering::SeqCst);
            if self.veto {
                Err(TxnError::PrepareFailed {
                    txn,
                    object: self.object_id(),
                })
            } else {
                Ok(())
            }
        }

        fn commit(&self, _txn: ActivityId, _ts: Option<Timestamp>) {
            self.committed.fetch_add(1, Ordering::SeqCst);
        }

        fn abort(&self, _txn: ActivityId) {
            self.aborted.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn commit_runs_two_phases() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let probe = Arc::new(Probe::default());
        let t = mgr.begin();
        t.register(Arc::clone(&probe) as Arc<dyn Participant>);
        let id = t.id();
        assert_eq!(mgr.commit(t).unwrap(), None);
        assert_eq!(probe.prepared.load(Ordering::SeqCst), 1);
        assert_eq!(probe.committed.load(Ordering::SeqCst), 1);
        assert_eq!(mgr.status(id), Some(TxnStatus::Committed));
    }

    #[test]
    fn veto_aborts_everywhere() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let probe = Arc::new(Probe {
            veto: true,
            ..Probe::default()
        });
        let t = mgr.begin();
        t.register(Arc::clone(&probe) as Arc<dyn Participant>);
        let id = t.id();
        let err = mgr.commit(t).unwrap_err();
        assert!(matches!(err, TxnError::PrepareFailed { .. }));
        assert_eq!(probe.aborted.load(Ordering::SeqCst), 1);
        assert_eq!(probe.committed.load(Ordering::SeqCst), 0);
        assert_eq!(mgr.status(id), Some(TxnStatus::Aborted));
    }

    #[test]
    fn registration_is_idempotent_per_object() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let probe = Arc::new(Probe::default());
        let t = mgr.begin();
        t.register(Arc::clone(&probe) as Arc<dyn Participant>);
        t.register(Arc::clone(&probe) as Arc<dyn Participant>);
        mgr.commit(t).unwrap();
        assert_eq!(probe.committed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn static_protocol_assigns_start_timestamps() {
        let mgr = TxnManager::new(Protocol::Static);
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        let (a, b) = (t1.start_ts().unwrap(), t2.start_ts().unwrap());
        assert!(b > a);
        assert_eq!(mgr.commit(t2).unwrap(), Some(b));
        mgr.abort(t1);
    }

    #[test]
    fn hybrid_updates_get_commit_timestamps_in_order() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let t1 = mgr.begin();
        assert_eq!(t1.start_ts(), None);
        let t2 = mgr.begin();
        let ts1 = mgr.commit(t1).unwrap().unwrap();
        let r = mgr.begin_read_only();
        let tr = r.start_ts().unwrap();
        let ts2 = mgr.commit(t2).unwrap().unwrap();
        assert!(ts1 < tr && tr < ts2);
        mgr.commit(r).unwrap();
    }

    #[test]
    fn explicit_timestamps_advance_clock() {
        let mgr = TxnManager::new(Protocol::Static);
        let t = mgr.begin_at(500);
        assert_eq!(t.start_ts(), Some(500));
        mgr.abort(t);
        let t2 = mgr.begin();
        assert!(t2.start_ts().unwrap() > 500);
        mgr.abort(t2);
    }

    #[test]
    fn double_commit_rejected() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let t = mgr.begin();
        let id = t.id();
        mgr.commit(t).unwrap();
        // Forge a second handle to simulate a stale user.
        let stale = Txn {
            id,
            kind: TxnKind::Update,
            start_ts: None,
            inner: Arc::clone(&mgr.inner),
        };
        assert!(matches!(mgr.commit(stale), Err(TxnError::NotActive { .. })));
    }

    #[test]
    fn abort_after_commit_is_noop() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let probe = Arc::new(Probe::default());
        let t = mgr.begin();
        t.register(Arc::clone(&probe) as Arc<dyn Participant>);
        let id = t.id();
        mgr.commit(t).unwrap();
        let stale = Txn {
            id,
            kind: TxnKind::Update,
            start_ts: None,
            inner: Arc::clone(&mgr.inner),
        };
        mgr.abort(stale);
        assert_eq!(probe.aborted.load(Ordering::SeqCst), 0);
        assert_eq!(mgr.status(id), Some(TxnStatus::Committed));
    }

    #[test]
    fn builder_wires_metrics_through_lifecycle() {
        let mgr = TxnManager::builder(Protocol::Dynamic)
            .metrics(MetricsRegistry::new())
            .build();
        assert!(mgr.metrics().is_enabled());
        let t1 = mgr.begin();
        mgr.commit(t1).unwrap();
        let t2 = mgr.begin();
        mgr.abort(t2);
        let probe = Arc::new(Probe {
            veto: true,
            ..Probe::default()
        });
        let t3 = mgr.begin();
        t3.register(Arc::clone(&probe) as Arc<dyn Participant>);
        assert!(mgr.commit(t3).is_err());
        let snap = mgr.metrics().snapshot();
        assert_eq!(snap.txns_begun, 3);
        assert_eq!(snap.txns_committed, 1);
        assert_eq!(snap.txns_aborted, 2);
        assert_eq!(snap.abort_reasons["prepare_failed"], 1);
        assert_eq!(snap.commit_ns.count, 1);
        use crate::trace::TraceKind;
        let kinds: Vec<TraceKind> = mgr
            .metrics()
            .trace_events()
            .records
            .iter()
            .map(|r| r.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Begin,
                TraceKind::Prepare,
                TraceKind::Commit,
                TraceKind::Begin,
                TraceKind::Abort,
                TraceKind::Begin,
                TraceKind::Prepare,
                TraceKind::Abort,
            ]
        );
    }

    #[test]
    fn default_manager_metrics_are_disabled() {
        let mgr = TxnManager::new(Protocol::Static);
        assert!(!mgr.metrics().is_enabled());
        let t = mgr.begin();
        mgr.commit(t).unwrap();
        assert_eq!(mgr.metrics().snapshot().txns_begun, 0);
    }

    #[test]
    fn waits_on_dead_transactions_are_skipped() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        let id1 = t1.id();
        mgr.commit(t1).unwrap();
        // t2 asks to wait on the committed t1: allowed (immediate retry).
        let holders = [id1].into_iter().collect();
        assert_eq!(t2.request_wait(&holders), WaitDecision::Wait);
        assert_eq!(mgr.blocked_count(), 0);
        mgr.abort(t2);
    }
}
