//! The atomic key/value map — substrate for multi-account workloads.

use crate::{expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::KvMapSpec;
use atomicity_spec::{op, ObjectId, Value};
use std::sync::Arc;

/// An atomic map from integer keys to integer values: `put`, `get`,
/// `remove`, `add` (read-modify-write increment), `size`, `sum`.
///
/// `add` is the commutative update the banking experiments rely on: two
/// `add`s to any keys commute (their results are independent of order
/// given the same base state **only when disjoint** — the engine checks
/// the actual state), while `sum` is the full-scan audit of §4.3.3.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::AtomicMap;
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Hybrid);
/// let m = AtomicMap::new(ObjectId::new(1), &mgr);
/// let t = mgr.begin();
/// m.put(&t, 1, 100)?;
/// assert_eq!(m.add(&t, 1, -30)?, 70);
/// assert_eq!(m.sum(&t)?, 70);
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicMap {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicMap {
    /// Creates an empty map under the manager's protocol.
    pub fn new(id: ObjectId, mgr: &TxnManager) -> Self {
        AtomicMap {
            id,
            obj: object_for_protocol(id, KvMapSpec::new(), mgr),
        }
    }

    /// Creates a map with initial entries.
    pub fn with_initial(
        id: ObjectId,
        mgr: &TxnManager,
        entries: impl IntoIterator<Item = (i64, i64)>,
    ) -> Self {
        AtomicMap {
            id,
            obj: object_for_protocol(id, KvMapSpec::with_initial(entries), mgr),
        }
    }

    /// The map's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Sets `key` to `value`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn put(&self, txn: &Txn, key: i64, value: i64) -> Result<Option<i64>, TxnError> {
        let v = self.obj.invoke(txn, op("put", [key, value]))?;
        self.optional_int(v)
    }

    /// Reads the value at `key`.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn get(&self, txn: &Txn, key: i64) -> Result<Option<i64>, TxnError> {
        let v = self.obj.invoke(txn, op("get", [key]))?;
        self.optional_int(v)
    }

    /// Removes `key`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn remove(&self, txn: &Txn, key: i64) -> Result<Option<i64>, TxnError> {
        let v = self.obj.invoke(txn, op("remove", [key]))?;
        self.optional_int(v)
    }

    /// Adds `delta` to the value at `key` (missing keys count as 0),
    /// returning the new value.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn add(&self, txn: &Txn, key: i64, delta: i64) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("add", [key, delta]))?;
        expect_int(v, self.id)
    }

    /// The number of entries.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn size(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("size", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }

    /// The sum of all values — the audit scan of §4.3.3.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn sum(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("sum", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }

    fn optional_int(&self, v: Value) -> Result<Option<i64>, TxnError> {
        Ok(match v {
            Value::Nil => None,
            other => Some(expect_int(other, self.id)?),
        })
    }
}

impl std::fmt::Debug for AtomicMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicMap").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::{is_dynamic_atomic, is_hybrid_atomic};
    use atomicity_spec::SystemSpec;

    #[test]
    fn crud_round_trip() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let m = AtomicMap::new(ObjectId::new(1), &mgr);
        let t = mgr.begin();
        assert_eq!(m.put(&t, 1, 10).unwrap(), None);
        assert_eq!(m.get(&t, 1).unwrap(), Some(10));
        assert_eq!(m.put(&t, 1, 20).unwrap(), Some(10));
        assert_eq!(m.remove(&t, 1).unwrap(), Some(20));
        assert_eq!(m.get(&t, 1).unwrap(), None);
        mgr.commit(t).unwrap();
    }

    #[test]
    fn adds_to_different_keys_run_concurrently() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let m = AtomicMap::with_initial(ObjectId::new(1), &mgr, [(1, 100), (2, 100)]);
        let a = mgr.begin();
        let b = mgr.begin();
        assert_eq!(m.add(&a, 1, 10).unwrap(), 110);
        assert_eq!(m.add(&b, 2, -10).unwrap(), 90); // concurrent
        mgr.commit(b).unwrap();
        mgr.commit(a).unwrap();
        let spec = SystemSpec::new().with_object(
            ObjectId::new(1),
            KvMapSpec::with_initial([(1, 100), (2, 100)]),
        );
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn hybrid_audit_sum_is_consistent() {
        // A transfer in flight must never be half-visible to the audit.
        let mgr = TxnManager::new(Protocol::Hybrid);
        let m = AtomicMap::with_initial(ObjectId::new(1), &mgr, [(1, 100), (2, 100)]);
        let transfer = mgr.begin();
        m.add(&transfer, 1, -40).unwrap();
        let audit = mgr.begin_read_only();
        assert_eq!(
            m.sum(&audit).unwrap(),
            200,
            "audit must see a consistent total"
        );
        m.add(&transfer, 2, 40).unwrap();
        mgr.commit(transfer).unwrap();
        mgr.commit(audit).unwrap();
        let spec = SystemSpec::new().with_object(
            ObjectId::new(1),
            KvMapSpec::with_initial([(1, 100), (2, 100)]),
        );
        assert!(is_hybrid_atomic(&mgr.history(), &spec));
    }
}
