//! The atomic semiqueue — the non-deterministic weak queue of
//! [Weihl & Liskov 83].

use crate::{expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::SemiqueueSpec;
use atomicity_spec::{op, ObjectId, Value};
use std::sync::Arc;

/// An atomic weak queue: `enq`, `deq` (returns *some* present element),
/// `count`.
///
/// The paper argues that non-determinism is needed "to achieve a
/// reasonable level of concurrency" (§1): because `deq` may return *any*
/// present element, two dequeuing transactions can both be admitted
/// concurrently whenever the queue holds enough elements — impossible for
/// a FIFO queue, whose dequeue order is forced.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::AtomicSemiqueue;
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let q = AtomicSemiqueue::new(ObjectId::new(1), &mgr);
/// let t = mgr.begin();
/// q.enq(&t, 7)?;
/// assert_eq!(q.deq(&t)?, Some(7));
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicSemiqueue {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicSemiqueue {
    /// Creates an empty semiqueue under the manager's protocol.
    pub fn new(id: ObjectId, mgr: &TxnManager) -> Self {
        AtomicSemiqueue {
            id,
            obj: object_for_protocol(id, SemiqueueSpec::new(), mgr),
        }
    }

    /// The semiqueue's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Adds `element`.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn enq(&self, txn: &Txn, element: i64) -> Result<(), TxnError> {
        self.obj.invoke(txn, op("enq", [element])).map(|_| ())
    }

    /// Removes and returns *some* element, or `None` when empty.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn deq(&self, txn: &Txn) -> Result<Option<i64>, TxnError> {
        let v = self.obj.invoke(txn, op("deq", [] as [i64; 0]))?;
        Ok(match v {
            Value::Nil => None,
            other => Some(expect_int(other, self.id)?),
        })
    }

    /// The number of queued elements.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn count(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("count", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }
}

impl std::fmt::Debug for AtomicSemiqueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicSemiqueue")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::is_dynamic_atomic;
    use atomicity_spec::SystemSpec;

    #[test]
    fn concurrent_dequeues_with_enough_elements() {
        // Two distinct elements, two concurrent dequeuers: both admitted —
        // the non-determinism pays off exactly as the paper promises.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let q = AtomicSemiqueue::new(ObjectId::new(1), &mgr);
        let setup = mgr.begin();
        q.enq(&setup, 1).unwrap();
        q.enq(&setup, 2).unwrap();
        mgr.commit(setup).unwrap();

        let a = mgr.begin();
        let b = mgr.begin();
        let va = q.deq(&a).unwrap().unwrap();
        let vb = q.deq(&b).unwrap().unwrap(); // concurrent, no blocking
        assert_ne!(va, vb, "concurrent dequeues must take distinct elements");
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        let spec = SystemSpec::new().with_object(ObjectId::new(1), SemiqueueSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn empty_deq_is_none() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let q = AtomicSemiqueue::new(ObjectId::new(1), &mgr);
        let t = mgr.begin();
        assert_eq!(q.deq(&t).unwrap(), None);
        mgr.commit(t).unwrap();
    }

    #[test]
    fn count_tracks_multiset_size() {
        let mgr = TxnManager::new(Protocol::Static);
        let q = AtomicSemiqueue::new(ObjectId::new(1), &mgr);
        let t = mgr.begin();
        q.enq(&t, 5).unwrap();
        q.enq(&t, 5).unwrap();
        assert_eq!(q.count(&t).unwrap(), 2);
        assert_eq!(q.deq(&t).unwrap(), Some(5));
        assert_eq!(q.count(&t).unwrap(), 1);
        mgr.commit(t).unwrap();
    }
}
