//! Typed atomic abstract data types over the atomicity engines.
//!
//! Each type here wraps one of the engines from [`atomicity_core`] behind
//! a strongly-typed interface: [`AtomicCounter`], [`AtomicSet`],
//! [`AtomicQueue`], [`AtomicAccount`], [`AtomicMap`], [`AtomicRegister`],
//! [`AtomicBuffer`], the escrow-style [`AtomicEscrow`] (whose conflict
//! table is machine-derived by `atomicity-lint`), and the non-deterministic
//! [`AtomicSemiqueue`]. Constructors select the
//! engine matching the manager's [`atomicity_core::Protocol`] — the
//! paper's rule that every object in a system satisfies the *same* local
//! atomicity property (§4) is thus upheld by construction.
//!
//! # Example
//!
//! ```
//! use atomicity_core::{TxnManager, Protocol};
//! use atomicity_adts::AtomicAccount;
//! use atomicity_spec::ObjectId;
//!
//! let mgr = TxnManager::new(Protocol::Hybrid);
//! let acct = AtomicAccount::new(ObjectId::new(1), &mgr);
//! let t = mgr.begin();
//! acct.deposit(&t, 100)?;
//! assert_eq!(acct.balance(&t)?, 100);
//! mgr.commit(t)?;
//! # Ok::<(), atomicity_core::TxnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod buffer;
mod counter;
mod escrow;
mod map;
mod queue;
mod register;
mod semiqueue;
mod set;

pub use account::{AtomicAccount, WithdrawOutcome};
pub use buffer::{AtomicBuffer, PutOutcome};
pub use counter::AtomicCounter;
pub use escrow::{AtomicEscrow, DebitOutcome};
pub use map::AtomicMap;
pub use queue::AtomicQueue;
pub use register::AtomicRegister;
pub use semiqueue::AtomicSemiqueue;
pub use set::AtomicSet;

use atomicity_core::{
    AtomicObject, DynamicObject, HybridObject, Protocol, StaticObject, TxnError, TxnManager,
};
use atomicity_spec::{ObjectId, SequentialSpec, Value};
use std::sync::Arc;

/// Builds an atomic object for `spec` using the engine that matches the
/// manager's protocol.
///
/// This is the extension point for defining new atomic ADTs: implement a
/// [`SequentialSpec`] and wrap the returned object behind typed methods.
pub fn object_for_protocol<S: SequentialSpec>(
    id: ObjectId,
    spec: S,
    mgr: &TxnManager,
) -> Arc<dyn AtomicObject> {
    match mgr.protocol() {
        Protocol::Dynamic => DynamicObject::new(id, spec, mgr) as Arc<dyn AtomicObject>,
        Protocol::Static => StaticObject::new(id, spec, mgr) as Arc<dyn AtomicObject>,
        Protocol::Hybrid => HybridObject::new(id, spec, mgr) as Arc<dyn AtomicObject>,
    }
}

/// Converts an engine result to `i64`, flagging impossible shapes.
pub(crate) fn expect_int(value: Value, object: ObjectId) -> Result<i64, TxnError> {
    value.as_int().ok_or_else(|| TxnError::ProtocolMismatch {
        object,
        detail: format!("expected integer result, got {value}"),
    })
}

/// Converts an engine result to `bool`, flagging impossible shapes.
pub(crate) fn expect_bool(value: Value, object: ObjectId) -> Result<bool, TxnError> {
    value.as_bool().ok_or_else(|| TxnError::ProtocolMismatch {
        object,
        detail: format!("expected boolean result, got {value}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::op;
    use atomicity_spec::specs::CounterSpec;

    #[test]
    fn object_for_protocol_matches_manager() {
        for protocol in [Protocol::Dynamic, Protocol::Static, Protocol::Hybrid] {
            let mgr = TxnManager::new(protocol);
            let obj = object_for_protocol(ObjectId::new(1), CounterSpec::new(), &mgr);
            let t = mgr.begin();
            let v = obj.invoke(&t, op("increment", [] as [i64; 0])).unwrap();
            assert_eq!(v, Value::from(1));
            mgr.commit(t).unwrap();
        }
    }

    #[test]
    fn expect_helpers_reject_mismatches() {
        let x = ObjectId::new(9);
        assert_eq!(expect_int(Value::from(3), x).unwrap(), 3);
        assert!(expect_int(Value::from(true), x).is_err());
        assert!(expect_bool(Value::from(true), x).unwrap());
        assert!(expect_bool(Value::from(1), x).is_err());
    }
}
