//! The atomic bounded buffer.

use crate::{expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::BoundedBufferSpec;
use atomicity_spec::{op, ObjectId, Value};
use std::sync::Arc;

/// The outcome of a `put`: stored, or rejected because the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PutOutcome {
    /// The element was stored.
    Stored,
    /// The buffer was full; nothing changed.
    Full,
}

impl PutOutcome {
    /// Whether the element was stored.
    pub fn is_stored(self) -> bool {
        matches!(self, PutOutcome::Stored)
    }
}

/// An atomic bounded buffer: `put` (capacity-checked), `take`
/// (non-deterministic removal), `count`.
///
/// The producer-side mirror of [`crate::AtomicAccount`]: under the
/// dynamic and hybrid engines, concurrent `put`s are admitted exactly
/// when the remaining capacity covers all of them in every order.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::{AtomicBuffer, PutOutcome};
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let buf = AtomicBuffer::with_capacity(ObjectId::new(1), &mgr, 2);
/// let t = mgr.begin();
/// assert_eq!(buf.put(&t, 7)?, PutOutcome::Stored);
/// assert_eq!(buf.put(&t, 8)?, PutOutcome::Stored);
/// assert_eq!(buf.put(&t, 9)?, PutOutcome::Full);
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicBuffer {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicBuffer {
    /// Creates a buffer with the given capacity under the manager's
    /// protocol.
    pub fn with_capacity(id: ObjectId, mgr: &TxnManager, capacity: u32) -> Self {
        AtomicBuffer {
            id,
            obj: object_for_protocol(id, BoundedBufferSpec::with_capacity(capacity), mgr),
        }
    }

    /// The buffer's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Stores `element`, or reports [`PutOutcome::Full`].
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn put(&self, txn: &Txn, element: i64) -> Result<PutOutcome, TxnError> {
        let v = self.obj.invoke(txn, op("put", [element]))?;
        Ok(if v == Value::ok() {
            PutOutcome::Stored
        } else {
            PutOutcome::Full
        })
    }

    /// Removes and returns *some* element, or `None` when empty.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn take(&self, txn: &Txn) -> Result<Option<i64>, TxnError> {
        let v = self.obj.invoke(txn, op("take", [] as [i64; 0]))?;
        Ok(match v {
            Value::Nil => None,
            other => Some(expect_int(other, self.id)?),
        })
    }

    /// The number of buffered elements.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn count(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("count", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }
}

impl std::fmt::Debug for AtomicBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBuffer")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::is_dynamic_atomic;
    use atomicity_spec::SystemSpec;

    #[test]
    fn concurrent_puts_with_room_are_admitted() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let buf = AtomicBuffer::with_capacity(ObjectId::new(1), &mgr, 4);
        let a = mgr.begin();
        let b = mgr.begin();
        assert_eq!(buf.put(&a, 1).unwrap(), PutOutcome::Stored);
        assert_eq!(buf.put(&b, 2).unwrap(), PutOutcome::Stored); // concurrent
        mgr.commit(b).unwrap();
        mgr.commit(a).unwrap();
        let spec =
            SystemSpec::new().with_object(ObjectId::new(1), BoundedBufferSpec::with_capacity(4));
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn tight_capacity_blocks_until_commit() {
        // Capacity 1: the second put must wait for the first to resolve,
        // then observe full.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let buf = Arc::new(AtomicBuffer::with_capacity(ObjectId::new(1), &mgr, 1));
        let a = mgr.begin();
        assert_eq!(buf.put(&a, 1).unwrap(), PutOutcome::Stored);
        let buf2 = Arc::clone(&buf);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let b = mgr2.begin();
            let out = buf2.put(&b, 2).unwrap();
            mgr2.commit(b).unwrap();
            out
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        mgr.commit(a).unwrap();
        assert_eq!(h.join().unwrap(), PutOutcome::Full);
        let spec =
            SystemSpec::new().with_object(ObjectId::new(1), BoundedBufferSpec::with_capacity(1));
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn take_round_trip_all_protocols() {
        for protocol in [Protocol::Dynamic, Protocol::Static, Protocol::Hybrid] {
            let mgr = TxnManager::new(protocol);
            let buf = AtomicBuffer::with_capacity(ObjectId::new(1), &mgr, 3);
            let t = mgr.begin();
            buf.put(&t, 5).unwrap();
            assert_eq!(buf.count(&t).unwrap(), 1);
            assert_eq!(buf.take(&t).unwrap(), Some(5));
            assert_eq!(buf.take(&t).unwrap(), None);
            mgr.commit(t).unwrap();
        }
    }
}
