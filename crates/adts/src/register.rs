//! The atomic read/write register — the classical degenerate case.

use crate::{expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::RegisterSpec;
use atomicity_spec::{op, ObjectId};
use std::sync::Arc;

/// An atomic single-cell register: `read` and `write`.
///
/// On this object every type-specific protocol collapses to its classical
/// read/write ancestor: the dynamic engine behaves like strict two-phase
/// locking, the static engine like Reed's multi-version scheme. Useful for
/// apples-to-apples comparisons with the baselines.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::AtomicRegister;
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let r = AtomicRegister::new(ObjectId::new(1), &mgr);
/// let t = mgr.begin();
/// r.write(&t, 42)?;
/// assert_eq!(r.read(&t)?, 42);
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicRegister {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicRegister {
    /// Creates a register (initially 0) under the manager's protocol.
    pub fn new(id: ObjectId, mgr: &TxnManager) -> Self {
        Self::with_initial(id, mgr, 0)
    }

    /// Creates a register with a given initial value.
    pub fn with_initial(id: ObjectId, mgr: &TxnManager, value: i64) -> Self {
        AtomicRegister {
            id,
            obj: object_for_protocol(id, RegisterSpec::with_initial(value), mgr),
        }
    }

    /// The register's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Overwrites the register.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn write(&self, txn: &Txn, value: i64) -> Result<(), TxnError> {
        self.obj.invoke(txn, op("write", [value])).map(|_| ())
    }

    /// Reads the register.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn read(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("read", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }
}

impl std::fmt::Debug for AtomicRegister {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicRegister")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;

    #[test]
    fn read_your_writes() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let r = AtomicRegister::new(ObjectId::new(1), &mgr);
        let t = mgr.begin();
        assert_eq!(r.read(&t).unwrap(), 0);
        r.write(&t, 5).unwrap();
        assert_eq!(r.read(&t).unwrap(), 5);
        mgr.commit(t).unwrap();
    }

    #[test]
    fn read_then_write_conflicts_like_two_phase_locking() {
        // a reads 0 then writes: a's observed 0 is invalidated if b's
        // write is ordered first, so b blocks until a commits — the
        // classical r/w conflict, recovered as a special case.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let r = Arc::new(AtomicRegister::new(ObjectId::new(1), &mgr));
        let a = mgr.begin();
        assert_eq!(r.read(&a).unwrap(), 0);
        r.write(&a, 1).unwrap();
        let r2 = Arc::clone(&r);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let b = mgr2.begin();
            r2.write(&b, 2).unwrap();
            mgr2.commit(b).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        mgr.commit(a).unwrap();
        h.join().unwrap();
        let t = mgr.begin();
        assert_eq!(r.read(&t).unwrap(), 2);
        mgr.commit(t).unwrap();
    }

    #[test]
    fn initial_value_respected() {
        let mgr = TxnManager::new(Protocol::Static);
        let r = AtomicRegister::with_initial(ObjectId::new(1), &mgr, 9);
        let t = mgr.begin();
        assert_eq!(r.read(&t).unwrap(), 9);
        mgr.commit(t).unwrap();
    }
}
