//! The atomic escrow counter (decrement-if-at-least reservations).

use crate::{expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::EscrowCounterSpec;
use atomicity_spec::{op, ObjectId, Value};
use std::sync::Arc;

/// The outcome of a debit: the operation terminates normally or refuses,
/// it does not error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DebitOutcome {
    /// The requested quantity was debited.
    Debited,
    /// The debit was refused; nothing changed. Refusal is always a
    /// permissible outcome of the escrow specification, so a refused debit
    /// never constrains serialization order.
    Refused,
}

impl DebitOutcome {
    /// Whether the debit succeeded.
    pub fn is_debited(self) -> bool {
        matches!(self, DebitOutcome::Debited)
    }
}

/// An atomic escrow counter: `credit`, `debit` (may refuse), `available`.
///
/// Because refusal is *always* replayable, credits and debits commute in
/// every state — the synthesis pass derives this table entirely from
/// [`EscrowCounterSpec`], no hand-written conflict table exists for this
/// type. Under the dynamic engine a debit never blocks on a concurrent
/// credit: when the committed funds do not cover it, it degrades to
/// [`DebitOutcome::Refused`] instead of waiting.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::{AtomicEscrow, DebitOutcome};
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let esc = AtomicEscrow::new(ObjectId::new(1), &mgr);
/// let t = mgr.begin();
/// esc.credit(&t, 10)?;
/// assert_eq!(esc.debit(&t, 4)?, DebitOutcome::Debited);
/// assert_eq!(esc.debit(&t, 40)?, DebitOutcome::Refused);
/// assert_eq!(esc.available(&t)?, 6);
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicEscrow {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicEscrow {
    /// Creates an escrow counter with 0 available under the manager's
    /// protocol.
    pub fn new(id: ObjectId, mgr: &TxnManager) -> Self {
        Self::with_initial(id, mgr, 0)
    }

    /// Creates an escrow counter with a given initial quantity.
    pub fn with_initial(id: ObjectId, mgr: &TxnManager, available: i64) -> Self {
        AtomicEscrow {
            id,
            obj: object_for_protocol(id, EscrowCounterSpec::with_initial(available), mgr),
        }
    }

    /// The counter's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Credits `amount` (non-negative) into the escrow.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only; see
    /// [`AtomicObject::invoke`](atomicity_core::AtomicObject::invoke).
    pub fn credit(&self, txn: &Txn, amount: i64) -> Result<(), TxnError> {
        self.obj.invoke(txn, op("credit", [amount])).map(|_| ())
    }

    /// Debits `amount`, terminating normally or with
    /// [`DebitOutcome::Refused`].
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn debit(&self, txn: &Txn, amount: i64) -> Result<DebitOutcome, TxnError> {
        let v = self.obj.invoke(txn, op("debit", [amount]))?;
        Ok(if v == Value::ok() {
            DebitOutcome::Debited
        } else {
            DebitOutcome::Refused
        })
    }

    /// The quantity available as seen by `txn`.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn available(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("available", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }
}

impl std::fmt::Debug for AtomicEscrow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicEscrow")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::{is_dynamic_atomic, is_hybrid_atomic, is_static_atomic};
    use atomicity_spec::SystemSpec;

    fn spec() -> SystemSpec {
        SystemSpec::new().with_object(ObjectId::new(1), EscrowCounterSpec::new())
    }

    #[test]
    fn basic_flow_under_all_protocols() {
        for protocol in [Protocol::Dynamic, Protocol::Static, Protocol::Hybrid] {
            let mgr = TxnManager::new(protocol);
            let esc = AtomicEscrow::new(ObjectId::new(1), &mgr);
            let t = mgr.begin();
            esc.credit(&t, 10).unwrap();
            assert_eq!(esc.debit(&t, 4).unwrap(), DebitOutcome::Debited);
            assert_eq!(esc.debit(&t, 7).unwrap(), DebitOutcome::Refused);
            assert_eq!(esc.available(&t).unwrap(), 6);
            mgr.commit(t).unwrap();
            let h = mgr.history();
            let ok = match protocol {
                Protocol::Dynamic => is_dynamic_atomic(&h, &spec()),
                Protocol::Static => is_static_atomic(&h, &spec()),
                Protocol::Hybrid => is_hybrid_atomic(&h, &spec()),
            };
            assert!(ok, "{protocol:?} history fails its property");
        }
    }

    #[test]
    fn concurrent_credit_and_debit_are_admitted() {
        // The escrow discipline: a debit against insufficient *committed*
        // funds is refused rather than blocked, even while a concurrent
        // credit is in flight — refusal replays in every serialization
        // order, so the dynamic engine admits it immediately.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let esc = AtomicEscrow::with_initial(ObjectId::new(1), &mgr, 5);
        let creditor = mgr.begin();
        let debtor = mgr.begin();
        esc.credit(&creditor, 100).unwrap();
        // Committed funds are 5; the uncommitted credit may serialize after.
        assert_eq!(esc.debit(&debtor, 50).unwrap(), DebitOutcome::Refused);
        assert_eq!(esc.debit(&debtor, 5).unwrap(), DebitOutcome::Debited);
        mgr.commit(debtor).unwrap();
        mgr.commit(creditor).unwrap();
        let sys =
            SystemSpec::new().with_object(ObjectId::new(1), EscrowCounterSpec::with_initial(5));
        assert!(is_dynamic_atomic(&mgr.history(), &sys));
    }

    #[test]
    fn initial_quantity() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let esc = AtomicEscrow::with_initial(ObjectId::new(1), &mgr, 50);
        let t = mgr.begin();
        assert_eq!(esc.available(&t).unwrap(), 50);
        mgr.commit(t).unwrap();
    }
}
