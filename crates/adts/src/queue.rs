//! The atomic FIFO queue of §5.1.

use crate::{expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::FifoQueueSpec;
use atomicity_spec::{op, ObjectId, Value};
use std::sync::Arc;

/// An atomic FIFO queue of integers: `enqueue`, `dequeue`, `front`, `len`.
///
/// `dequeue` and `front` return `None` on an empty queue. Under the
/// dynamic and hybrid engines, *enqueues by different transactions
/// interleave freely* — the concurrency the scheduler model of Figure 5-1
/// cannot even express (§5.1).
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::AtomicQueue;
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let q = AtomicQueue::new(ObjectId::new(1), &mgr);
/// let t = mgr.begin();
/// q.enqueue(&t, 7)?;
/// assert_eq!(q.dequeue(&t)?, Some(7));
/// assert_eq!(q.dequeue(&t)?, None);
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicQueue {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicQueue {
    /// Creates an empty queue under the manager's protocol.
    pub fn new(id: ObjectId, mgr: &TxnManager) -> Self {
        AtomicQueue {
            id,
            obj: object_for_protocol(id, FifoQueueSpec::new(), mgr),
        }
    }

    /// The queue's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Appends `element` at the back.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn enqueue(&self, txn: &Txn, element: i64) -> Result<(), TxnError> {
        self.obj.invoke(txn, op("enqueue", [element])).map(|_| ())
    }

    /// Removes and returns the front element, or `None` when empty.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn dequeue(&self, txn: &Txn) -> Result<Option<i64>, TxnError> {
        let v = self.obj.invoke(txn, op("dequeue", [] as [i64; 0]))?;
        Ok(match v {
            Value::Nil => None,
            other => Some(expect_int(other, self.id)?),
        })
    }

    /// Peeks at the front element without removing it.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn front(&self, txn: &Txn) -> Result<Option<i64>, TxnError> {
        let v = self.obj.invoke(txn, op("front", [] as [i64; 0]))?;
        Ok(match v {
            Value::Nil => None,
            other => Some(expect_int(other, self.id)?),
        })
    }

    /// The number of queued elements.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn len(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("len", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }

    /// Whether the queue is empty, as seen by `txn`.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn is_empty(&self, txn: &Txn) -> Result<bool, TxnError> {
        Ok(self.len(txn)? == 0)
    }
}

impl std::fmt::Debug for AtomicQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicQueue").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::is_dynamic_atomic;
    use atomicity_spec::SystemSpec;

    #[test]
    fn fifo_order_across_transactions() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let q = AtomicQueue::new(ObjectId::new(1), &mgr);
        let t = mgr.begin();
        q.enqueue(&t, 1).unwrap();
        q.enqueue(&t, 2).unwrap();
        mgr.commit(t).unwrap();
        let t2 = mgr.begin();
        assert_eq!(q.front(&t2).unwrap(), Some(1));
        assert_eq!(q.dequeue(&t2).unwrap(), Some(1));
        assert_eq!(q.dequeue(&t2).unwrap(), Some(2));
        assert!(q.is_empty(&t2).unwrap());
        mgr.commit(t2).unwrap();
    }

    #[test]
    fn paper_interleaved_enqueues() {
        // The §5.1 counterexample, via the typed API.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let q = AtomicQueue::new(ObjectId::new(1), &mgr);
        let a = mgr.begin();
        let b = mgr.begin();
        q.enqueue(&a, 1).unwrap();
        q.enqueue(&b, 1).unwrap();
        q.enqueue(&a, 2).unwrap();
        q.enqueue(&b, 2).unwrap();
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        let c = mgr.begin();
        let drained: Vec<_> = (0..4).map(|_| q.dequeue(&c).unwrap().unwrap()).collect();
        assert_eq!(drained, vec![1, 2, 1, 2]);
        mgr.commit(c).unwrap();
        let spec = SystemSpec::new().with_object(ObjectId::new(1), FifoQueueSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn dequeue_blocks_on_uncommitted_enqueuer_when_order_matters() {
        // After a commits [1], b's uncommitted enqueue(9) and c's dequeue:
        // dequeue -> 1 is valid in both orders (b's enqueue goes to the
        // back), so it is admitted concurrently.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let q = AtomicQueue::new(ObjectId::new(1), &mgr);
        let a = mgr.begin();
        q.enqueue(&a, 1).unwrap();
        mgr.commit(a).unwrap();
        let b = mgr.begin();
        q.enqueue(&b, 9).unwrap();
        let c = mgr.begin();
        assert_eq!(q.dequeue(&c).unwrap(), Some(1));
        mgr.commit(c).unwrap();
        mgr.commit(b).unwrap();
        let spec = SystemSpec::new().with_object(ObjectId::new(1), FifoQueueSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }
}
