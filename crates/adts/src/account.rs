//! The atomic bank account of §5.1.

use crate::{expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::BankAccountSpec;
use atomicity_spec::{op, ObjectId, Value};
use std::sync::Arc;

/// The outcome of a withdrawal: the operation terminates normally or
/// abnormally (§5.1), it does not error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WithdrawOutcome {
    /// The requested sum was withdrawn.
    Withdrawn,
    /// The balance was too small; nothing changed.
    InsufficientFunds,
}

impl WithdrawOutcome {
    /// Whether the withdrawal succeeded.
    pub fn is_withdrawn(self) -> bool {
        matches!(self, WithdrawOutcome::Withdrawn)
    }
}

/// An atomic bank account: `deposit`, `withdraw`, `balance`.
///
/// Under the dynamic and hybrid protocols, concurrent withdrawals are
/// admitted whenever the balance covers every order of the outstanding
/// requests — the concurrency gain over commutativity-based locking that
/// §5.1 demonstrates.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::{AtomicAccount, WithdrawOutcome};
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let acct = AtomicAccount::new(ObjectId::new(1), &mgr);
/// let t = mgr.begin();
/// acct.deposit(&t, 10)?;
/// assert_eq!(acct.withdraw(&t, 4)?, WithdrawOutcome::Withdrawn);
/// assert_eq!(acct.withdraw(&t, 40)?, WithdrawOutcome::InsufficientFunds);
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicAccount {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicAccount {
    /// Creates an account with balance 0 under the manager's protocol.
    pub fn new(id: ObjectId, mgr: &TxnManager) -> Self {
        Self::with_initial(id, mgr, 0)
    }

    /// Creates an account with a given initial balance.
    pub fn with_initial(id: ObjectId, mgr: &TxnManager, balance: i64) -> Self {
        AtomicAccount {
            id,
            obj: object_for_protocol(id, BankAccountSpec::with_initial(balance), mgr),
        }
    }

    /// The account's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Deposits `amount` (non-negative).
    ///
    /// # Errors
    ///
    /// Transaction-level errors only; see
    /// [`AtomicObject::invoke`](atomicity_core::AtomicObject::invoke).
    pub fn deposit(&self, txn: &Txn, amount: i64) -> Result<(), TxnError> {
        self.obj.invoke(txn, op("deposit", [amount])).map(|_| ())
    }

    /// Withdraws `amount`, terminating normally or with
    /// [`WithdrawOutcome::InsufficientFunds`].
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn withdraw(&self, txn: &Txn, amount: i64) -> Result<WithdrawOutcome, TxnError> {
        let v = self.obj.invoke(txn, op("withdraw", [amount]))?;
        Ok(if v == Value::ok() {
            WithdrawOutcome::Withdrawn
        } else {
            WithdrawOutcome::InsufficientFunds
        })
    }

    /// The current balance as seen by `txn`.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn balance(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("balance", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }
}

impl std::fmt::Debug for AtomicAccount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicAccount")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::{is_dynamic_atomic, is_hybrid_atomic, is_static_atomic};
    use atomicity_spec::SystemSpec;

    fn spec() -> SystemSpec {
        SystemSpec::new().with_object(ObjectId::new(1), BankAccountSpec::new())
    }

    #[test]
    fn basic_flow_under_all_protocols() {
        for protocol in [Protocol::Dynamic, Protocol::Static, Protocol::Hybrid] {
            let mgr = TxnManager::new(protocol);
            let acct = AtomicAccount::new(ObjectId::new(1), &mgr);
            let t = mgr.begin();
            acct.deposit(&t, 10).unwrap();
            assert_eq!(acct.withdraw(&t, 4).unwrap(), WithdrawOutcome::Withdrawn);
            assert_eq!(
                acct.withdraw(&t, 7).unwrap(),
                WithdrawOutcome::InsufficientFunds
            );
            assert_eq!(acct.balance(&t).unwrap(), 6);
            mgr.commit(t).unwrap();
            let h = mgr.history();
            let ok = match protocol {
                Protocol::Dynamic => is_dynamic_atomic(&h, &spec()),
                Protocol::Static => is_static_atomic(&h, &spec()),
                Protocol::Hybrid => is_hybrid_atomic(&h, &spec()),
            };
            assert!(ok, "{protocol:?} history fails its property");
        }
    }

    #[test]
    fn initial_balance() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = AtomicAccount::with_initial(ObjectId::new(1), &mgr, 50);
        let t = mgr.begin();
        assert_eq!(acct.balance(&t).unwrap(), 50);
        mgr.commit(t).unwrap();
    }

    #[test]
    fn clone_shares_the_object() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = AtomicAccount::new(ObjectId::new(1), &mgr);
        let acct2 = acct.clone();
        let t = mgr.begin();
        acct.deposit(&t, 5).unwrap();
        assert_eq!(acct2.balance(&t).unwrap(), 5);
        mgr.commit(t).unwrap();
    }
}
