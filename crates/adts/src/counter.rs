//! The atomic counter from the optimality proof (§4.1).

use crate::{expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::CounterSpec;
use atomicity_spec::{op, ObjectId};
use std::sync::Arc;

/// An atomic counter: `increment` returns the new count, `value` reads it.
///
/// Its serial histories admit exactly one serialization order, which makes
/// it the maximally order-sensitive object — the paper uses it to prove
/// the local atomicity properties optimal. At runtime this shows up as
/// *zero* concurrency between incrementing transactions: the ideal
/// worst-case object for the engines.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::AtomicCounter;
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let ctr = AtomicCounter::new(ObjectId::new(1), &mgr);
/// let t = mgr.begin();
/// assert_eq!(ctr.increment(&t)?, 1);
/// assert_eq!(ctr.increment(&t)?, 2);
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicCounter {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicCounter {
    /// Creates a counter (initially 0) under the manager's protocol.
    pub fn new(id: ObjectId, mgr: &TxnManager) -> Self {
        AtomicCounter {
            id,
            obj: object_for_protocol(id, CounterSpec::new(), mgr),
        }
    }

    /// The counter's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Increments the counter, returning the new count.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn increment(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("increment", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }

    /// Reads the current count.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn value(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("value", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }
}

impl std::fmt::Debug for AtomicCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicCounter")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::is_dynamic_atomic;
    use atomicity_spec::SystemSpec;

    #[test]
    fn counts_across_transactions() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let ctr = AtomicCounter::new(ObjectId::new(1), &mgr);
        for expected in 1..=5 {
            let t = mgr.begin();
            assert_eq!(ctr.increment(&t).unwrap(), expected);
            mgr.commit(t).unwrap();
        }
        let spec = SystemSpec::new().with_object(ObjectId::new(1), CounterSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn aborted_increment_rolls_back() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let ctr = AtomicCounter::new(ObjectId::new(1), &mgr);
        let t = mgr.begin();
        ctr.increment(&t).unwrap();
        mgr.abort(t);
        let t2 = mgr.begin();
        assert_eq!(ctr.increment(&t2).unwrap(), 1);
        mgr.commit(t2).unwrap();
    }

    #[test]
    fn hybrid_audit_reads_committed_count() {
        let mgr = TxnManager::new(Protocol::Hybrid);
        let ctr = AtomicCounter::new(ObjectId::new(1), &mgr);
        let t = mgr.begin();
        ctr.increment(&t).unwrap();
        mgr.commit(t).unwrap();
        let audit = mgr.begin_read_only();
        assert_eq!(ctr.value(&audit).unwrap(), 1);
        mgr.commit(audit).unwrap();
    }
}
