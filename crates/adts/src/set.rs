//! The atomic integer set of §2–§3.

use crate::{expect_bool, expect_int, object_for_protocol};
use atomicity_core::{AtomicObject, Txn, TxnError, TxnManager};
use atomicity_spec::specs::IntSetSpec;
use atomicity_spec::{op, ObjectId};
use std::sync::Arc;

/// An atomic set of integers: `insert`, `delete`, `member`, `size`.
///
/// The paper's running example object (§2–§3). Inserts and deletes of
/// *different* elements commute, so the engines admit them concurrently;
/// membership queries pin the queried element only.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol};
/// use atomicity_adts::AtomicSet;
/// use atomicity_spec::ObjectId;
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let set = AtomicSet::new(ObjectId::new(1), &mgr);
/// let t = mgr.begin();
/// set.insert(&t, 3)?;
/// assert!(set.member(&t, 3)?);
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Clone)]
pub struct AtomicSet {
    id: ObjectId,
    obj: Arc<dyn AtomicObject>,
}

impl AtomicSet {
    /// Creates an empty set under the manager's protocol.
    pub fn new(id: ObjectId, mgr: &TxnManager) -> Self {
        AtomicSet {
            id,
            obj: object_for_protocol(id, IntSetSpec::new(), mgr),
        }
    }

    /// Creates a set with initial members.
    pub fn with_initial(
        id: ObjectId,
        mgr: &TxnManager,
        elements: impl IntoIterator<Item = i64>,
    ) -> Self {
        AtomicSet {
            id,
            obj: object_for_protocol(id, IntSetSpec::with_initial(elements), mgr),
        }
    }

    /// The set's object identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Inserts `element` (idempotent).
    ///
    /// # Errors
    ///
    /// Transaction-level errors only (deadlock, timestamp conflict, …).
    pub fn insert(&self, txn: &Txn, element: i64) -> Result<(), TxnError> {
        self.obj.invoke(txn, op("insert", [element])).map(|_| ())
    }

    /// Deletes `element` (idempotent).
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn delete(&self, txn: &Txn, element: i64) -> Result<(), TxnError> {
        self.obj.invoke(txn, op("delete", [element])).map(|_| ())
    }

    /// Whether `element` is a member.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn member(&self, txn: &Txn, element: i64) -> Result<bool, TxnError> {
        let v = self.obj.invoke(txn, op("member", [element]))?;
        expect_bool(v, self.id)
    }

    /// The number of members.
    ///
    /// # Errors
    ///
    /// Transaction-level errors only.
    pub fn size(&self, txn: &Txn) -> Result<i64, TxnError> {
        let v = self.obj.invoke(txn, op("size", [] as [i64; 0]))?;
        expect_int(v, self.id)
    }
}

impl std::fmt::Debug for AtomicSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicSet").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::is_dynamic_atomic;
    use atomicity_spec::SystemSpec;

    #[test]
    fn disjoint_inserts_run_concurrently() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let set = AtomicSet::new(ObjectId::new(1), &mgr);
        let a = mgr.begin();
        let b = mgr.begin();
        set.insert(&a, 1).unwrap();
        set.insert(&b, 2).unwrap(); // admitted while a uncommitted
        mgr.commit(b).unwrap();
        mgr.commit(a).unwrap();
        let t = mgr.begin();
        assert_eq!(set.size(&t).unwrap(), 2);
        mgr.commit(t).unwrap();
        let spec = SystemSpec::new().with_object(ObjectId::new(1), IntSetSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn member_blocks_conflicting_insert() {
        // member(3) -> false pins "3 absent": an insert(3) by another
        // transaction would invalidate one order and must wait.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let set = Arc::new(AtomicSet::new(ObjectId::new(1), &mgr));
        let a = mgr.begin();
        assert!(!set.member(&a, 3).unwrap());
        let set2 = Arc::clone(&set);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let b = mgr2.begin();
            set2.insert(&b, 3).unwrap();
            mgr2.commit(b).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        mgr.commit(a).unwrap();
        h.join().unwrap();
        let spec = SystemSpec::new().with_object(ObjectId::new(1), IntSetSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn with_initial_members() {
        let mgr = TxnManager::new(Protocol::Static);
        let set = AtomicSet::with_initial(ObjectId::new(1), &mgr, [5, 6]);
        let t = mgr.begin();
        assert!(set.member(&t, 5).unwrap());
        assert!(!set.member(&t, 7).unwrap());
        assert_eq!(set.size(&t).unwrap(), 2);
        mgr.commit(t).unwrap();
    }
}
