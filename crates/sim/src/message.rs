//! Messages and event payloads of the simulated network.

use atomicity_spec::{ActivityId, OpResult};
use std::fmt;

/// Identifies a node (guardian host) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network endpoint: a participant node or the coordinator. Partition
/// schedules and per-link fault configurations key on endpoint pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// The two-phase-commit coordinator (also the clients' ingress).
    Coordinator,
    /// A participant node.
    Node(NodeId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Coordinator => write!(f, "coord"),
            Endpoint::Node(n) => write!(f, "{n}"),
        }
    }
}

/// A network message of the two-phase-commit protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Coordinator → participant: durably stage these intentions and vote.
    Prepare {
        /// The distributed transaction.
        txn: ActivityId,
        /// The (operation, result) pairs to stage at the participant.
        ops: Vec<OpResult>,
    },
    /// Participant → coordinator: staged, voting yes.
    PrepareAck {
        /// The distributed transaction.
        txn: ActivityId,
        /// The voting participant.
        node: NodeId,
    },
    /// Coordinator → participant: the durable decision.
    Decision {
        /// The distributed transaction.
        txn: ActivityId,
        /// `true` = commit, `false` = abort.
        commit: bool,
    },
}

/// An event in the simulation's queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// Deliver a message to an endpoint (dropped if the endpoint is down).
    Deliver {
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload.
        message: Message,
    },
    /// The coordinator's prepare timeout for a transaction fires.
    Timeout {
        /// The transaction whose votes may be incomplete.
        txn: ActivityId,
    },
    /// A crashed node restarts and runs recovery.
    Recover {
        /// The restarting node.
        node: NodeId,
    },
    /// A recovered node retries resolving an in-doubt transaction.
    RetryResolve {
        /// The querying node.
        node: NodeId,
        /// The in-doubt transaction.
        txn: ActivityId,
    },
    /// A prepared participant that has seen no decision re-sends its vote
    /// (liveness across lost messages and coordinator downtime).
    ResendAck {
        /// The prepared participant.
        node: NodeId,
        /// The undecided transaction.
        txn: ActivityId,
        /// Retransmission attempt number (bounded).
        attempt: u32,
    },
    /// The coordinator re-sends a prepare whose vote has not arrived
    /// (covers prepares lost in transit).
    ResendPrepare {
        /// The undecided transaction.
        txn: ActivityId,
        /// The participant that has not voted.
        node: NodeId,
        /// Retransmission attempt number (bounded).
        attempt: u32,
    },
    /// The crashed coordinator restarts (its decision log is durable).
    CoordinatorRecover,
    /// A timestamped read-only audit attempts to complete (§4.3: it must
    /// see exactly the committed updates with commit timestamps below its
    /// own; it retries until those are applied at every node).
    AuditAttempt {
        /// Audit sequence number (index into the results).
        id: usize,
        /// The audit's timestamp.
        ts: u64,
    },
    /// A mean-time-to-failure crash clock fires for a node.
    MttfCrash {
        /// The node whose failure clock expired.
        node: NodeId,
    },
    /// A deterministic workload client wakes up to submit requests.
    ClientTick {
        /// Index of the client in the cluster's client list.
        client: usize,
    },
}
