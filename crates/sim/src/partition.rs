//! Explicit network partition schedules.
//!
//! A [`PartitionWindow`] isolates a group of endpoints from everyone else
//! for an interval of simulated time; a [`PartitionSchedule`] is a set of
//! such windows. The [`crate::Network`] consults the schedule on every
//! send and refuses to carry messages across an active cut — partitioned
//! traffic is counted, never delivered.

use crate::message::Endpoint;
use std::collections::BTreeSet;

/// One partition interval: during `[start, end)` the endpoints in `group`
/// can talk among themselves and everyone outside the group can talk among
/// themselves, but no message crosses the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Simulated time at which the partition forms (inclusive).
    pub start: u64,
    /// Simulated time at which the partition heals (exclusive).
    pub end: u64,
    /// The isolated side of the cut.
    pub group: BTreeSet<Endpoint>,
}

impl PartitionWindow {
    /// Builds a window isolating `group` during `[start, end)`.
    pub fn new(start: u64, end: u64, group: impl IntoIterator<Item = Endpoint>) -> Self {
        PartitionWindow {
            start,
            end,
            group: group.into_iter().collect(),
        }
    }

    /// Whether this window is active at `now`.
    pub fn active_at(&self, now: u64) -> bool {
        self.start <= now && now < self.end
    }

    /// Whether this window cuts the link `a → b` at `now`.
    pub fn cuts(&self, now: u64, a: Endpoint, b: Endpoint) -> bool {
        self.active_at(now) && (self.group.contains(&a) != self.group.contains(&b))
    }
}

/// A set of partition windows, consulted per send.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionSchedule {
    windows: Vec<PartitionWindow>,
}

impl PartitionSchedule {
    /// An empty schedule (fully connected network).
    pub fn new() -> Self {
        PartitionSchedule::default()
    }

    /// Adds a window to the schedule.
    pub fn add(&mut self, window: PartitionWindow) {
        self.windows.push(window);
    }

    /// Builder form of [`PartitionSchedule::add`].
    pub fn with(mut self, window: PartitionWindow) -> Self {
        self.add(window);
        self
    }

    /// Whether any window cuts the link `a → b` at `now`.
    pub fn cuts(&self, now: u64, a: Endpoint, b: Endpoint) -> bool {
        self.windows.iter().any(|w| w.cuts(now, a, b))
    }

    /// The configured windows.
    pub fn windows(&self) -> &[PartitionWindow] {
        &self.windows
    }

    /// Whether the schedule has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The latest heal time across all windows (0 when empty) — the time
    /// after which the network is guaranteed fully connected.
    pub fn healed_after(&self) -> u64 {
        self.windows.iter().map(|w| w.end).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::NodeId;

    fn n(i: u32) -> Endpoint {
        Endpoint::Node(NodeId::new(i))
    }

    #[test]
    fn cuts_only_across_the_boundary_during_the_window() {
        let w = PartitionWindow::new(100, 200, [n(0), n(1)]);
        assert!(w.cuts(100, n(0), n(2)));
        assert!(w.cuts(150, n(2), n(1)), "cuts are symmetric");
        assert!(!w.cuts(150, n(0), n(1)), "same side stays connected");
        assert!(!w.cuts(150, n(2), n(3)), "other side stays connected");
        assert!(!w.cuts(99, n(0), n(2)), "inactive before start");
        assert!(!w.cuts(200, n(0), n(2)), "end is exclusive");
    }

    #[test]
    fn coordinator_can_be_partitioned() {
        let w = PartitionWindow::new(0, 50, [Endpoint::Coordinator]);
        assert!(w.cuts(10, Endpoint::Coordinator, n(0)));
        assert!(!w.cuts(10, n(0), n(1)));
    }

    #[test]
    fn schedule_unions_windows() {
        let s = PartitionSchedule::new()
            .with(PartitionWindow::new(0, 10, [n(0)]))
            .with(PartitionWindow::new(20, 30, [n(1)]));
        assert!(s.cuts(5, n(0), n(1)));
        assert!(!s.cuts(15, n(0), n(1)));
        assert!(s.cuts(25, n(0), n(1)));
        assert_eq!(s.healed_after(), 30);
        assert!(PartitionSchedule::new().is_empty());
    }
}
