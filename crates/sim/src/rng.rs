//! Seeded, splittable randomness for the deterministic simulation.
//!
//! Every random draw in the simulation comes from a [`SimRng`] stream
//! derived from the run's root seed. Streams are **split** per component
//! (one per network link, one per node's failure clock, one per client),
//! so a draw consumed by one component never shifts another component's
//! sequence — the property that makes fault schedules stable under
//! shrinking: disabling message drops must not reshuffle crash times.
//!
//! The generator is splitmix64: 64 bits of state, full-period, and
//! implemented with integer arithmetic only, so identical across
//! platforms (no floating-point transcendentals anywhere in the
//! simulation's random paths).

/// A deterministic random stream.
///
/// Cloning copies the stream position; [`SimRng::split`] derives a new
/// statistically independent stream without consuming from this one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

/// splitmix64 output mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string — the label hash for stream splitting, and
/// the rolling-hash primitive behind every replay fingerprint
/// (`Cluster::trace_hash`, and the partitioned service's digests in
/// `atomicity-dist`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl SimRng {
    /// Creates the root stream for a run.
    pub fn new(seed: u64) -> Self {
        // Pre-mix so small consecutive seeds give unrelated streams.
        SimRng {
            state: mix(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent stream for component `label` / `index`
    /// without consuming from this stream.
    pub fn split(&self, label: &str, index: u64) -> SimRng {
        let tag = fnv1a(label.as_bytes());
        SimRng {
            state: mix(self.state ^ tag.rotate_left(17) ^ mix(index.wrapping_add(0xA5A5))),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo + 1;
        if span == 0 {
            // [0, u64::MAX]: the raw draw is already uniform.
            return self.next_u64();
        }
        lo + self.next_u64() % span
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`), decided
    /// by integer comparison against a 53-bit draw so the outcome is
    /// bit-stable across platforms.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// A crash-interval draw around `mean`: uniform in `[mean/2, 3·mean/2]`
    /// (a two-point-bounded stand-in for the exponential, kept to integer
    /// arithmetic for cross-platform determinism). Returns at least 1.
    pub fn around(&mut self, mean: u64) -> u64 {
        if mean <= 1 {
            return 1;
        }
        self.range(mean / 2, mean + mean / 2).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent_of_consumption() {
        let root = SimRng::new(9);
        let mut before = root.split("net", 3);
        let mut consumed = root.clone();
        for _ in 0..10 {
            consumed.next_u64();
        }
        // Splitting does not consume: the same split is reproducible.
        let mut after = root.split("net", 3);
        for _ in 0..20 {
            assert_eq!(before.next_u64(), after.next_u64());
        }
    }

    #[test]
    fn splits_differ_by_label_and_index() {
        let root = SimRng::new(1);
        let mut a = root.split("net", 0);
        let mut b = root.split("net", 1);
        let mut c = root.split("mttf", 0);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.range(50, 500);
            assert!((50..=500).contains(&v));
        }
        assert_eq!(r.range(7, 7), 7);
    }

    #[test]
    fn chance_extremes_and_rate() {
        let mut r = SimRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn around_brackets_the_mean() {
        let mut r = SimRng::new(5);
        for _ in 0..200 {
            let v = r.around(10_000);
            assert!((5_000..=15_000).contains(&v), "{v}");
        }
    }
}
