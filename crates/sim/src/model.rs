//! Deterministic actor traits: the contract between the event loop and
//! the things it drives.
//!
//! A deterministic simulation is only as deterministic as its least
//! disciplined component, so every participant is pinned behind a trait
//! whose methods receive **logical time** and return **descriptions** of
//! what should happen ([`Action`]s) instead of doing it: nodes never
//! touch the queue, the network, or a clock themselves. The event loop
//! ([`crate::Cluster`]) owns all three, which is what makes a run a pure
//! function of its seed.
//!
//! [`DeterministicNode`] is the participant side of two-phase commit;
//! [`DeterministicClient`] is an open-loop workload source whose requests
//! and pacing come from its own split [`SimRng`] stream, so client
//! behavior never perturbs network or failure randomness.

use crate::message::{Endpoint, Message};
use crate::rng::SimRng;
use atomicity_spec::ActivityId;
use std::fmt;

/// A node-local timer, requested via [`Action::Timer`] and delivered back
/// through [`DeterministicNode::on_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTimer {
    /// A prepared participant that has seen no decision re-sends its vote.
    ResendAck {
        /// The undecided transaction.
        txn: ActivityId,
        /// Retransmission attempt number (bounded).
        attempt: u32,
    },
}

/// What a deterministic actor wants done, described — never performed —
/// by the actor itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a message over the simulated network.
    Send {
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload.
        message: Message,
    },
    /// Wake this node up after `delay` simulated microseconds.
    Timer {
        /// Delay from now, in simulated microseconds.
        delay: u64,
        /// The timer to deliver.
        timer: NodeTimer,
    },
}

/// The participant side of the protocol as a pure event handler: given a
/// delivery or a timer at a logical instant, return the follow-up
/// actions. Implementations must not consult wall-clock time or any
/// randomness other than streams handed to them.
pub trait DeterministicNode {
    /// This node's network identity.
    fn endpoint(&self) -> Endpoint;

    /// Whether the node is up (down nodes receive nothing).
    fn online(&self) -> bool;

    /// Handles a delivered message at logical time `now`.
    fn on_message(&mut self, now: u64, message: &Message) -> Vec<Action>;

    /// Handles a timer previously requested via [`Action::Timer`].
    fn on_timer(&mut self, now: u64, timer: &NodeTimer) -> Vec<Action>;
}

/// One request a client hands the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientRequest {
    /// Move `amount` from one global account to another.
    Transfer {
        /// Debited account.
        from: i64,
        /// Credited account.
        to: i64,
        /// Amount moved.
        amount: i64,
    },
    /// Submit a timestamped read-only audit of the grand total.
    Audit,
}

/// The result of one client wake-up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientTurn {
    /// Requests to submit now, in order.
    pub requests: Vec<ClientRequest>,
    /// Delay until the next wake-up; `None` ends the client.
    pub next_tick: Option<u64>,
}

/// An open-loop deterministic workload source.
pub trait DeterministicClient: fmt::Debug {
    /// Called at each scheduled wake-up with the logical time.
    fn tick(&mut self, now: u64) -> ClientTurn;

    /// Whether the client has issued everything it ever will.
    fn done(&self) -> bool;
}

/// The standard workload client: a bounded stream of random transfers
/// between random distinct accounts at random intervals, with a
/// timestamped audit every `audit_every`-th transfer. All draws come from
/// the client's own [`SimRng`] stream.
#[derive(Debug, Clone)]
pub struct TransferClient {
    rng: SimRng,
    accounts: i64,
    remaining: u32,
    sent: u32,
    amount_max: i64,
    interval_min: u64,
    interval_max: u64,
    audit_every: u32,
}

impl TransferClient {
    /// A client that will submit `transfers` transfers over the account
    /// universe `0..accounts`, pacing 200–2000 µs apart, amounts 1–25,
    /// auditing every 5th transfer.
    ///
    /// # Panics
    ///
    /// Panics if `accounts < 2` (a transfer needs two distinct accounts).
    pub fn new(rng: SimRng, accounts: i64, transfers: u32) -> Self {
        assert!(accounts >= 2, "transfers need at least two accounts");
        TransferClient {
            rng,
            accounts,
            remaining: transfers,
            sent: 0,
            amount_max: 25,
            interval_min: 200,
            interval_max: 2_000,
            audit_every: 5,
        }
    }

    /// Overrides the inter-request pacing band (builder style).
    pub fn with_interval(mut self, min: u64, max: u64) -> Self {
        self.interval_min = min;
        self.interval_max = max;
        self
    }

    /// Overrides the audit cadence; `0` disables audits (builder style).
    pub fn with_audit_every(mut self, every: u32) -> Self {
        self.audit_every = every;
        self
    }
}

impl DeterministicClient for TransferClient {
    fn tick(&mut self, _now: u64) -> ClientTurn {
        if self.remaining == 0 {
            return ClientTurn::default();
        }
        self.remaining -= 1;
        self.sent += 1;
        let from = self.rng.range(0, (self.accounts - 1) as u64) as i64;
        let mut to = self.rng.range(0, (self.accounts - 2) as u64) as i64;
        if to >= from {
            to += 1;
        }
        let amount = self.rng.range(1, self.amount_max as u64) as i64;
        let mut requests = vec![ClientRequest::Transfer { from, to, amount }];
        if self.audit_every > 0 && self.sent.is_multiple_of(self.audit_every) {
            requests.push(ClientRequest::Audit);
        }
        let next_tick =
            (self.remaining > 0).then(|| self.rng.range(self.interval_min, self.interval_max));
        ClientTurn {
            requests,
            next_tick,
        }
    }

    fn done(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_client_issues_exactly_its_budget() {
        let mut c = TransferClient::new(SimRng::new(5), 16, 7).with_audit_every(3);
        let mut transfers = 0;
        let mut audits = 0;
        let mut now = 0;
        loop {
            let turn = c.tick(now);
            for r in &turn.requests {
                match r {
                    ClientRequest::Transfer { from, to, amount } => {
                        assert!((0..16).contains(from));
                        assert!((0..16).contains(to));
                        assert_ne!(from, to);
                        assert!(*amount >= 1);
                        transfers += 1;
                    }
                    ClientRequest::Audit => audits += 1,
                }
            }
            match turn.next_tick {
                Some(d) => now += d,
                None => break,
            }
        }
        assert_eq!(transfers, 7);
        assert_eq!(audits, 2, "audits on the 3rd and 6th transfers");
        assert!(c.done());
        assert_eq!(c.tick(now), ClientTurn::default(), "done clients idle");
    }

    #[test]
    fn transfer_client_is_deterministic() {
        let run = || {
            let mut c = TransferClient::new(SimRng::new(9), 8, 20);
            let mut log = Vec::new();
            loop {
                let turn = c.tick(0);
                log.push(turn.clone());
                if turn.next_tick.is_none() {
                    break;
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
