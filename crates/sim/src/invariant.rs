//! Checkpointed invariant checking inside the event loop.
//!
//! An [`InvariantChecker`] is called every `checkpoint_every` processed
//! events (and once more at [`crate::Cluster::heal`]) with a read-only
//! view of the whole cluster — the online-monitor shape of Mathur &
//! Viswanathan's vector-clock atomicity checker, specialized to this
//! simulation. A failing check becomes a [`Violation`] carried in the
//! cluster, stamping the logical time and event index at which the
//! invariant first broke; the seed plus that index is a complete
//! reproducer.
//!
//! Three checkers ship with the crate:
//!
//! - [`StandardChecker`] — the mid-run-safe all-or-nothing check (a
//!   participant may still be *undecided* about a decided transaction,
//!   but must never hold the *opposite* durable outcome) and the balance
//!   oracle (the set of fully-applied committed transfers must conserve
//!   the grand total, read from the durable logs alone so it holds even
//!   while nodes are down).
//! - [`CertifierCheck`] — the linear-time hybrid-atomicity certifier from
//!   `atomicity-lint` run over the history the cluster records (requires
//!   [`crate::SimConfig::record_history`]).
//! - [`OnlineCertifierCheck`] — the streaming monitor from
//!   `atomicity-certify` fed incrementally: each checkpoint observes only
//!   the events recorded since the previous one, replacing
//!   [`CertifierCheck`]'s merge-then-check re-certification (linear per
//!   checkpoint, quadratic over the run) with constant amortized work.

use crate::cluster::Cluster;
use atomicity_certify::OnlineCertifier;
use atomicity_lint::{CertifierHook, Property, Verdict};
use std::fmt;

/// One invariant failure observed at a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Logical time of the failing checkpoint.
    pub time: u64,
    /// Events processed when the check ran (replay `run_events` to here).
    pub events: u64,
    /// Name of the checker that failed.
    pub checker: String,
    /// What it saw.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={} ev={}] {}: {}",
            self.time, self.events, self.checker, self.detail
        )
    }
}

/// A checkpoint invariant over the cluster.
pub trait InvariantChecker: fmt::Debug {
    /// Short name used in violation reports.
    fn name(&self) -> &'static str;

    /// Checks the invariant; `Err` describes the violation.
    fn check(&mut self, cluster: &Cluster) -> Result<(), String>;
}

/// All-or-nothing plus balance-conservation oracle, safe to run mid-run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardChecker;

impl InvariantChecker for StandardChecker {
    fn name(&self) -> &'static str {
        "standard"
    }

    fn check(&mut self, cluster: &Cluster) -> Result<(), String> {
        // All-or-nothing, mid-run form: participants lag but never
        // contradict the coordinator's durable decision.
        for (txn, commit) in cluster.decided() {
            for node in cluster.participants_of(txn) {
                if let Some(o) = cluster.node(node).outcome(txn) {
                    if o != commit {
                        return Err(format!(
                            "txn {txn} decided {commit} but {node} durably recorded {o}"
                        ));
                    }
                }
            }
        }
        // Balance oracle: every transfer whose commit has durably applied
        // at ALL of its participants moves money without creating it, so
        // replaying exactly that set must reproduce the initial total.
        let applied: Vec<_> = cluster
            .decided()
            .into_iter()
            .filter(|&(txn, commit)| {
                commit
                    && cluster
                        .participants_of(txn)
                        .iter()
                        .all(|&n| cluster.node(n).outcome(txn) == Some(true))
            })
            .map(|(txn, _)| txn)
            .collect();
        let total: i64 = cluster
            .node_ids()
            .into_iter()
            .map(|n| cluster.node(n).committed_total_at(|t| applied.contains(&t)))
            .sum();
        let expected = cluster.initial_total();
        if total != expected {
            return Err(format!(
                "fully-applied committed set totals {total}, expected {expected} \
                 ({} transfers applied)",
                applied.len()
            ));
        }
        Ok(())
    }
}

/// The linear-time certifier as a checkpoint invariant: certifies the
/// cluster's recorded history for hybrid atomicity.
#[derive(Debug)]
pub struct CertifierCheck {
    hook: CertifierHook,
}

impl CertifierCheck {
    /// Builds the checker for `cluster` (captures its system spec). The
    /// cluster must have been configured with
    /// [`crate::SimConfig::record_history`], otherwise the check passes
    /// vacuously.
    pub fn hybrid(cluster: &Cluster) -> Self {
        CertifierCheck {
            hook: CertifierHook::new(Property::Hybrid, cluster.system_spec()),
        }
    }
}

impl InvariantChecker for CertifierCheck {
    fn name(&self) -> &'static str {
        "certifier"
    }

    fn check(&mut self, cluster: &Cluster) -> Result<(), String> {
        match cluster.history() {
            Some(h) => self.hook.check(h),
            None => Ok(()),
        }
    }
}

/// The streaming certifier as a checkpoint invariant.
///
/// Where [`CertifierCheck`] re-certifies the *entire* recorded history at
/// every checkpoint (merge-then-check: linear per checkpoint, quadratic
/// over the run), this feeds only the events recorded since the previous
/// checkpoint into an [`OnlineCertifier`] and fails the moment the
/// monitor flags a violation or the provisional certificate refutes the
/// prefix. Verdict mapping follows [`CertifierHook::check`]: `Refuted`
/// is a violation, `Certified` and `Unknown` pass.
pub struct OnlineCertifierCheck {
    monitor: OnlineCertifier,
    cursor: usize,
}

impl fmt::Debug for OnlineCertifierCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OnlineCertifierCheck")
            .field("property", &self.monitor.property())
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl OnlineCertifierCheck {
    /// Builds the checker for `cluster` (captures its system spec). The
    /// cluster must have been configured with
    /// [`crate::SimConfig::record_history`], otherwise the check passes
    /// vacuously.
    pub fn hybrid(cluster: &Cluster) -> Self {
        OnlineCertifierCheck {
            monitor: OnlineCertifier::new(Property::Hybrid, cluster.system_spec(), None),
            cursor: 0,
        }
    }

    /// Events fed to the monitor so far.
    pub fn observed(&self) -> usize {
        self.cursor
    }
}

impl InvariantChecker for OnlineCertifierCheck {
    fn name(&self) -> &'static str {
        "online-certifier"
    }

    fn check(&mut self, cluster: &Cluster) -> Result<(), String> {
        let Some(history) = cluster.history() else {
            return Ok(());
        };
        let events = history.events();
        for (i, event) in events.iter().enumerate().skip(self.cursor) {
            let flagged = self.monitor.observe(i as u64 + 1, event);
            self.cursor = i + 1;
            if let Some(v) = flagged {
                return Err(format!("online certifier flagged: {v}"));
            }
        }
        // Open transactions keep the monitor's verdict provisional;
        // refutation of the committed prefix is already final.
        if let Verdict::Refuted(reason) = self.monitor.provisional_certificate().verdict {
            return Err(format!("online certifier refuted prefix: {reason}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SimConfig;

    #[test]
    fn online_checker_feeds_the_history_incrementally_and_agrees_with_post_hoc() {
        let mut cluster = Cluster::new(SimConfig {
            record_history: true,
            ..SimConfig::default()
        });
        let mut online = OnlineCertifierCheck::hybrid(&cluster);
        let mut post_hoc = CertifierCheck::hybrid(&cluster);
        let t1 = cluster.submit_transfer(0, 5, 25);
        let t2 = cluster.submit_transfer(2, 3, 10);
        cluster.run_to_quiescence();
        cluster.heal();
        assert_eq!(cluster.decision(t1), Some(true));
        assert_eq!(cluster.decision(t2), Some(true));
        let recorded = cluster.history().expect("history recorded").events().len();
        assert!(recorded > 0, "the run must record events");

        // First checkpoint consumes the whole backlog…
        assert_eq!(online.check(&cluster), Ok(()));
        assert_eq!(online.observed(), recorded);
        // …and a second checkpoint with no new events observes nothing new.
        assert_eq!(online.check(&cluster), Ok(()));
        assert_eq!(online.observed(), recorded);

        // The streaming verdict maps onto the same pass/violation shape
        // as the post-hoc hook.
        assert_eq!(post_hoc.check(&cluster), Ok(()));
    }

    #[test]
    fn online_checker_passes_vacuously_without_recorded_history() {
        let mut cluster = Cluster::new(SimConfig::default());
        let mut online = OnlineCertifierCheck::hybrid(&cluster);
        cluster.submit_transfer(0, 1, 5);
        cluster.run_to_quiescence();
        assert_eq!(online.check(&cluster), Ok(()));
        assert_eq!(online.observed(), 0);
    }
}
