//! Checkpointed invariant checking inside the event loop.
//!
//! An [`InvariantChecker`] is called every `checkpoint_every` processed
//! events (and once more at [`crate::Cluster::heal`]) with a read-only
//! view of the whole cluster — the online-monitor shape of Mathur &
//! Viswanathan's vector-clock atomicity checker, specialized to this
//! simulation. A failing check becomes a [`Violation`] carried in the
//! cluster, stamping the logical time and event index at which the
//! invariant first broke; the seed plus that index is a complete
//! reproducer.
//!
//! Two checkers ship with the crate:
//!
//! - [`StandardChecker`] — the mid-run-safe all-or-nothing check (a
//!   participant may still be *undecided* about a decided transaction,
//!   but must never hold the *opposite* durable outcome) and the balance
//!   oracle (the set of fully-applied committed transfers must conserve
//!   the grand total, read from the durable logs alone so it holds even
//!   while nodes are down).
//! - [`CertifierCheck`] — the linear-time hybrid-atomicity certifier from
//!   `atomicity-lint` run over the history the cluster records (requires
//!   [`crate::SimConfig::record_history`]).

use crate::cluster::Cluster;
use atomicity_lint::{CertifierHook, Property};
use std::fmt;

/// One invariant failure observed at a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Logical time of the failing checkpoint.
    pub time: u64,
    /// Events processed when the check ran (replay `run_events` to here).
    pub events: u64,
    /// Name of the checker that failed.
    pub checker: String,
    /// What it saw.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={} ev={}] {}: {}",
            self.time, self.events, self.checker, self.detail
        )
    }
}

/// A checkpoint invariant over the cluster.
pub trait InvariantChecker: fmt::Debug {
    /// Short name used in violation reports.
    fn name(&self) -> &'static str;

    /// Checks the invariant; `Err` describes the violation.
    fn check(&mut self, cluster: &Cluster) -> Result<(), String>;
}

/// All-or-nothing plus balance-conservation oracle, safe to run mid-run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardChecker;

impl InvariantChecker for StandardChecker {
    fn name(&self) -> &'static str {
        "standard"
    }

    fn check(&mut self, cluster: &Cluster) -> Result<(), String> {
        // All-or-nothing, mid-run form: participants lag but never
        // contradict the coordinator's durable decision.
        for (txn, commit) in cluster.decided() {
            for node in cluster.participants_of(txn) {
                if let Some(o) = cluster.node(node).outcome(txn) {
                    if o != commit {
                        return Err(format!(
                            "txn {txn} decided {commit} but {node} durably recorded {o}"
                        ));
                    }
                }
            }
        }
        // Balance oracle: every transfer whose commit has durably applied
        // at ALL of its participants moves money without creating it, so
        // replaying exactly that set must reproduce the initial total.
        let applied: Vec<_> = cluster
            .decided()
            .into_iter()
            .filter(|&(txn, commit)| {
                commit
                    && cluster
                        .participants_of(txn)
                        .iter()
                        .all(|&n| cluster.node(n).outcome(txn) == Some(true))
            })
            .map(|(txn, _)| txn)
            .collect();
        let total: i64 = cluster
            .node_ids()
            .into_iter()
            .map(|n| cluster.node(n).committed_total_at(|t| applied.contains(&t)))
            .sum();
        let expected = cluster.initial_total();
        if total != expected {
            return Err(format!(
                "fully-applied committed set totals {total}, expected {expected} \
                 ({} transfers applied)",
                applied.len()
            ));
        }
        Ok(())
    }
}

/// The linear-time certifier as a checkpoint invariant: certifies the
/// cluster's recorded history for hybrid atomicity.
#[derive(Debug)]
pub struct CertifierCheck {
    hook: CertifierHook,
}

impl CertifierCheck {
    /// Builds the checker for `cluster` (captures its system spec). The
    /// cluster must have been configured with
    /// [`crate::SimConfig::record_history`], otherwise the check passes
    /// vacuously.
    pub fn hybrid(cluster: &Cluster) -> Self {
        CertifierCheck {
            hook: CertifierHook::new(Property::Hybrid, cluster.system_spec()),
        }
    }
}

impl InvariantChecker for CertifierCheck {
    fn name(&self) -> &'static str {
        "certifier"
    }

    fn check(&mut self, cluster: &Cluster) -> Result<(), String> {
        match cluster.history() {
            Some(h) => self.hook.check(h),
            None => Ok(()),
        }
    }
}
