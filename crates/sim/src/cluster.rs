//! The cluster: nodes, network, coordinator, crash injection, invariants.

use crate::message::{Message, NodeId, SimEvent};
use crate::node::Node;
use crate::queue::EventQueue;
use atomicity_core::{AbortReason, MetricsRegistry};
use atomicity_spec::{op, ActivityId, OpResult, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of nodes; account `k` lives on node `k % nodes`.
    pub nodes: u32,
    /// Accounts per node.
    pub accounts_per_node: u32,
    /// Initial balance of every account.
    pub initial_balance: i64,
    /// RNG seed (latencies are the only randomness).
    pub seed: u64,
    /// Minimum one-way message latency (simulated microseconds).
    pub min_latency: u64,
    /// Maximum one-way message latency.
    pub max_latency: u64,
    /// Coordinator prepare timeout: missing votes ⇒ abort.
    pub prepare_timeout: u64,
    /// Interval at which a recovered node re-asks for in-doubt outcomes.
    pub retry_interval: u64,
    /// Probability a message is lost in transit (deterministic per seed).
    pub drop_probability: f64,
    /// Probability a message is delivered twice.
    pub duplicate_probability: f64,
    /// How long a prepared participant waits for a decision before
    /// re-sending its vote.
    pub decision_timeout: u64,
    /// Bound on vote retransmissions per participant and transaction.
    pub max_resends: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 4,
            accounts_per_node: 4,
            initial_balance: 100,
            seed: 42,
            min_latency: 50,
            max_latency: 500,
            prepare_timeout: 5_000,
            retry_interval: 1_000,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            decision_timeout: 2_000,
            max_resends: 8,
        }
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Transactions the coordinator decided to commit.
    pub committed: u64,
    /// Transactions the coordinator decided to abort (timeouts).
    pub aborted: u64,
    /// Messages delivered (including drops to down nodes).
    pub messages: u64,
    /// Messages dropped because the destination was down.
    pub dropped: u64,
    /// Messages lost in transit (network loss injection).
    pub lost: u64,
    /// Messages delivered twice (duplication injection).
    pub duplicated: u64,
    /// Vote retransmissions performed.
    pub resends: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Coordinator crashes injected.
    pub coordinator_crashes: u64,
    /// Node recoveries performed.
    pub recoveries: u64,
    /// Committed intentions redone during recoveries.
    pub redo_records: u64,
    /// In-doubt transactions found during recoveries.
    pub in_doubt: u64,
    /// Events processed.
    pub events: u64,
}

#[derive(Debug)]
struct PendingTxn {
    participants: Vec<NodeId>,
    acks: BTreeSet<NodeId>,
}

#[derive(Debug, Clone, Copy)]
enum CrashTarget {
    Node(NodeId),
    Coordinator,
}

#[derive(Debug, Clone, Copy)]
struct CrashPoint {
    at_event: u64,
    target: CrashTarget,
    down_for: u64,
}

/// A simulated distributed transaction system: sharded bank accounts,
/// two-phase commit, crashes, recovery.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Cluster {
    cfg: SimConfig,
    time: u64,
    queue: EventQueue,
    nodes: Vec<Node>,
    rng: StdRng,
    next_txn: u32,
    /// Coordinator durable state: decided outcomes (never lost — the
    /// coordinator is modeled as reliable; participant crashes are the
    /// interesting failures for recoverability).
    decisions: HashMap<ActivityId, bool>,
    pending: HashMap<ActivityId, PendingTxn>,
    /// Intentions per (txn, node), kept by the coordinator for retransmission.
    staged: HashMap<(ActivityId, NodeId), Vec<OpResult>>,
    crash_plan: Vec<CrashPoint>,
    coordinator_up: bool,
    /// Commit timestamps assigned at decision time (hybrid atomicity for
    /// the distributed setting); shared counter with audit timestamps.
    commit_ts: HashMap<ActivityId, u64>,
    ts_clock: u64,
    /// Completed audits: (timestamp, observed grand total).
    audit_results: Vec<(u64, i64)>,
    next_audit: usize,
    stats: SimStats,
    /// Observability sink (disabled unless [`Cluster::enable_metrics`] is
    /// called): transaction begin/commit/abort counts and the
    /// submit-to-decision latency histogram in simulated time.
    metrics: MetricsRegistry,
    /// Simulated submission time per undecided transaction.
    submit_times: HashMap<ActivityId, u64>,
}

impl Cluster {
    /// Creates the cluster with all accounts at their initial balance,
    /// each node backed by the in-memory simulated stable log.
    pub fn new(cfg: SimConfig) -> Self {
        Cluster::with_log_factory(cfg, |_id| {
            Arc::new(atomicity_core::recovery::StableLog::new()) as _
        })
    }

    /// Creates the cluster with each node's durable log supplied by
    /// `factory` — the hook for running the same protocol and crash
    /// sweeps over the on-disk WAL (`experiments e6 --disk`). The factory
    /// must hand out logs that sync on the calling thread (no background
    /// flusher) or the simulation loses determinism.
    pub fn with_log_factory(
        cfg: SimConfig,
        factory: impl Fn(NodeId) -> Arc<dyn atomicity_core::DurableLog>,
    ) -> Self {
        let nodes = (0..cfg.nodes)
            .map(|n| {
                let accounts = (0..cfg.accounts_per_node)
                    .map(|i| ((i * cfg.nodes + n) as i64, cfg.initial_balance));
                let id = NodeId::new(n);
                Node::with_log(id, accounts, factory(id))
            })
            .collect();
        Cluster {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            time: 0,
            queue: EventQueue::new(),
            nodes,
            next_txn: 1,
            decisions: HashMap::new(),
            pending: HashMap::new(),
            staged: HashMap::new(),
            crash_plan: Vec::new(),
            coordinator_up: true,
            commit_ts: HashMap::new(),
            ts_clock: 0,
            audit_results: Vec::new(),
            next_audit: 0,
            stats: SimStats::default(),
            metrics: MetricsRegistry::disabled(),
            submit_times: HashMap::new(),
        }
    }

    /// Turns on metrics collection: subsequent transactions are counted
    /// in a fresh [`MetricsRegistry`], with the commit-path histogram fed
    /// the submit-to-decision latency in **simulated** nanoseconds (one
    /// simulated time unit = 1\u{b5}s).
    pub fn enable_metrics(&mut self) {
        self.metrics = MetricsRegistry::new();
    }

    /// The cluster's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The node an account lives on.
    pub fn home_of(&self, account: i64) -> NodeId {
        NodeId::new((account.rem_euclid(i64::from(self.cfg.nodes))) as u32)
    }

    /// Total number of accounts.
    pub fn account_count(&self) -> i64 {
        i64::from(self.cfg.nodes) * i64::from(self.cfg.accounts_per_node)
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The coordinator's durable decision for `txn`, if made.
    pub fn decision(&self, txn: ActivityId) -> Option<bool> {
        self.decisions.get(&txn).copied()
    }

    /// Schedules a crash of `node` just before the `at_event`-th processed
    /// event; the node recovers after `down_for` simulated microseconds.
    pub fn schedule_crash(&mut self, at_event: u64, node: NodeId, down_for: u64) {
        self.crash_plan.push(CrashPoint {
            at_event,
            target: CrashTarget::Node(node),
            down_for,
        });
    }

    /// Schedules a crash of the *coordinator* just before the
    /// `at_event`-th processed event. Its decision log is durable;
    /// participants block (classic two-phase commit) and re-send their
    /// votes until it returns after `down_for`.
    pub fn schedule_coordinator_crash(&mut self, at_event: u64, down_for: u64) {
        self.crash_plan.push(CrashPoint {
            at_event,
            target: CrashTarget::Coordinator,
            down_for,
        });
    }

    /// Whether the coordinator is currently up.
    pub fn coordinator_is_up(&self) -> bool {
        self.coordinator_up
    }

    /// Submits a timestamped read-only audit (§4.3 in the distributed
    /// setting): it takes the next timestamp and will observe exactly the
    /// transfers committed with smaller timestamps, retrying until those
    /// are applied at every participant. The result appears in
    /// [`Cluster::audit_results`].
    pub fn submit_audit(&mut self) -> usize {
        self.ts_clock += 1;
        let ts = self.ts_clock;
        let id = self.next_audit;
        self.next_audit += 1;
        let at = self.time + self.latency();
        self.queue.schedule(at, SimEvent::AuditAttempt { id, ts });
        id
    }

    /// Completed audits as (timestamp, observed grand total) pairs.
    pub fn audit_results(&self) -> &[(u64, i64)] {
        &self.audit_results
    }

    /// Whether every committed transaction with commit timestamp below
    /// `ts` has been durably applied at each of its participants.
    fn audit_ready(&self, ts: u64) -> bool {
        for (txn, &cts) in &self.commit_ts {
            if cts >= ts {
                continue;
            }
            let Some(pending) = self.pending.get(txn) else {
                continue;
            };
            for &node in &pending.participants {
                let n = &self.nodes[node.raw() as usize];
                if !n.is_up() || n.outcome(*txn) != Some(true) {
                    return false;
                }
            }
        }
        true
    }

    fn perform_audit(&mut self, id: usize, ts: u64) {
        let include: Vec<ActivityId> = self
            .commit_ts
            .iter()
            .filter(|(_, &cts)| cts < ts)
            .map(|(&t, _)| t)
            .collect();
        let total: i64 = self
            .nodes
            .iter()
            .map(|n| n.committed_total_at(|t| include.contains(&t)))
            .sum();
        self.audit_results.push((ts, total));
        let _ = id;
    }

    /// Sends a message to a node with loss/duplication injection.
    fn send_to_node(&mut self, node: NodeId, message: Message) {
        let at = self.time + self.latency();
        if self.roll(self.cfg.drop_probability) {
            self.stats.lost += 1;
            return;
        }
        if self.roll(self.cfg.duplicate_probability) {
            self.stats.duplicated += 1;
            let again = self.time + self.latency();
            self.queue.schedule(
                again,
                SimEvent::DeliverToNode {
                    node,
                    message: message.clone(),
                },
            );
        }
        self.queue
            .schedule(at, SimEvent::DeliverToNode { node, message });
    }

    /// Sends a message to the coordinator with loss/duplication injection.
    fn send_to_coordinator(&mut self, message: Message) {
        let at = self.time + self.latency();
        if self.roll(self.cfg.drop_probability) {
            self.stats.lost += 1;
            return;
        }
        if self.roll(self.cfg.duplicate_probability) {
            self.stats.duplicated += 1;
            let again = self.time + self.latency();
            self.queue.schedule(
                again,
                SimEvent::DeliverToCoordinator {
                    message: message.clone(),
                },
            );
        }
        self.queue
            .schedule(at, SimEvent::DeliverToCoordinator { message });
    }

    fn roll(&mut self, probability: f64) -> bool {
        probability > 0.0 && self.rng.gen_bool(probability.clamp(0.0, 1.0))
    }

    fn latency(&mut self) -> u64 {
        self.rng
            .gen_range(self.cfg.min_latency..=self.cfg.max_latency)
    }

    /// Submits a transfer moving `amount` from `from` to `to` (global
    /// account ids) at the current simulated time. Returns the
    /// transaction's identity.
    pub fn submit_transfer(&mut self, from: i64, to: i64, amount: i64) -> ActivityId {
        let txn = ActivityId::new(self.next_txn);
        self.next_txn += 1;
        self.metrics.txn_begun(txn);
        self.submit_times.insert(txn, self.time);
        let mut per_node: BTreeMap<NodeId, Vec<OpResult>> = BTreeMap::new();
        per_node
            .entry(self.home_of(from))
            .or_default()
            .push((op("adjust", [from, -amount]), Value::ok()));
        per_node
            .entry(self.home_of(to))
            .or_default()
            .push((op("adjust", [to, amount]), Value::ok()));
        let participants: Vec<NodeId> = per_node.keys().copied().collect();
        for (node, ops) in &per_node {
            self.staged.insert((txn, *node), ops.clone());
            self.send_to_node(
                *node,
                Message::Prepare {
                    txn,
                    ops: ops.clone(),
                },
            );
            let at = self.time + self.cfg.decision_timeout;
            self.queue.schedule(
                at,
                SimEvent::ResendPrepare {
                    txn,
                    node: *node,
                    attempt: 1,
                },
            );
        }
        self.queue.schedule(
            self.time + self.cfg.prepare_timeout,
            SimEvent::Timeout { txn },
        );
        self.pending.insert(
            txn,
            PendingTxn {
                participants,
                acks: BTreeSet::new(),
            },
        );
        txn
    }

    /// Processes events until the queue drains (or `max_events`).
    pub fn run_to_quiescence(&mut self) -> &SimStats {
        self.run_events(u64::MAX)
    }

    /// Processes at most `max_events` events.
    pub fn run_events(&mut self, max_events: u64) -> &SimStats {
        let mut processed_now = 0;
        while processed_now < max_events {
            // Crash injection is keyed on the global processed-event count.
            let due: Vec<CrashPoint> = self
                .crash_plan
                .iter()
                .filter(|c| c.at_event <= self.stats.events)
                .copied()
                .collect();
            self.crash_plan.retain(|c| c.at_event > self.stats.events);
            for c in due {
                match c.target {
                    CrashTarget::Node(node) => self.crash(node, c.down_for),
                    CrashTarget::Coordinator => self.crash_coordinator(c.down_for),
                }
            }
            let Some(scheduled) = self.queue.pop() else {
                break;
            };
            self.time = self.time.max(scheduled.time);
            self.stats.events += 1;
            processed_now += 1;
            self.handle(scheduled.event);
        }
        &self.stats
    }

    fn crash(&mut self, node: NodeId, down_for: u64) {
        let n = &mut self.nodes[node.raw() as usize];
        if !n.is_up() {
            return;
        }
        n.crash();
        self.stats.crashes += 1;
        self.queue
            .schedule(self.time + down_for, SimEvent::Recover { node });
    }

    fn crash_coordinator(&mut self, down_for: u64) {
        if !self.coordinator_up {
            return;
        }
        self.coordinator_up = false;
        self.stats.coordinator_crashes += 1;
        self.queue
            .schedule(self.time + down_for, SimEvent::CoordinatorRecover);
    }

    fn handle(&mut self, event: SimEvent) {
        match event {
            SimEvent::DeliverToNode { node, message } => {
                self.stats.messages += 1;
                if !self.nodes[node.raw() as usize].is_up() {
                    self.stats.dropped += 1;
                    return;
                }
                match message {
                    Message::Prepare { txn, ops } => {
                        self.nodes[node.raw() as usize].prepare(txn, ops);
                        self.send_to_coordinator(Message::PrepareAck { txn, node });
                        let at = self.time + self.cfg.decision_timeout;
                        self.queue.schedule(
                            at,
                            SimEvent::ResendAck {
                                node,
                                txn,
                                attempt: 1,
                            },
                        );
                    }
                    Message::Decision { txn, commit } => {
                        self.nodes[node.raw() as usize].decide(txn, commit);
                    }
                    Message::PrepareAck { .. } => {}
                }
            }
            SimEvent::DeliverToCoordinator { message } => {
                self.stats.messages += 1;
                if !self.coordinator_up {
                    self.stats.dropped += 1;
                    return;
                }
                if let Message::PrepareAck { txn, node } = message {
                    if let Some(&commit) = self.decisions.get(&txn) {
                        // Already decided: the participant evidently has
                        // not heard — re-send the decision.
                        self.send_to_node(node, Message::Decision { txn, commit });
                        return;
                    }
                    let all_acked = match self.pending.get_mut(&txn) {
                        Some(p) => {
                            p.acks.insert(node);
                            p.acks.len() == p.participants.len()
                        }
                        None => false,
                    };
                    if all_acked {
                        self.decide(txn, true);
                    }
                }
            }
            SimEvent::Timeout { txn } => {
                if !self.coordinator_up {
                    // The coordinator cannot decide while down; retry the
                    // timeout after it recovers.
                    let at = self.time + self.cfg.retry_interval;
                    self.queue.schedule(at, SimEvent::Timeout { txn });
                    return;
                }
                if !self.decisions.contains_key(&txn) {
                    self.decide(txn, false);
                }
            }
            SimEvent::Recover { node } => {
                let outcome = self.nodes[node.raw() as usize].recover();
                self.stats.recoveries += 1;
                self.stats.redo_records += outcome.redone.len() as u64;
                self.stats.in_doubt += outcome.in_doubt.len() as u64;
                for txn in outcome.in_doubt {
                    self.resolve_or_retry(node, txn);
                }
            }
            SimEvent::RetryResolve { node, txn } => {
                if self.nodes[node.raw() as usize].is_up() {
                    self.resolve_or_retry(node, txn);
                }
            }
            SimEvent::ResendAck { node, txn, attempt } => {
                let n = &self.nodes[node.raw() as usize];
                let undecided = n.is_up() && n.prepared(txn) && n.outcome(txn).is_none();
                if undecided && attempt <= self.cfg.max_resends {
                    self.stats.resends += 1;
                    self.send_to_coordinator(Message::PrepareAck { txn, node });
                    let at = self.time + self.cfg.decision_timeout;
                    self.queue.schedule(
                        at,
                        SimEvent::ResendAck {
                            node,
                            txn,
                            attempt: attempt + 1,
                        },
                    );
                }
            }
            SimEvent::ResendPrepare { txn, node, attempt } => {
                let undecided = !self.decisions.contains_key(&txn);
                let unacked = self
                    .pending
                    .get(&txn)
                    .map(|p| !p.acks.contains(&node))
                    .unwrap_or(false);
                if self.coordinator_up && undecided && unacked && attempt <= self.cfg.max_resends {
                    if let Some(ops) = self.staged.get(&(txn, node)).cloned() {
                        self.stats.resends += 1;
                        self.send_to_node(node, Message::Prepare { txn, ops });
                        let at = self.time + self.cfg.decision_timeout;
                        self.queue.schedule(
                            at,
                            SimEvent::ResendPrepare {
                                txn,
                                node,
                                attempt: attempt + 1,
                            },
                        );
                    }
                }
            }
            SimEvent::CoordinatorRecover => {
                self.coordinator_up = true;
            }
            SimEvent::AuditAttempt { id, ts } => {
                if self.audit_ready(ts) {
                    self.perform_audit(id, ts);
                } else {
                    let at = self.time + self.cfg.retry_interval;
                    self.queue.schedule(at, SimEvent::AuditAttempt { id, ts });
                }
            }
        }
    }

    fn decide(&mut self, txn: ActivityId, commit: bool) {
        self.decisions.insert(txn, commit);
        // Simulated-time latency from submission to the decision; the
        // remove also makes a duplicate decision metrics-silent.
        let sim_ns = self.submit_times.remove(&txn).map(|t0| {
            let delta = self.time.saturating_sub(t0);
            delta.saturating_mul(1_000)
        });
        if commit {
            self.stats.committed += 1;
            self.ts_clock += 1;
            self.commit_ts.insert(txn, self.ts_clock);
            if sim_ns.is_some() {
                self.metrics.txn_committed(txn, sim_ns);
            }
        } else {
            self.stats.aborted += 1;
            if sim_ns.is_some() {
                self.metrics
                    .txn_aborted(txn, Some(AbortReason::PrepareFailed));
            }
        }
        let participants = self
            .pending
            .get(&txn)
            .map(|p| p.participants.clone())
            .unwrap_or_default();
        for node in participants {
            self.send_to_node(node, Message::Decision { txn, commit });
        }
    }

    fn resolve_or_retry(&mut self, node: NodeId, txn: ActivityId) {
        match self.decisions.get(&txn) {
            Some(&commit) => self.nodes[node.raw() as usize].resolve(txn, commit),
            None => {
                let at = self.time + self.cfg.retry_interval;
                self.queue
                    .schedule(at, SimEvent::RetryResolve { node, txn });
            }
        }
    }

    /// Access to a node (inspection).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.raw() as usize]
    }

    /// All node identifiers.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.cfg.nodes).map(NodeId::new).collect()
    }

    /// Forces every node up (running recovery where needed) and drains the
    /// queue — the "eventually everything heals" endpoint of a scenario.
    pub fn heal(&mut self) {
        for n in 0..self.cfg.nodes {
            if !self.nodes[n as usize].is_up() {
                let outcome = self.nodes[n as usize].recover();
                self.stats.recoveries += 1;
                self.stats.redo_records += outcome.redone.len() as u64;
                self.stats.in_doubt += outcome.in_doubt.len() as u64;
                for txn in outcome.in_doubt {
                    self.resolve_or_retry(NodeId::new(n), txn);
                }
            }
        }
        self.run_to_quiescence();
    }

    /// Verifies all-or-nothing: for every decided transaction, each
    /// participant's durable outcome matches the coordinator's decision
    /// (prepared-but-unresolved participants only allowed while in doubt).
    ///
    /// # Errors
    ///
    /// Describes the first violated transaction.
    pub fn verify_atomicity(&self) -> Result<(), String> {
        for (&txn, &commit) in &self.decisions {
            let participants = match self.pending.get(&txn) {
                Some(p) => &p.participants,
                None => continue,
            };
            for &node in participants {
                let n = self.node(node);
                match n.outcome(txn) {
                    Some(o) if o == commit => {}
                    Some(o) => {
                        return Err(format!(
                            "txn {txn} decided {commit} but {node} recorded {o}"
                        ))
                    }
                    None => {
                        // Never prepared (prepare lost to a crash) is fine
                        // only for aborted transactions.
                        if commit && n.prepared(txn) {
                            return Err(format!("txn {txn} committed but {node} left it in doubt"));
                        }
                        if commit && !n.prepared(txn) {
                            return Err(format!("txn {txn} committed but {node} never prepared"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies conservation: the committed grand total equals the initial
    /// grand total (transfers move money, they never create it).
    ///
    /// # Errors
    ///
    /// Reports the delta if violated.
    pub fn verify_conservation(&self) -> Result<(), String> {
        let expected = self.account_count() * self.cfg.initial_balance;
        let actual: i64 = self.nodes.iter().map(Node::committed_total).sum();
        if actual == expected {
            Ok(())
        } else {
            Err(format!("total {actual} != expected {expected}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_track_decisions_in_simulated_time() {
        let mut cluster = Cluster::new(SimConfig::default());
        cluster.enable_metrics();
        for i in 0..5 {
            cluster.submit_transfer(i, i + 1, 1);
        }
        cluster.run_to_quiescence();
        let snap = cluster.metrics().snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.txns_begun, 5);
        assert_eq!(
            snap.txns_committed + snap.txns_aborted,
            5,
            "every submitted transfer must be decided"
        );
        assert_eq!(snap.commit_ns.count, snap.txns_committed);
        if snap.txns_committed > 0 {
            // Decisions take at least one message round trip of simulated
            // time, so the histogram carries nonzero latencies.
            assert!(snap.commit_ns.percentile(0.5).unwrap_or(0) > 0);
        }
    }

    #[test]
    fn disabled_metrics_cost_nothing_and_count_nothing() {
        let mut cluster = Cluster::new(SimConfig::default());
        cluster.submit_transfer(0, 1, 1);
        cluster.run_to_quiescence();
        let snap = cluster.metrics().snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.txns_begun, 0);
    }

    #[test]
    fn transfer_commits_and_conserves() {
        let mut cluster = Cluster::new(SimConfig::default());
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(txn), Some(true));
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.aborted, 0);
    }

    #[test]
    fn many_transfers_deterministic() {
        let run = |seed| {
            let mut cluster = Cluster::new(SimConfig {
                seed,
                ..SimConfig::default()
            });
            for i in 0..50 {
                let from = i % cluster.account_count();
                let to = (i * 7 + 3) % cluster.account_count();
                if from != to {
                    cluster.submit_transfer(from, to, 5);
                }
            }
            cluster.run_to_quiescence();
            cluster.verify_atomicity().unwrap();
            cluster.verify_conservation().unwrap();
            cluster.stats().clone()
        };
        assert_eq!(run(7), run(7), "same seed must reproduce identical runs");
        assert_eq!(run(7).aborted, 0);
    }

    #[test]
    fn crash_before_prepare_aborts_atomically() {
        let mut cluster = Cluster::new(SimConfig::default());
        // Crash the destination node before any event processes.
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.schedule_crash(0, cluster.home_of(1), 60_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert_eq!(
            cluster.decision(txn),
            Some(false),
            "missing vote must abort"
        );
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn crash_after_prepare_recovers_commit() {
        let mut cluster = Cluster::new(SimConfig::default());
        let txn = cluster.submit_transfer(0, 1, 30);
        // Let prepares and acks flow (events 0..4), then crash a
        // participant before the decision reaches it.
        cluster.run_events(4);
        let victim = cluster.home_of(0);
        cluster.schedule_crash(cluster.stats().events, victim, 20_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert_eq!(cluster.decision(txn), Some(true));
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
        assert!(cluster.stats().recoveries >= 1);
    }

    #[test]
    fn crash_sweep_every_event_point_stays_atomic() {
        // The E6 core loop in miniature: crash each node at every event
        // index of a single transfer; atomicity and conservation must hold
        // at every point.
        let baseline = {
            let mut c = Cluster::new(SimConfig::default());
            c.submit_transfer(0, 1, 30);
            c.run_to_quiescence();
            c.stats().events
        };
        for crash_at in 0..=baseline {
            for node in 0..SimConfig::default().nodes {
                let mut c = Cluster::new(SimConfig::default());
                let txn = c.submit_transfer(0, 1, 30);
                c.schedule_crash(crash_at, NodeId::new(node), 30_000);
                c.run_to_quiescence();
                c.heal();
                assert!(
                    c.decision(txn).is_some(),
                    "crash@{crash_at} {node}: undecided after heal"
                );
                c.verify_atomicity()
                    .unwrap_or_else(|e| panic!("crash@{crash_at} n{node}: {e}"));
                c.verify_conservation()
                    .unwrap_or_else(|e| panic!("crash@{crash_at} n{node}: {e}"));
            }
        }
    }

    #[test]
    fn lossy_network_still_terminates_and_stays_atomic() {
        let mut cluster = Cluster::new(SimConfig {
            drop_probability: 0.25,
            duplicate_probability: 0.15,
            seed: 99,
            ..SimConfig::default()
        });
        for i in 0..20i64 {
            let n = cluster.account_count();
            let (from, to) = (i % n, (i * 3 + 1) % n);
            if from != to {
                cluster.submit_transfer(from, to, 5);
            }
        }
        cluster.run_to_quiescence();
        cluster.heal();
        let stats = cluster.stats().clone();
        assert!(stats.lost > 0, "loss injection must fire");
        assert!(stats.duplicated > 0, "duplication injection must fire");
        assert!(stats.committed > 0, "retransmission must recover commits");
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn long_coordinator_outage_aborts_safely() {
        // The coordinator is down past the vote timeout: on recovery the
        // rescheduled timeout fires first and the transfer is (correctly,
        // presumed-abort) aborted — atomically at every participant.
        let mut cluster = Cluster::new(SimConfig::default());
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.schedule_coordinator_crash(1, 15_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert!(cluster.coordinator_is_up());
        assert_eq!(cluster.decision(txn), Some(false));
        assert!(cluster.stats().coordinator_crashes >= 1);
        assert!(cluster.stats().resends > 0, "votes must be re-sent");
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
        // The system is healthy again: a new transfer commits.
        let txn2 = cluster.submit_transfer(2, 3, 10);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(txn2), Some(true));
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn short_coordinator_outage_is_bridged_by_vote_resends() {
        // Downtime shorter than the vote timeout: the acks lost during the
        // outage are re-sent after recovery and the transfer commits.
        let mut cluster = Cluster::new(SimConfig {
            decision_timeout: 1_200,
            ..SimConfig::default()
        });
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.schedule_coordinator_crash(1, 3_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert_eq!(cluster.decision(txn), Some(true));
        assert!(cluster.stats().resends > 0, "votes must be re-sent");
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn coordinator_and_node_crash_together() {
        let mut cluster = Cluster::new(SimConfig::default());
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.schedule_coordinator_crash(2, 20_000);
        cluster.schedule_crash(3, cluster.home_of(0), 10_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert!(cluster.decision(txn).is_some());
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn duplicated_decisions_apply_once() {
        let mut cluster = Cluster::new(SimConfig {
            duplicate_probability: 1.0, // every message duplicated
            seed: 3,
            ..SimConfig::default()
        });
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(txn), Some(true));
        // Idempotent application: the debited/credited amounts are exact.
        cluster.verify_conservation().unwrap();
        cluster.verify_atomicity().unwrap();
        assert!(cluster.stats().duplicated > 0);
    }

    #[test]
    fn distributed_audits_always_see_conserved_totals() {
        // Audits interleaved with transfers, a node crash, message loss,
        // and duplication: every completed audit must observe exactly the
        // conserved grand total — hybrid atomicity's read-only guarantee,
        // distributed.
        let mut cluster = Cluster::new(SimConfig {
            drop_probability: 0.15,
            duplicate_probability: 0.1,
            seed: 23,
            ..SimConfig::default()
        });
        let expected = cluster.account_count() * 100;
        for i in 0..15i64 {
            let n = cluster.account_count();
            let (from, to) = (i % n, (i * 3 + 1) % n);
            if from != to {
                cluster.submit_transfer(from, to, 5);
            }
            if i % 3 == 0 {
                cluster.submit_audit();
            }
            // Let a slice of the protocol run between submissions.
            cluster.run_events(4);
        }
        cluster.schedule_crash(cluster.stats().events + 2, NodeId::new(1), 20_000);
        cluster.run_to_quiescence();
        cluster.heal();
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
        let results = cluster.audit_results();
        assert!(!results.is_empty(), "audits must complete");
        for (ts, total) in results {
            assert_eq!(*total, expected, "audit@{ts} observed a torn total");
        }
    }

    #[test]
    fn audit_timestamps_partition_commits() {
        // An audit submitted between two transfers sees the first and not
        // the second.
        let mut cluster = Cluster::new(SimConfig::default());
        let t1 = cluster.submit_transfer(0, 1, 30);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(t1), Some(true));
        cluster.submit_audit();
        let t2 = cluster.submit_transfer(2, 3, 10);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(t2), Some(true));
        let results = cluster.audit_results();
        assert_eq!(results.len(), 1);
        // Totals are conserved whichever transfers are included, so the
        // partition is visible through per-node snapshots instead.
        let expected = cluster.account_count() * 100;
        assert_eq!(results[0].1, expected);
        // t1 (ts 1) is included by an audit at ts 2, t2 (ts 3) is not.
        let n0 = cluster.home_of(0);
        let with_t1 = cluster.node(n0).committed_total_at(|t| t == t1);
        let without = cluster.node(n0).committed_total_at(|_| false);
        assert_eq!(with_t1, without - 30, "t1 debited 30 at node n0");
    }

    #[test]
    fn home_placement_is_stable() {
        let cluster = Cluster::new(SimConfig::default());
        for k in 0..cluster.account_count() {
            assert_eq!(cluster.home_of(k).raw() as i64, k % 4);
        }
    }
}
