//! The cluster: the deterministic event loop that owns the nodes, the
//! fault-injecting network, the two-phase-commit coordinator, crash
//! injection (scheduled and MTTF-driven), checkpointed invariant
//! checking, and the replayable event trace.
//!
//! Everything here is a pure function of [`SimConfig`] (most importantly
//! its seed): logical time advances only when events are processed, every
//! random draw comes from a [`SimRng`] stream split per component, and
//! all iteration is over ordered maps — so the same seed replays the same
//! run bit-for-bit, which [`Cluster::trace_hash`] and
//! [`Cluster::state_digest`] make checkable.

use crate::invariant::{InvariantChecker, Violation};
use crate::message::{Endpoint, Message, NodeId, SimEvent};
use crate::model::{Action, ClientRequest, DeterministicClient, DeterministicNode, NodeTimer};
use crate::network::{FaultConfig, NetStats, Network};
use crate::node::Node;
use crate::partition::{PartitionSchedule, PartitionWindow};
use crate::queue::EventQueue;
use crate::rng::{fnv1a, SimRng};
use atomicity_core::{AbortReason, MetricsRegistry};
use atomicity_spec::specs::KvMapSpec;
use atomicity_spec::{op, ActivityId, Event, History, ObjectId, OpResult, SystemSpec, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Mean-time-to-failure crash injection: each node's failure clock draws
/// crash and repair intervals from its own random stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttfConfig {
    /// Mean uptime between a node's crashes (simulated microseconds).
    pub mean_uptime: u64,
    /// Mean downtime before the node restarts and recovers.
    pub mean_downtime: u64,
    /// Bound on MTTF crashes per node, so runs terminate.
    pub max_crashes_per_node: u32,
}

impl Default for MttfConfig {
    fn default() -> Self {
        MttfConfig {
            mean_uptime: 30_000,
            mean_downtime: 8_000,
            max_crashes_per_node: 2,
        }
    }
}

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of nodes; account `k` lives on node `k % nodes`.
    pub nodes: u32,
    /// Accounts per node.
    pub accounts_per_node: u32,
    /// Initial balance of every account.
    pub initial_balance: i64,
    /// Root RNG seed: the run is a pure function of this value.
    pub seed: u64,
    /// Minimum one-way message latency (simulated microseconds).
    pub min_latency: u64,
    /// Maximum one-way message latency.
    pub max_latency: u64,
    /// Coordinator prepare timeout: missing votes ⇒ abort.
    pub prepare_timeout: u64,
    /// Interval at which a recovered node re-asks for in-doubt outcomes.
    pub retry_interval: u64,
    /// Probability a message is lost in transit (deterministic per seed).
    pub drop_probability: f64,
    /// Probability each potential extra copy of a message is delivered.
    pub duplicate_probability: f64,
    /// How long a participant waits for a decision before re-sending its
    /// vote (and the coordinator its prepare).
    pub decision_timeout: u64,
    /// Bound on retransmissions per message.
    pub max_resends: u32,
    /// Bound on extra copies per message (duplication factor).
    pub max_duplicates: u32,
    /// Probability a delivery is deferred by a reorder boost.
    pub reorder_probability: f64,
    /// Maximum extra delay added to a reordered delivery.
    pub reorder_extra: u64,
    /// Explicit partition windows (see [`PartitionWindow`]).
    pub partitions: Vec<PartitionWindow>,
    /// Mean-time-to-failure crash injection; `None` disables it.
    pub mttf: Option<MttfConfig>,
    /// Run the registered invariant checkers every this many processed
    /// events; `0` checks only at [`Cluster::heal`].
    pub checkpoint_every: u64,
    /// Record a formatted line per processed event (see
    /// [`Cluster::trace`]); the rolling [`Cluster::trace_hash`] is kept
    /// either way.
    pub record_trace: bool,
    /// Record the run as a [`History`] (invoke/respond at prepare,
    /// commit-timestamp/abort at decision) for the certifier checker.
    pub record_history: bool,
    /// Inject the demonstration bug: the coordinator, having committed,
    /// presumes abort for the last participant (as if its ack had been
    /// lost) and tells it so — a durable all-or-nothing violation the
    /// invariant checkers must catch.
    pub demo_lost_ack: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 4,
            accounts_per_node: 4,
            initial_balance: 100,
            seed: 42,
            min_latency: 50,
            max_latency: 500,
            prepare_timeout: 5_000,
            retry_interval: 1_000,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            decision_timeout: 2_000,
            max_resends: 8,
            max_duplicates: 1,
            reorder_probability: 0.0,
            reorder_extra: 2_000,
            partitions: Vec::new(),
            mttf: None,
            checkpoint_every: 0,
            record_trace: false,
            record_history: false,
            demo_lost_ack: false,
        }
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Transactions the coordinator decided to commit.
    pub committed: u64,
    /// Transactions the coordinator decided to abort (timeouts).
    pub aborted: u64,
    /// Messages delivered (including drops to down nodes).
    pub messages: u64,
    /// Messages dropped because the destination was down.
    pub dropped: u64,
    /// Messages lost in transit (network loss injection).
    pub lost: u64,
    /// Extra message copies delivered (duplication injection).
    pub duplicated: u64,
    /// Deliveries deferred by a reorder boost.
    pub reordered: u64,
    /// Messages refused because the link crossed an active partition.
    pub cut: u64,
    /// Vote/prepare retransmissions performed.
    pub resends: u64,
    /// Node crashes injected (scheduled and MTTF).
    pub crashes: u64,
    /// Crashes due to the MTTF failure clocks specifically.
    pub mttf_crashes: u64,
    /// Coordinator crashes injected.
    pub coordinator_crashes: u64,
    /// Node recoveries performed.
    pub recoveries: u64,
    /// Committed intentions redone during recoveries.
    pub redo_records: u64,
    /// In-doubt transactions found during recoveries.
    pub in_doubt: u64,
    /// Individual invariant checks run at checkpoints.
    pub invariant_checks: u64,
    /// Events processed.
    pub events: u64,
}

#[derive(Debug)]
struct PendingTxn {
    participants: Vec<NodeId>,
    acks: BTreeSet<NodeId>,
}

#[derive(Debug, Clone, Copy)]
enum CrashTarget {
    Node(NodeId),
    Coordinator,
}

#[derive(Debug, Clone, Copy)]
struct CrashPoint {
    at_event: u64,
    target: CrashTarget,
    down_for: u64,
}

/// A simulated distributed transaction system: sharded bank accounts,
/// two-phase commit, fault-injecting network, crashes, recovery, and
/// checkpointed invariant checking.
///
/// See the crate docs for an end-to-end example.
pub struct Cluster {
    cfg: SimConfig,
    time: u64,
    queue: EventQueue,
    nodes: Vec<Node>,
    network: Network,
    /// The run's root stream; only split from, never drawn from.
    root: SimRng,
    /// Latency draws for audit submissions.
    audit_rng: SimRng,
    /// Per-node failure clocks.
    mttf_rngs: Vec<SimRng>,
    mttf_count: Vec<u32>,
    next_txn: u32,
    /// Coordinator durable state: decided outcomes (never lost — the
    /// coordinator is modeled as reliable; participant crashes are the
    /// interesting failures for recoverability).
    decisions: BTreeMap<ActivityId, bool>,
    pending: BTreeMap<ActivityId, PendingTxn>,
    /// Intentions per (txn, node), kept by the coordinator for retransmission.
    staged: BTreeMap<(ActivityId, NodeId), Vec<OpResult>>,
    crash_plan: Vec<CrashPoint>,
    coordinator_up: bool,
    /// Commit timestamps assigned at decision time (hybrid atomicity for
    /// the distributed setting); shared counter with audit timestamps.
    commit_ts: BTreeMap<ActivityId, u64>,
    ts_clock: u64,
    /// Completed audits: (timestamp, observed grand total).
    audit_results: Vec<(u64, i64)>,
    next_audit: usize,
    stats: SimStats,
    /// Observability sink (disabled unless [`Cluster::enable_metrics`] is
    /// called): transaction begin/commit/abort counts and the
    /// submit-to-decision latency histogram in simulated time.
    metrics: MetricsRegistry,
    /// Simulated submission time per undecided transaction.
    submit_times: BTreeMap<ActivityId, u64>,
    /// Deterministic workload sources (`None` transiently while ticking).
    clients: Vec<Option<Box<dyn DeterministicClient>>>,
    /// Checkpoint invariants (`mem::take`n while running, so a checker
    /// sees the cluster without itself).
    checkers: Vec<Box<dyn InvariantChecker>>,
    violations: Vec<Violation>,
    /// The recorded run, when [`SimConfig::record_history`] is set.
    history: Option<History>,
    /// Formatted processed events, when [`SimConfig::record_trace`] is set.
    trace: Vec<String>,
    trace_hash: u64,
    /// Called with the node id before each recovery — the hook through
    /// which a simulated restart re-opens the real on-disk WAL.
    restart_hook: Option<Box<dyn FnMut(NodeId)>>,
    /// `(txn, node)` pairs the demo bug lied to (told abort on a commit).
    demo_victims: BTreeSet<(ActivityId, NodeId)>,
    /// Set by [`Cluster::heal`]: failure injection is over, drain cleanly.
    quiescing: bool,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("cfg", &self.cfg)
            .field("time", &self.time)
            .field("stats", &self.stats)
            .field("violations", &self.violations)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Creates the cluster with all accounts at their initial balance,
    /// each node backed by the in-memory simulated stable log.
    pub fn new(cfg: SimConfig) -> Self {
        Cluster::with_log_factory(cfg, |_id| {
            Arc::new(atomicity_core::recovery::StableLog::new()) as _
        })
    }

    /// Creates the cluster with each node's durable log supplied by
    /// `factory` — the hook for running the same protocol and crash
    /// sweeps over the on-disk WAL (`experiments e6 --disk`, and the
    /// simulated-restart tests via `RestartableWal`). The factory must
    /// hand out logs that sync on the calling thread (no background
    /// flusher) or the simulation loses determinism.
    pub fn with_log_factory(
        cfg: SimConfig,
        factory: impl Fn(NodeId) -> Arc<dyn atomicity_core::DurableLog>,
    ) -> Self {
        let nodes: Vec<Node> = (0..cfg.nodes)
            .map(|n| {
                let accounts = (0..cfg.accounts_per_node)
                    .map(|i| ((i * cfg.nodes + n) as i64, cfg.initial_balance));
                let id = NodeId::new(n);
                let mut node = Node::with_log(id, accounts, factory(id));
                node.configure_retransmit(cfg.decision_timeout, cfg.max_resends);
                node
            })
            .collect();
        let root = SimRng::new(cfg.seed);
        let faults = FaultConfig {
            min_latency: cfg.min_latency,
            max_latency: cfg.max_latency,
            drop_probability: cfg.drop_probability,
            duplicate_probability: cfg.duplicate_probability,
            max_duplicates: cfg.max_duplicates,
            reorder_probability: cfg.reorder_probability,
            reorder_extra: cfg.reorder_extra,
        };
        let mut schedule = PartitionSchedule::new();
        for w in &cfg.partitions {
            schedule.add(w.clone());
        }
        let network = Network::new(root.split("network", 0), faults, schedule);
        let mttf_rngs: Vec<SimRng> = (0..cfg.nodes)
            .map(|n| root.split("mttf", u64::from(n)))
            .collect();
        let history = cfg.record_history.then(History::new);
        let mut cluster = Cluster {
            audit_rng: root.split("audit", 0),
            mttf_count: vec![0; cfg.nodes as usize],
            mttf_rngs,
            root,
            network,
            cfg,
            time: 0,
            queue: EventQueue::new(),
            nodes,
            next_txn: 1,
            decisions: BTreeMap::new(),
            pending: BTreeMap::new(),
            staged: BTreeMap::new(),
            crash_plan: Vec::new(),
            coordinator_up: true,
            commit_ts: BTreeMap::new(),
            ts_clock: 0,
            audit_results: Vec::new(),
            next_audit: 0,
            stats: SimStats::default(),
            metrics: MetricsRegistry::disabled(),
            submit_times: BTreeMap::new(),
            clients: Vec::new(),
            checkers: Vec::new(),
            violations: Vec::new(),
            history,
            trace: Vec::new(),
            trace_hash: fnv1a(b"trace"),
            restart_hook: None,
            demo_victims: BTreeSet::new(),
            quiescing: false,
        };
        if cluster.cfg.mttf.is_some() {
            for n in 0..cluster.cfg.nodes {
                cluster.schedule_next_mttf(NodeId::new(n), 0);
            }
        }
        cluster
    }

    /// Turns on metrics collection: subsequent transactions are counted
    /// in a fresh [`MetricsRegistry`], with the commit-path histogram fed
    /// the submit-to-decision latency in **simulated** nanoseconds (one
    /// simulated time unit = 1µs).
    pub fn enable_metrics(&mut self) {
        self.metrics = MetricsRegistry::new();
    }

    /// The cluster's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The configuration this cluster runs under.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The current logical time (simulated microseconds).
    pub fn now(&self) -> u64 {
        self.time
    }

    /// The node an account lives on.
    pub fn home_of(&self, account: i64) -> NodeId {
        NodeId::new((account.rem_euclid(i64::from(self.cfg.nodes))) as u32)
    }

    /// Total number of accounts.
    pub fn account_count(&self) -> i64 {
        i64::from(self.cfg.nodes) * i64::from(self.cfg.accounts_per_node)
    }

    /// The conserved grand total: every account at its initial balance.
    pub fn initial_total(&self) -> i64 {
        self.account_count() * self.cfg.initial_balance
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The network's traffic counters.
    pub fn network_stats(&self) -> NetStats {
        *self.network.stats()
    }

    /// The coordinator's durable decision for `txn`, if made.
    pub fn decision(&self, txn: ActivityId) -> Option<bool> {
        self.decisions.get(&txn).copied()
    }

    /// Every decided transaction with its outcome, in transaction order.
    pub fn decided(&self) -> Vec<(ActivityId, bool)> {
        self.decisions.iter().map(|(&t, &c)| (t, c)).collect()
    }

    /// The participants of `txn` (empty if unknown).
    pub fn participants_of(&self, txn: ActivityId) -> Vec<NodeId> {
        self.pending
            .get(&txn)
            .map(|p| p.participants.clone())
            .unwrap_or_default()
    }

    /// The system specification of the cluster's shards (object `n+1` is
    /// node `n`'s account map) — what the certifier checks the recorded
    /// history against.
    pub fn system_spec(&self) -> SystemSpec {
        let mut spec = SystemSpec::new();
        for n in 0..self.cfg.nodes {
            let accounts = (0..self.cfg.accounts_per_node)
                .map(|i| ((i * self.cfg.nodes + n) as i64, self.cfg.initial_balance));
            spec = spec.with_object(ObjectId::new(n + 1), KvMapSpec::with_initial(accounts));
        }
        spec
    }

    /// The recorded history, when [`SimConfig::record_history`] is set.
    pub fn history(&self) -> Option<&History> {
        self.history.as_ref()
    }

    /// Registers a checkpoint invariant (see
    /// [`SimConfig::checkpoint_every`]; [`Cluster::heal`] always runs a
    /// final checkpoint).
    pub fn add_checker(&mut self, checker: Box<dyn InvariantChecker>) {
        self.checkers.push(checker);
    }

    /// Invariant violations observed so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Registers a deterministic workload client and schedules its first
    /// tick now; returns its index. Split its stream off
    /// [`Cluster::client_rng`] so its draws stay isolated.
    pub fn add_client(&mut self, client: Box<dyn DeterministicClient>) -> usize {
        let index = self.clients.len();
        self.clients.push(Some(client));
        self.queue
            .schedule(self.time, SimEvent::ClientTick { client: index });
        index
    }

    /// The dedicated random stream for client `index`.
    pub fn client_rng(&self, index: u64) -> SimRng {
        self.root.split("client", index)
    }

    /// Installs a hook called with the node id just before every node
    /// recovery — the place to re-open an on-disk WAL from its directory
    /// so a simulated restart exercises the real recovery path.
    pub fn set_restart_hook(&mut self, hook: impl FnMut(NodeId) + 'static) {
        self.restart_hook = Some(Box::new(hook));
    }

    /// The formatted event trace (empty unless
    /// [`SimConfig::record_trace`] is set).
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Rolling order-sensitive hash of every processed event — equal
    /// between two runs iff they processed identical event sequences.
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }

    /// An order-insensitive digest of the externally observable final
    /// state: decisions, commit timestamps, per-node durable state, audit
    /// results, and counters. Two runs of the same seed must agree.
    pub fn state_digest(&self) -> u64 {
        let mut s = String::new();
        for (txn, commit) in &self.decisions {
            let _ = write!(s, "d{txn}={commit};");
        }
        for (txn, ts) in &self.commit_ts {
            let _ = write!(s, "c{txn}={ts};");
        }
        for node in &self.nodes {
            let committed = node.committed_total_at(|t| self.decisions.get(&t) == Some(&true));
            let _ = write!(
                s,
                "n{}:up={},log={},total={};",
                node.id(),
                node.is_up(),
                node.stable_log_len(),
                committed
            );
        }
        for (ts, total) in &self.audit_results {
            let _ = write!(s, "a{ts}={total};");
        }
        let _ = write!(s, "{:?}", self.stats);
        fnv1a(s.as_bytes())
    }

    /// Schedules a crash of `node` just before the `at_event`-th processed
    /// event; the node recovers after `down_for` simulated microseconds.
    pub fn schedule_crash(&mut self, at_event: u64, node: NodeId, down_for: u64) {
        self.crash_plan.push(CrashPoint {
            at_event,
            target: CrashTarget::Node(node),
            down_for,
        });
    }

    /// Schedules a crash of the *coordinator* just before the
    /// `at_event`-th processed event. Its decision log is durable;
    /// participants block (classic two-phase commit) and re-send their
    /// votes until it returns after `down_for`.
    pub fn schedule_coordinator_crash(&mut self, at_event: u64, down_for: u64) {
        self.crash_plan.push(CrashPoint {
            at_event,
            target: CrashTarget::Coordinator,
            down_for,
        });
    }

    /// Whether the coordinator is currently up.
    pub fn coordinator_is_up(&self) -> bool {
        self.coordinator_up
    }

    /// Submits a timestamped read-only audit (§4.3 in the distributed
    /// setting): it takes the next timestamp and will observe exactly the
    /// transfers committed with smaller timestamps, retrying until those
    /// are applied at every participant. The result appears in
    /// [`Cluster::audit_results`].
    pub fn submit_audit(&mut self) -> usize {
        self.ts_clock += 1;
        let ts = self.ts_clock;
        let id = self.next_audit;
        self.next_audit += 1;
        let at = self.time
            + self
                .audit_rng
                .range(self.cfg.min_latency, self.cfg.max_latency);
        self.queue.schedule(at, SimEvent::AuditAttempt { id, ts });
        id
    }

    /// Completed audits as (timestamp, observed grand total) pairs.
    pub fn audit_results(&self) -> &[(u64, i64)] {
        &self.audit_results
    }

    /// Whether every committed transaction with commit timestamp below
    /// `ts` has been durably applied at each of its participants.
    fn audit_ready(&self, ts: u64) -> bool {
        for (txn, &cts) in &self.commit_ts {
            if cts >= ts {
                continue;
            }
            let Some(pending) = self.pending.get(txn) else {
                continue;
            };
            for &node in &pending.participants {
                let n = &self.nodes[node.raw() as usize];
                if !n.is_up() || n.outcome(*txn) != Some(true) {
                    return false;
                }
            }
        }
        true
    }

    fn perform_audit(&mut self, id: usize, ts: u64) {
        let include: Vec<ActivityId> = self
            .commit_ts
            .iter()
            .filter(|(_, &cts)| cts < ts)
            .map(|(&t, _)| t)
            .collect();
        let total: i64 = self
            .nodes
            .iter()
            .map(|n| n.committed_total_at(|t| include.contains(&t)))
            .sum();
        self.audit_results.push((ts, total));
        let _ = id;
    }

    /// Hands a message to the network; every planned copy becomes a
    /// delivery event. Network counters are mirrored into [`SimStats`].
    fn send(&mut self, src: Endpoint, dst: Endpoint, message: Message) {
        for at in self.network.plan(self.time, src, dst) {
            self.queue.schedule(
                at,
                SimEvent::Deliver {
                    dst,
                    message: message.clone(),
                },
            );
        }
        let net = *self.network.stats();
        self.stats.lost = net.lost;
        self.stats.duplicated = net.duplicated;
        self.stats.reordered = net.reordered;
        self.stats.cut = net.cut;
    }

    /// Submits a transfer moving `amount` from `from` to `to` (global
    /// account ids) at the current simulated time. Returns the
    /// transaction's identity.
    pub fn submit_transfer(&mut self, from: i64, to: i64, amount: i64) -> ActivityId {
        let txn = ActivityId::new(self.next_txn);
        self.next_txn += 1;
        self.metrics.txn_begun(txn);
        self.submit_times.insert(txn, self.time);
        let mut per_node: BTreeMap<NodeId, Vec<OpResult>> = BTreeMap::new();
        per_node
            .entry(self.home_of(from))
            .or_default()
            .push((op("adjust", [from, -amount]), Value::ok()));
        per_node
            .entry(self.home_of(to))
            .or_default()
            .push((op("adjust", [to, amount]), Value::ok()));
        let participants: Vec<NodeId> = per_node.keys().copied().collect();
        for (node, ops) in &per_node {
            self.staged.insert((txn, *node), ops.clone());
            self.send(
                Endpoint::Coordinator,
                Endpoint::Node(*node),
                Message::Prepare {
                    txn,
                    ops: ops.clone(),
                },
            );
            let at = self.time + self.cfg.decision_timeout;
            self.queue.schedule(
                at,
                SimEvent::ResendPrepare {
                    txn,
                    node: *node,
                    attempt: 1,
                },
            );
        }
        self.queue.schedule(
            self.time + self.cfg.prepare_timeout,
            SimEvent::Timeout { txn },
        );
        self.pending.insert(
            txn,
            PendingTxn {
                participants,
                acks: BTreeSet::new(),
            },
        );
        txn
    }

    /// Processes events until the queue drains (or `max_events`).
    pub fn run_to_quiescence(&mut self) -> &SimStats {
        self.run_events(u64::MAX)
    }

    /// Processes at most `max_events` events.
    pub fn run_events(&mut self, max_events: u64) -> &SimStats {
        let mut processed_now = 0;
        while processed_now < max_events {
            // Crash injection is keyed on the global processed-event count.
            let due: Vec<CrashPoint> = self
                .crash_plan
                .iter()
                .filter(|c| c.at_event <= self.stats.events)
                .copied()
                .collect();
            self.crash_plan.retain(|c| c.at_event > self.stats.events);
            for c in due {
                match c.target {
                    CrashTarget::Node(node) => self.crash(node, c.down_for),
                    CrashTarget::Coordinator => self.crash_coordinator(c.down_for),
                }
            }
            let Some(scheduled) = self.queue.pop() else {
                break;
            };
            self.time = self.time.max(scheduled.time);
            self.stats.events += 1;
            processed_now += 1;
            let line = format!("{:>10} {:?}", self.time, scheduled.event);
            self.trace_hash = self.trace_hash.rotate_left(5) ^ fnv1a(line.as_bytes());
            if self.cfg.record_trace {
                self.trace.push(line);
            }
            self.handle(scheduled.event);
            if self.cfg.checkpoint_every > 0
                && self.stats.events.is_multiple_of(self.cfg.checkpoint_every)
            {
                self.run_checkpoint();
            }
        }
        &self.stats
    }

    fn crash(&mut self, node: NodeId, down_for: u64) {
        let n = &mut self.nodes[node.raw() as usize];
        if !n.is_up() {
            return;
        }
        n.crash();
        self.stats.crashes += 1;
        self.queue
            .schedule(self.time + down_for, SimEvent::Recover { node });
    }

    fn crash_coordinator(&mut self, down_for: u64) {
        if !self.coordinator_up {
            return;
        }
        self.coordinator_up = false;
        self.stats.coordinator_crashes += 1;
        self.queue
            .schedule(self.time + down_for, SimEvent::CoordinatorRecover);
    }

    /// Schedules the next MTTF crash of `node` at `extra_delay` plus a
    /// drawn uptime from now.
    fn schedule_next_mttf(&mut self, node: NodeId, extra_delay: u64) {
        let Some(mttf) = self.cfg.mttf else {
            return;
        };
        let i = node.raw() as usize;
        let uptime = self.mttf_rngs[i].around(mttf.mean_uptime);
        self.queue.schedule(
            self.time + extra_delay + uptime,
            SimEvent::MttfCrash { node },
        );
    }

    /// Runs recovery on `node` (restart hook first, so on-disk logs
    /// re-open), accounts for it, and kicks off in-doubt resolution.
    fn restart_node(&mut self, node: NodeId) {
        if let Some(hook) = self.restart_hook.as_mut() {
            hook(node);
        }
        let outcome = self.nodes[node.raw() as usize].recover();
        self.stats.recoveries += 1;
        self.stats.redo_records += outcome.redone.len() as u64;
        self.stats.in_doubt += outcome.in_doubt.len() as u64;
        for txn in outcome.in_doubt {
            self.resolve_or_retry(node, txn);
        }
    }

    fn handle(&mut self, event: SimEvent) {
        match event {
            SimEvent::Deliver {
                dst: Endpoint::Node(node),
                message,
            } => {
                self.stats.messages += 1;
                let i = node.raw() as usize;
                if !self.nodes[i].online() {
                    self.stats.dropped += 1;
                    return;
                }
                // History bookkeeping needs the pre-delivery durable
                // state: was this prepare/decision fresh?
                let fresh_prepare = match &message {
                    Message::Prepare { txn, .. } => !self.nodes[i].prepared(*txn),
                    _ => false,
                };
                let fresh_decision = match &message {
                    Message::Decision { txn, .. } => self.nodes[i].outcome(*txn).is_none(),
                    _ => false,
                };
                if fresh_prepare {
                    if let Message::Prepare { txn, ops } = &message {
                        self.record_prepare_events(node, *txn, ops);
                    }
                }
                let actions = self.nodes[i].on_message(self.time, &message);
                if fresh_decision {
                    if let Message::Decision { txn, commit } = &message {
                        self.record_outcome_event(node, *txn, *commit);
                    }
                }
                self.process_actions(node, actions);
            }
            SimEvent::Deliver {
                dst: Endpoint::Coordinator,
                message,
            } => {
                self.stats.messages += 1;
                if !self.coordinator_up {
                    self.stats.dropped += 1;
                    return;
                }
                if let Message::PrepareAck { txn, node } = message {
                    if let Some(&commit) = self.decisions.get(&txn) {
                        // Already decided: the participant evidently has
                        // not heard — re-send the decision (the demo bug
                        // keeps lying to its victims).
                        let commit = commit && !self.demo_victims.contains(&(txn, node));
                        self.send(
                            Endpoint::Coordinator,
                            Endpoint::Node(node),
                            Message::Decision { txn, commit },
                        );
                        return;
                    }
                    let all_acked = match self.pending.get_mut(&txn) {
                        Some(p) => {
                            p.acks.insert(node);
                            p.acks.len() == p.participants.len()
                        }
                        None => false,
                    };
                    if all_acked {
                        self.decide(txn, true);
                    }
                }
            }
            SimEvent::Timeout { txn } => {
                if !self.coordinator_up {
                    // The coordinator cannot decide while down; retry the
                    // timeout after it recovers.
                    let at = self.time + self.cfg.retry_interval;
                    self.queue.schedule(at, SimEvent::Timeout { txn });
                    return;
                }
                if !self.decisions.contains_key(&txn) {
                    self.decide(txn, false);
                }
            }
            SimEvent::Recover { node } => {
                self.restart_node(node);
            }
            SimEvent::RetryResolve { node, txn } => {
                if self.nodes[node.raw() as usize].is_up() {
                    self.resolve_or_retry(node, txn);
                }
            }
            SimEvent::ResendAck { node, txn, attempt } => {
                let actions = self.nodes[node.raw() as usize]
                    .on_timer(self.time, &NodeTimer::ResendAck { txn, attempt });
                if actions.iter().any(|a| matches!(a, Action::Send { .. })) {
                    self.stats.resends += 1;
                }
                self.process_actions(node, actions);
            }
            SimEvent::ResendPrepare { txn, node, attempt } => {
                let undecided = !self.decisions.contains_key(&txn);
                let unacked = self
                    .pending
                    .get(&txn)
                    .map(|p| !p.acks.contains(&node))
                    .unwrap_or(false);
                if self.coordinator_up && undecided && unacked && attempt <= self.cfg.max_resends {
                    if let Some(ops) = self.staged.get(&(txn, node)).cloned() {
                        self.stats.resends += 1;
                        self.send(
                            Endpoint::Coordinator,
                            Endpoint::Node(node),
                            Message::Prepare { txn, ops },
                        );
                        let at = self.time + self.cfg.decision_timeout;
                        self.queue.schedule(
                            at,
                            SimEvent::ResendPrepare {
                                txn,
                                node,
                                attempt: attempt + 1,
                            },
                        );
                    }
                }
            }
            SimEvent::CoordinatorRecover => {
                self.coordinator_up = true;
            }
            SimEvent::AuditAttempt { id, ts } => {
                if self.quiescing && !self.audit_ready(ts) {
                    // Failure injection is over: the coordinator answers
                    // lingering in-doubt queries directly so audits (and
                    // the run) terminate.
                    self.force_resolve_decided();
                }
                if self.audit_ready(ts) {
                    self.perform_audit(id, ts);
                } else if self.quiescing {
                    // Still not ready after everything healed and every
                    // in-doubt query was answered: some participant holds
                    // an outcome that contradicts its decision. Waiting
                    // longer cannot fix that — perform the audit anyway
                    // so it observes (and the checkers flag) the torn
                    // state instead of retrying forever.
                    self.perform_audit(id, ts);
                } else {
                    let at = self.time + self.cfg.retry_interval;
                    self.queue.schedule(at, SimEvent::AuditAttempt { id, ts });
                }
            }
            SimEvent::MttfCrash { node } => {
                let Some(mttf) = self.cfg.mttf else {
                    return;
                };
                if self.quiescing {
                    return;
                }
                let i = node.raw() as usize;
                if self.mttf_count[i] >= mttf.max_crashes_per_node {
                    return;
                }
                self.mttf_count[i] += 1;
                let downtime = self.mttf_rngs[i].around(mttf.mean_downtime);
                self.stats.mttf_crashes += 1;
                self.crash(node, downtime);
                self.schedule_next_mttf(node, downtime);
            }
            SimEvent::ClientTick { client } => {
                let Some(mut c) = self.clients.get_mut(client).and_then(Option::take) else {
                    return;
                };
                let turn = c.tick(self.time);
                self.clients[client] = Some(c);
                for request in turn.requests {
                    match request {
                        ClientRequest::Transfer { from, to, amount } => {
                            self.submit_transfer(from, to, amount);
                        }
                        ClientRequest::Audit => {
                            self.submit_audit();
                        }
                    }
                }
                if let Some(delay) = turn.next_tick {
                    self.queue
                        .schedule(self.time + delay, SimEvent::ClientTick { client });
                }
            }
        }
    }

    /// Executes a node's requested actions (sends and timers).
    fn process_actions(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { dst, message } => {
                    self.send(Endpoint::Node(node), dst, message);
                }
                Action::Timer {
                    delay,
                    timer: NodeTimer::ResendAck { txn, attempt },
                } => {
                    self.queue.schedule(
                        self.time + delay,
                        SimEvent::ResendAck { node, txn, attempt },
                    );
                }
            }
        }
    }

    fn decide(&mut self, txn: ActivityId, commit: bool) {
        self.decisions.insert(txn, commit);
        // Simulated-time latency from submission to the decision; the
        // remove also makes a duplicate decision metrics-silent.
        let sim_ns = self.submit_times.remove(&txn).map(|t0| {
            let delta = self.time.saturating_sub(t0);
            delta.saturating_mul(1_000)
        });
        if commit {
            self.stats.committed += 1;
            self.ts_clock += 1;
            self.commit_ts.insert(txn, self.ts_clock);
            if sim_ns.is_some() {
                self.metrics.txn_committed(txn, sim_ns);
            }
        } else {
            self.stats.aborted += 1;
            if sim_ns.is_some() {
                self.metrics
                    .txn_aborted(txn, Some(AbortReason::PrepareFailed));
            }
        }
        let participants = self
            .pending
            .get(&txn)
            .map(|p| p.participants.clone())
            .unwrap_or_default();
        let last = participants.len().saturating_sub(1);
        for (idx, node) in participants.into_iter().enumerate() {
            let mut outcome = commit;
            if commit && self.cfg.demo_lost_ack && idx == last && last > 0 {
                // The injected bug: having committed, the coordinator
                // presumes abort for the last participant (as if its ack
                // had never arrived) and durably tells it so.
                outcome = false;
                self.demo_victims.insert((txn, node));
            }
            self.send(
                Endpoint::Coordinator,
                Endpoint::Node(node),
                Message::Decision {
                    txn,
                    commit: outcome,
                },
            );
        }
    }

    fn resolve_or_retry(&mut self, node: NodeId, txn: ActivityId) {
        match self.decisions.get(&txn) {
            Some(&commit) => {
                let i = node.raw() as usize;
                let fresh = self.nodes[i].outcome(txn).is_none();
                self.nodes[i].resolve(txn, commit);
                if fresh {
                    self.record_outcome_event(node, txn, commit);
                }
            }
            None => {
                let at = self.time + self.cfg.retry_interval;
                self.queue
                    .schedule(at, SimEvent::RetryResolve { node, txn });
            }
        }
    }

    /// Resolves, at every up node, each decided transaction that is
    /// durably prepared but still outcome-less — the coordinator
    /// answering in-doubt queries directly once failure injection is over.
    fn force_resolve_decided(&mut self) {
        for (txn, commit) in self.decided() {
            for node in self.participants_of(txn) {
                let i = node.raw() as usize;
                if self.nodes[i].is_up()
                    && self.nodes[i].prepared(txn)
                    && self.nodes[i].outcome(txn).is_none()
                {
                    self.nodes[i].resolve(txn, commit);
                    self.record_outcome_event(node, txn, commit);
                }
            }
        }
    }

    /// Runs every registered invariant checker once, recording failures.
    fn run_checkpoint(&mut self) {
        if self.checkers.is_empty() {
            return;
        }
        let mut checkers = std::mem::take(&mut self.checkers);
        for checker in &mut checkers {
            self.stats.invariant_checks += 1;
            if let Err(detail) = checker.check(self) {
                self.violations.push(Violation {
                    time: self.time,
                    events: self.stats.events,
                    checker: checker.name().to_string(),
                    detail,
                });
            }
        }
        self.checkers = checkers;
    }

    fn record_prepare_events(&mut self, node: NodeId, txn: ActivityId, ops: &[OpResult]) {
        let Some(history) = self.history.as_mut() else {
            return;
        };
        let object = ObjectId::new(node.raw() + 1);
        for (operation, value) in ops {
            history.push(Event::invoke(txn, object, operation.clone()));
            history.push(Event::respond(txn, object, value.clone()));
        }
    }

    fn record_outcome_event(&mut self, node: NodeId, txn: ActivityId, commit: bool) {
        let ts = self.commit_ts.get(&txn).copied();
        let Some(history) = self.history.as_mut() else {
            return;
        };
        let object = ObjectId::new(node.raw() + 1);
        if commit {
            // A commit outcome always has a coordinator timestamp.
            if let Some(ts) = ts {
                history.push(Event::commit_ts(txn, object, ts));
            }
        } else {
            history.push(Event::abort(txn, object));
        }
    }

    /// Access to a node (inspection).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.raw() as usize]
    }

    /// All node identifiers.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.cfg.nodes).map(NodeId::new).collect()
    }

    /// Ends failure injection and settles the cluster: forces every node
    /// up (running recovery, through the restart hook where installed),
    /// resolves lingering in-doubt transactions, drains the queue, and
    /// runs a final invariant checkpoint — the "eventually everything
    /// heals" endpoint of a scenario. MTTF crashes no longer fire after
    /// this.
    pub fn heal(&mut self) {
        self.quiescing = true;
        for n in 0..self.cfg.nodes {
            if !self.nodes[n as usize].is_up() {
                self.restart_node(NodeId::new(n));
            }
        }
        self.force_resolve_decided();
        self.run_to_quiescence();
        self.force_resolve_decided();
        self.run_checkpoint();
    }

    /// Verifies all-or-nothing: for every decided transaction, each
    /// participant's durable outcome matches the coordinator's decision
    /// (prepared-but-unresolved participants only allowed while in doubt).
    ///
    /// # Errors
    ///
    /// Describes the first violated transaction.
    pub fn verify_atomicity(&self) -> Result<(), String> {
        for (&txn, &commit) in &self.decisions {
            let participants = match self.pending.get(&txn) {
                Some(p) => &p.participants,
                None => continue,
            };
            for &node in participants {
                let n = self.node(node);
                match n.outcome(txn) {
                    Some(o) if o == commit => {}
                    Some(o) => {
                        return Err(format!(
                            "txn {txn} decided {commit} but {node} recorded {o}"
                        ))
                    }
                    None => {
                        // Never prepared (prepare lost to a crash) is fine
                        // only for aborted transactions.
                        if commit && n.prepared(txn) {
                            return Err(format!("txn {txn} committed but {node} left it in doubt"));
                        }
                        if commit && !n.prepared(txn) {
                            return Err(format!("txn {txn} committed but {node} never prepared"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies conservation: the committed grand total equals the initial
    /// grand total (transfers move money, they never create it).
    ///
    /// # Errors
    ///
    /// Reports the delta if violated.
    pub fn verify_conservation(&self) -> Result<(), String> {
        let expected = self.initial_total();
        let actual: i64 = self.nodes.iter().map(Node::committed_total).sum();
        if actual == expected {
            Ok(())
        } else {
            Err(format!("total {actual} != expected {expected}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::{CertifierCheck, StandardChecker};
    use crate::model::TransferClient;

    #[test]
    fn metrics_track_decisions_in_simulated_time() {
        let mut cluster = Cluster::new(SimConfig::default());
        cluster.enable_metrics();
        for i in 0..5 {
            cluster.submit_transfer(i, i + 1, 1);
        }
        cluster.run_to_quiescence();
        let snap = cluster.metrics().snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.txns_begun, 5);
        assert_eq!(
            snap.txns_committed + snap.txns_aborted,
            5,
            "every submitted transfer must be decided"
        );
        assert_eq!(snap.commit_ns.count, snap.txns_committed);
        if snap.txns_committed > 0 {
            // Decisions take at least one message round trip of simulated
            // time, so the histogram carries nonzero latencies.
            assert!(snap.commit_ns.percentile(0.5).unwrap_or(0) > 0);
        }
    }

    #[test]
    fn disabled_metrics_cost_nothing_and_count_nothing() {
        let mut cluster = Cluster::new(SimConfig::default());
        cluster.submit_transfer(0, 1, 1);
        cluster.run_to_quiescence();
        let snap = cluster.metrics().snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.txns_begun, 0);
    }

    #[test]
    fn transfer_commits_and_conserves() {
        let mut cluster = Cluster::new(SimConfig::default());
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(txn), Some(true));
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.aborted, 0);
    }

    #[test]
    fn many_transfers_deterministic() {
        let run = |seed| {
            let mut cluster = Cluster::new(SimConfig {
                seed,
                ..SimConfig::default()
            });
            for i in 0..50 {
                let from = i % cluster.account_count();
                let to = (i * 7 + 3) % cluster.account_count();
                if from != to {
                    cluster.submit_transfer(from, to, 5);
                }
            }
            cluster.run_to_quiescence();
            cluster.verify_atomicity().unwrap();
            cluster.verify_conservation().unwrap();
            cluster.stats().clone()
        };
        assert_eq!(run(7), run(7), "same seed must reproduce identical runs");
        assert_eq!(run(7).aborted, 0);
    }

    #[test]
    fn crash_before_prepare_aborts_atomically() {
        let mut cluster = Cluster::new(SimConfig::default());
        // Crash the destination node before any event processes.
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.schedule_crash(0, cluster.home_of(1), 60_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert_eq!(
            cluster.decision(txn),
            Some(false),
            "missing vote must abort"
        );
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn crash_after_prepare_recovers_commit() {
        let mut cluster = Cluster::new(SimConfig::default());
        let txn = cluster.submit_transfer(0, 1, 30);
        // Let prepares and acks flow (events 0..4), then crash a
        // participant before the decision reaches it.
        cluster.run_events(4);
        let victim = cluster.home_of(0);
        cluster.schedule_crash(cluster.stats().events, victim, 20_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert_eq!(cluster.decision(txn), Some(true));
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
        assert!(cluster.stats().recoveries >= 1);
    }

    #[test]
    fn crash_sweep_every_event_point_stays_atomic() {
        // The E6 core loop in miniature: crash each node at every event
        // index of a single transfer; atomicity and conservation must hold
        // at every point.
        let baseline = {
            let mut c = Cluster::new(SimConfig::default());
            c.submit_transfer(0, 1, 30);
            c.run_to_quiescence();
            c.stats().events
        };
        for crash_at in 0..=baseline {
            for node in 0..SimConfig::default().nodes {
                let mut c = Cluster::new(SimConfig::default());
                let txn = c.submit_transfer(0, 1, 30);
                c.schedule_crash(crash_at, NodeId::new(node), 30_000);
                c.run_to_quiescence();
                c.heal();
                assert!(
                    c.decision(txn).is_some(),
                    "crash@{crash_at} {node}: undecided after heal"
                );
                c.verify_atomicity()
                    .unwrap_or_else(|e| panic!("crash@{crash_at} n{node}: {e}"));
                c.verify_conservation()
                    .unwrap_or_else(|e| panic!("crash@{crash_at} n{node}: {e}"));
            }
        }
    }

    #[test]
    fn lossy_network_still_terminates_and_stays_atomic() {
        let mut cluster = Cluster::new(SimConfig {
            drop_probability: 0.25,
            duplicate_probability: 0.15,
            seed: 99,
            ..SimConfig::default()
        });
        for i in 0..20i64 {
            let n = cluster.account_count();
            let (from, to) = (i % n, (i * 3 + 1) % n);
            if from != to {
                cluster.submit_transfer(from, to, 5);
            }
        }
        cluster.run_to_quiescence();
        cluster.heal();
        let stats = cluster.stats().clone();
        assert!(stats.lost > 0, "loss injection must fire");
        assert!(stats.duplicated > 0, "duplication injection must fire");
        assert!(stats.committed > 0, "retransmission must recover commits");
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn long_coordinator_outage_aborts_safely() {
        // The coordinator is down past the vote timeout: on recovery the
        // rescheduled timeout fires first and the transfer is (correctly,
        // presumed-abort) aborted — atomically at every participant.
        let mut cluster = Cluster::new(SimConfig::default());
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.schedule_coordinator_crash(1, 15_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert!(cluster.coordinator_is_up());
        assert_eq!(cluster.decision(txn), Some(false));
        assert!(cluster.stats().coordinator_crashes >= 1);
        assert!(cluster.stats().resends > 0, "votes must be re-sent");
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
        // The system is healthy again: a new transfer commits.
        let txn2 = cluster.submit_transfer(2, 3, 10);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(txn2), Some(true));
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn short_coordinator_outage_is_bridged_by_vote_resends() {
        // Downtime shorter than the vote timeout: the acks lost during the
        // outage are re-sent after recovery and the transfer commits.
        let mut cluster = Cluster::new(SimConfig {
            decision_timeout: 1_200,
            ..SimConfig::default()
        });
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.schedule_coordinator_crash(1, 3_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert_eq!(cluster.decision(txn), Some(true));
        assert!(cluster.stats().resends > 0, "votes must be re-sent");
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn coordinator_and_node_crash_together() {
        let mut cluster = Cluster::new(SimConfig::default());
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.schedule_coordinator_crash(2, 20_000);
        cluster.schedule_crash(3, cluster.home_of(0), 10_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert!(cluster.decision(txn).is_some());
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn duplicated_decisions_apply_once() {
        let mut cluster = Cluster::new(SimConfig {
            duplicate_probability: 1.0, // every message duplicated
            seed: 3,
            ..SimConfig::default()
        });
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(txn), Some(true));
        // Idempotent application: the debited/credited amounts are exact.
        cluster.verify_conservation().unwrap();
        cluster.verify_atomicity().unwrap();
        assert!(cluster.stats().duplicated > 0);
    }

    #[test]
    fn distributed_audits_always_see_conserved_totals() {
        // Audits interleaved with transfers, a node crash, message loss,
        // and duplication: every completed audit must observe exactly the
        // conserved grand total — hybrid atomicity's read-only guarantee,
        // distributed.
        let mut cluster = Cluster::new(SimConfig {
            drop_probability: 0.15,
            duplicate_probability: 0.1,
            seed: 23,
            ..SimConfig::default()
        });
        let expected = cluster.account_count() * 100;
        for i in 0..15i64 {
            let n = cluster.account_count();
            let (from, to) = (i % n, (i * 3 + 1) % n);
            if from != to {
                cluster.submit_transfer(from, to, 5);
            }
            if i % 3 == 0 {
                cluster.submit_audit();
            }
            // Let a slice of the protocol run between submissions.
            cluster.run_events(4);
        }
        cluster.schedule_crash(cluster.stats().events + 2, NodeId::new(1), 20_000);
        cluster.run_to_quiescence();
        cluster.heal();
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
        let results = cluster.audit_results();
        assert!(!results.is_empty(), "audits must complete");
        for (ts, total) in results {
            assert_eq!(*total, expected, "audit@{ts} observed a torn total");
        }
    }

    #[test]
    fn audit_timestamps_partition_commits() {
        // An audit submitted between two transfers sees the first and not
        // the second.
        let mut cluster = Cluster::new(SimConfig::default());
        let t1 = cluster.submit_transfer(0, 1, 30);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(t1), Some(true));
        cluster.submit_audit();
        let t2 = cluster.submit_transfer(2, 3, 10);
        cluster.run_to_quiescence();
        assert_eq!(cluster.decision(t2), Some(true));
        let results = cluster.audit_results();
        assert_eq!(results.len(), 1);
        // Totals are conserved whichever transfers are included, so the
        // partition is visible through per-node snapshots instead.
        let expected = cluster.account_count() * 100;
        assert_eq!(results[0].1, expected);
        // t1 (ts 1) is included by an audit at ts 2, t2 (ts 3) is not.
        let n0 = cluster.home_of(0);
        let with_t1 = cluster.node(n0).committed_total_at(|t| t == t1);
        let without = cluster.node(n0).committed_total_at(|_| false);
        assert_eq!(with_t1, without - 30, "t1 debited 30 at node n0");
    }

    #[test]
    fn home_placement_is_stable() {
        let cluster = Cluster::new(SimConfig::default());
        for k in 0..cluster.account_count() {
            assert_eq!(cluster.home_of(k).raw() as i64, k % 4);
        }
    }

    fn full_fault_config(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            drop_probability: 0.1,
            duplicate_probability: 0.1,
            max_duplicates: 2,
            reorder_probability: 0.2,
            reorder_extra: 1_500,
            partitions: vec![PartitionWindow::new(
                5_000,
                12_000,
                [Endpoint::Node(NodeId::new(1))],
            )],
            mttf: Some(MttfConfig {
                mean_uptime: 20_000,
                mean_downtime: 6_000,
                max_crashes_per_node: 1,
            }),
            checkpoint_every: 50,
            record_history: true,
            ..SimConfig::default()
        }
    }

    #[test]
    fn full_fault_matrix_with_checkers_stays_clean() {
        let mut cluster = Cluster::new(full_fault_config(1234));
        cluster.add_checker(Box::new(StandardChecker));
        let certifier = CertifierCheck::hybrid(&cluster);
        cluster.add_checker(Box::new(certifier));
        let rng = cluster.client_rng(0);
        let accounts = cluster.account_count();
        cluster.add_client(Box::new(TransferClient::new(rng, accounts, 12)));
        cluster.run_events(20_000);
        cluster.heal();
        assert!(
            cluster.violations().is_empty(),
            "clean run flagged: {:?}",
            cluster.violations()
        );
        assert!(cluster.stats().invariant_checks > 0, "checkpoints must run");
        assert!(cluster.stats().mttf_crashes > 0, "failure clocks must fire");
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn demo_lost_ack_is_caught_by_the_checkers() {
        let mut cluster = Cluster::new(SimConfig {
            demo_lost_ack: true,
            checkpoint_every: 10,
            ..SimConfig::default()
        });
        cluster.add_checker(Box::new(StandardChecker));
        cluster.submit_transfer(0, 1, 30);
        cluster.run_to_quiescence();
        cluster.heal();
        assert!(
            !cluster.violations().is_empty(),
            "the injected bug must be detected"
        );
        assert!(cluster.verify_atomicity().is_err());
    }

    #[test]
    fn partition_cuts_traffic_and_heals() {
        // Partition node 1 away long enough that prepares to it die, then
        // heal: the transfer must still terminate atomically.
        let mut cluster = Cluster::new(SimConfig {
            partitions: vec![PartitionWindow::new(
                0,
                120_000,
                [Endpoint::Node(NodeId::new(1))],
            )],
            ..SimConfig::default()
        });
        let txn = cluster.submit_transfer(0, 1, 30);
        cluster.run_to_quiescence();
        cluster.heal();
        assert!(cluster.stats().cut > 0, "partition must cut traffic");
        assert_eq!(
            cluster.decision(txn),
            Some(false),
            "unreachable participant must abort the transfer"
        );
        cluster.verify_atomicity().unwrap();
        cluster.verify_conservation().unwrap();
    }

    #[test]
    fn trace_and_state_digests_reproduce_per_seed() {
        let run = |seed: u64| {
            let mut cluster = Cluster::new(SimConfig {
                record_trace: true,
                ..full_fault_config(seed)
            });
            let rng = cluster.client_rng(0);
            let accounts = cluster.account_count();
            cluster.add_client(Box::new(TransferClient::new(rng, accounts, 8)));
            cluster.run_events(20_000);
            cluster.heal();
            (cluster.trace_hash(), cluster.state_digest())
        };
        assert_eq!(run(77), run(77), "same seed, same run");
        assert_ne!(run(77), run(78), "different seeds diverge");
    }
}
