//! Deterministic discrete-event simulation of a distributed transaction
//! system — the substitute for the paper's (never publicly released)
//! Argus guardian runtime.
//!
//! The paper's atomicity definitions are motivated by *online*,
//! *distributed* systems with real failures (§1, §5.1, §6). This crate
//! provides that substrate: a [`Cluster`] of [`Node`]s, each holding a
//! shard of bank accounts behind an intentions-list recoverable store
//! ([`atomicity_core::recovery::IntentionsStore`]), connected by a
//! message-passing network with seeded random latencies, driven by a
//! two-phase-commit coordinator, with **crash injection at any event
//! boundary** and recovery with in-doubt resolution.
//!
//! Experiment E6 sweeps a crash over every event of a transfer and checks
//! that the all-or-nothing guarantee — `perm(h)` containing only whole
//! transactions — survives every crash point.
//!
//! # Example
//!
//! ```
//! use atomicity_sim::{Cluster, SimConfig};
//!
//! let mut cluster = Cluster::new(SimConfig::default());
//! let txn = cluster.submit_transfer(0, 5, 25);
//! cluster.run_to_quiescence();
//! assert_eq!(cluster.decision(txn), Some(true));
//! cluster.verify_atomicity().unwrap();
//! cluster.verify_conservation().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod message;
mod node;
mod queue;

pub use cluster::{Cluster, SimConfig, SimStats};
pub use message::{Message, NodeId};
pub use node::Node;
pub use queue::{EventQueue, Scheduled};
