//! Deterministic discrete-event simulation of a distributed transaction
//! system — the substitute for the paper's (never publicly released)
//! Argus guardian runtime.
//!
//! The paper's atomicity definitions are motivated by *online*,
//! *distributed* systems with real failures (§1, §5.1, §6). This crate
//! provides that substrate: a [`Cluster`] of [`Node`]s, each holding a
//! shard of bank accounts behind an intentions-list recoverable store
//! ([`atomicity_core::recovery::IntentionsStore`]), connected by a
//! fault-injecting [`Network`] (latency jitter, loss, bounded
//! duplication, reordering, and scheduled [`PartitionWindow`]s), driven
//! by a two-phase-commit coordinator, with **crash injection at any
//! event boundary** — scheduled or via [`MttfConfig`] failure clocks —
//! and recovery with in-doubt resolution.
//!
//! Every run is a pure function of [`SimConfig::seed`]: randomness comes
//! from split [`SimRng`] streams (one per component, so one component's
//! draws never shift another's), time is logical, and all state lives in
//! ordered maps. [`Cluster::trace_hash`] and [`Cluster::state_digest`]
//! make the determinism checkable; a failing seed is a complete
//! reproducer. Invariants ([`InvariantChecker`]) run at configurable
//! checkpoints inside the loop, including the linear-time hybrid
//! atomicity certifier from `atomicity-lint` ([`CertifierCheck`]) and its
//! streaming replacement from `atomicity-certify`
//! ([`OnlineCertifierCheck`]), which observes only the events recorded
//! since the previous checkpoint instead of re-certifying from scratch.
//!
//! Experiment E6 sweeps a crash over every event of a transfer and checks
//! that the all-or-nothing guarantee — `perm(h)` containing only whole
//! transactions — survives every crash point. Experiment E12 sweeps
//! *seeds*: thousands of full-fault-matrix runs, shrinking any failure to
//! a minimal reproducer.
//!
//! # Example
//!
//! ```
//! use atomicity_sim::{Cluster, SimConfig};
//!
//! let mut cluster = Cluster::new(SimConfig::default());
//! let txn = cluster.submit_transfer(0, 5, 25);
//! cluster.run_to_quiescence();
//! assert_eq!(cluster.decision(txn), Some(true));
//! cluster.verify_atomicity().unwrap();
//! cluster.verify_conservation().unwrap();
//! ```
//!
//! # Reproducing a failure by seed
//!
//! ```
//! use atomicity_sim::{Cluster, SimConfig, StandardChecker, TransferClient};
//!
//! let mut cluster = Cluster::new(SimConfig {
//!     seed: 0xBAD5EED,
//!     drop_probability: 0.1,
//!     record_trace: true,
//!     ..SimConfig::default()
//! });
//! cluster.add_checker(Box::new(StandardChecker));
//! let rng = cluster.client_rng(0);
//! let accounts = cluster.account_count();
//! cluster.add_client(Box::new(TransferClient::new(rng, accounts, 10)));
//! cluster.run_events(50_000);
//! cluster.heal();
//! // Same seed ⇒ same trace_hash ⇒ same violations (if any), every time.
//! println!("trace hash {:#x}", cluster.trace_hash());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod invariant;
mod message;
mod model;
mod network;
mod node;
mod partition;
mod queue;
mod rng;

pub use cluster::{Cluster, MttfConfig, SimConfig, SimStats};
pub use invariant::{
    CertifierCheck, InvariantChecker, OnlineCertifierCheck, StandardChecker, Violation,
};
pub use message::{Endpoint, Message, NodeId, SimEvent};
pub use model::{
    Action, ClientRequest, ClientTurn, DeterministicClient, DeterministicNode, NodeTimer,
    TransferClient,
};
pub use network::{FaultConfig, NetStats, Network};
pub use node::Node;
pub use partition::{PartitionSchedule, PartitionWindow};
pub use queue::{EventQueue, Scheduled};
pub use rng::{fnv1a, SimRng};
