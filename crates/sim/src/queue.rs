//! The deterministic discrete-event queue.

use crate::message::SimEvent;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: fires at `time`; ties break by insertion sequence,
/// so runs are fully deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// Simulated time (microseconds) at which the event fires.
    pub time: u64,
    /// Insertion sequence number (tie-breaker).
    pub seq: u64,
    /// The payload.
    pub event: SimEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    pub fn schedule(&mut self, time: u64, event: SimEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::ActivityId;

    fn ev(txn: u32) -> SimEvent {
        SimEvent::Timeout {
            txn: ActivityId::new(txn),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, ev(3));
        q.schedule(10, ev(1));
        q.schedule(20, ev(2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|s| s.time)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, ev(1));
        q.schedule(5, ev(2));
        q.schedule(5, ev(3));
        let ids: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|s| match s.event {
                SimEvent::Timeout { txn } => txn.raw(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ev(1));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
