//! The deterministic discrete-event queue.
//!
//! Generic over the event payload so every deterministic event loop in
//! the workspace shares one scheduler: the single-coordinator cluster
//! here uses [`crate::SimEvent`] (the default type parameter), and the
//! partitioned transaction service in `atomicity-dist` plugs in its own
//! event enum without duplicating the tie-breaking discipline.

use crate::message::SimEvent;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: fires at `time`; ties break by insertion sequence,
/// so runs are fully deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct Scheduled<E = SimEvent> {
    /// Simulated time (microseconds) at which the event fires.
    pub time: u64,
    /// Insertion sequence number (tie-breaker).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E = SimEvent> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    pub fn schedule(&mut self, time: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::ActivityId;

    fn ev(txn: u32) -> SimEvent {
        SimEvent::Timeout {
            txn: ActivityId::new(txn),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, ev(3));
        q.schedule(10, ev(1));
        q.schedule(20, ev(2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|s| s.time)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, ev(1));
        q.schedule(5, ev(2));
        q.schedule(5, ev(3));
        let ids: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|s| match s.event {
                SimEvent::Timeout { txn } => txn.raw(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ev(1));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
