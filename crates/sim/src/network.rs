//! The fault-injecting simulated network.
//!
//! The [`Network`] decides, for each send, *when* (and whether, and how
//! many times) the message arrives: per-link latency jitter, loss,
//! bounded duplication, reordering boosts, and partition cuts from an
//! explicit [`PartitionSchedule`]. Each link draws from its own
//! [`SimRng`] stream split off the network's root stream, so traffic on
//! one link never perturbs the fault schedule of another — the property
//! the shrinker relies on when it disables fault classes one at a time.
//!
//! The network plans deliveries; the event loop owns the queue. A plan is
//! a list of delivery times: empty when the message is lost or cut, more
//! than one entry when duplication fires.

use crate::message::Endpoint;
use crate::partition::PartitionSchedule;
use crate::rng::SimRng;
use std::collections::BTreeMap;

/// Fault model of one link (or the whole network, as the default).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Minimum one-way latency (simulated microseconds).
    pub min_latency: u64,
    /// Maximum one-way latency.
    pub max_latency: u64,
    /// Probability a message is lost in transit.
    pub drop_probability: f64,
    /// Probability each potential extra copy of a message is delivered.
    pub duplicate_probability: f64,
    /// Bound on extra copies per message (the duplication factor): a
    /// message is delivered at most `1 + max_duplicates` times.
    pub max_duplicates: u32,
    /// Probability a delivery is deferred by an extra reorder boost,
    /// letting later sends overtake it.
    pub reorder_probability: f64,
    /// Maximum extra delay added to a reordered delivery.
    pub reorder_extra: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            min_latency: 50,
            max_latency: 500,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            max_duplicates: 1,
            reorder_probability: 0.0,
            reorder_extra: 2_000,
        }
    }
}

impl FaultConfig {
    /// A fault-free configuration with the given latency band.
    pub fn reliable(min_latency: u64, max_latency: u64) -> Self {
        FaultConfig {
            min_latency,
            max_latency,
            ..FaultConfig::default()
        }
    }
}

/// Counters of what the network did to traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages offered to the network.
    pub sent: u64,
    /// Delivery copies scheduled (≥ sent − lost − cut).
    pub scheduled: u64,
    /// Messages lost in transit.
    pub lost: u64,
    /// Extra copies scheduled by duplication.
    pub duplicated: u64,
    /// Deliveries deferred by a reorder boost.
    pub reordered: u64,
    /// Messages refused because the link crossed an active partition.
    pub cut: u64,
}

/// The simulated network: per-link fault configs, per-link random
/// streams, and a partition schedule.
#[derive(Debug, Clone)]
pub struct Network {
    default_faults: FaultConfig,
    overrides: BTreeMap<(Endpoint, Endpoint), FaultConfig>,
    partitions: PartitionSchedule,
    root: SimRng,
    links: BTreeMap<(Endpoint, Endpoint), SimRng>,
    stats: NetStats,
}

/// Stable 64-bit encoding of a link for stream splitting.
fn link_key(src: Endpoint, dst: Endpoint) -> u64 {
    let code = |e: Endpoint| -> u64 {
        match e {
            Endpoint::Coordinator => 0,
            Endpoint::Node(n) => 1 + u64::from(n.raw()),
        }
    };
    (code(src) << 32) | code(dst)
}

impl Network {
    /// Builds the network over its own random stream.
    pub fn new(root: SimRng, default_faults: FaultConfig, partitions: PartitionSchedule) -> Self {
        Network {
            default_faults,
            overrides: BTreeMap::new(),
            partitions,
            root,
            links: BTreeMap::new(),
            stats: NetStats::default(),
        }
    }

    /// Overrides the fault model of one directed link.
    pub fn set_link_faults(&mut self, src: Endpoint, dst: Endpoint, faults: FaultConfig) {
        self.overrides.insert((src, dst), faults);
    }

    /// The fault model governing `src → dst`.
    pub fn faults_for(&self, src: Endpoint, dst: Endpoint) -> &FaultConfig {
        self.overrides
            .get(&(src, dst))
            .unwrap_or(&self.default_faults)
    }

    /// The partition schedule.
    pub fn partitions(&self) -> &PartitionSchedule {
        &self.partitions
    }

    /// Whether the link `src → dst` is cut at `now`.
    pub fn is_cut(&self, now: u64, src: Endpoint, dst: Endpoint) -> bool {
        self.partitions.cuts(now, src, dst)
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Plans the deliveries of one message sent on `src → dst` at `now`:
    /// the returned times are absolute simulated times at which a copy
    /// arrives. Empty when the message is lost or the link is partitioned;
    /// at most `1 + max_duplicates` entries.
    pub fn plan(&mut self, now: u64, src: Endpoint, dst: Endpoint) -> Vec<u64> {
        self.stats.sent += 1;
        if self.partitions.cuts(now, src, dst) {
            self.stats.cut += 1;
            return Vec::new();
        }
        let faults = self
            .overrides
            .get(&(src, dst))
            .unwrap_or(&self.default_faults)
            .clone();
        let rng = self
            .links
            .entry((src, dst))
            .or_insert_with(|| self.root.split("link", link_key(src, dst)));
        if rng.chance(faults.drop_probability) {
            self.stats.lost += 1;
            return Vec::new();
        }
        let draw_at = |rng: &mut SimRng, stats: &mut NetStats| {
            let mut at = now + rng.range(faults.min_latency, faults.max_latency);
            if rng.chance(faults.reorder_probability) {
                at += rng.range(0, faults.reorder_extra);
                stats.reordered += 1;
            }
            at
        };
        let mut times = vec![draw_at(rng, &mut self.stats)];
        for _ in 0..faults.max_duplicates {
            if rng.chance(faults.duplicate_probability) {
                times.push(draw_at(rng, &mut self.stats));
                self.stats.duplicated += 1;
            }
        }
        self.stats.scheduled += times.len() as u64;
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::NodeId;
    use crate::partition::PartitionWindow;

    fn n(i: u32) -> Endpoint {
        Endpoint::Node(NodeId::new(i))
    }

    fn net(faults: FaultConfig) -> Network {
        Network::new(SimRng::new(42), faults, PartitionSchedule::new())
    }

    #[test]
    fn reliable_link_delivers_exactly_once_within_band() {
        let mut net = net(FaultConfig::reliable(50, 500));
        for _ in 0..100 {
            let plan = net.plan(1_000, Endpoint::Coordinator, n(0));
            assert_eq!(plan.len(), 1);
            assert!((1_050..=1_500).contains(&plan[0]), "{plan:?}");
        }
        assert_eq!(net.stats().lost, 0);
        assert_eq!(net.stats().scheduled, 100);
    }

    #[test]
    fn duplication_is_bounded_by_the_factor() {
        let mut net = net(FaultConfig {
            duplicate_probability: 1.0,
            max_duplicates: 3,
            ..FaultConfig::default()
        });
        let plan = net.plan(0, n(0), n(1));
        assert_eq!(plan.len(), 4, "1 original + max_duplicates copies");
    }

    #[test]
    fn partition_cuts_exactly_the_boundary() {
        let sched = PartitionSchedule::new().with(PartitionWindow::new(
            100,
            200,
            [n(0), Endpoint::Coordinator],
        ));
        let mut net = Network::new(SimRng::new(1), FaultConfig::default(), sched);
        assert!(net.plan(150, n(0), n(1)).is_empty());
        assert!(net.plan(150, n(1), Endpoint::Coordinator).is_empty());
        assert!(!net.plan(150, n(0), Endpoint::Coordinator).is_empty());
        assert!(!net.plan(150, n(1), n(2)).is_empty());
        assert!(!net.plan(250, n(0), n(1)).is_empty(), "heals at end");
        assert_eq!(net.stats().cut, 2);
    }

    #[test]
    fn per_link_streams_are_isolated() {
        // Consuming heavily on one link must not change another link's
        // draws: plan the same b-link sequence with and without a-link
        // traffic in between.
        let mk = || {
            Network::new(
                SimRng::new(77),
                FaultConfig {
                    drop_probability: 0.3,
                    ..FaultConfig::default()
                },
                PartitionSchedule::new(),
            )
        };
        let mut quiet = mk();
        let expected: Vec<_> = (0..50).map(|i| quiet.plan(i * 10, n(0), n(1))).collect();
        let mut noisy = mk();
        let got: Vec<_> = (0..50)
            .map(|i| {
                for _ in 0..7 {
                    noisy.plan(i * 10, n(2), n(3));
                }
                noisy.plan(i * 10, n(0), n(1))
            })
            .collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn link_override_takes_precedence() {
        let mut net = net(FaultConfig::reliable(50, 500));
        net.set_link_faults(
            n(0),
            n(1),
            FaultConfig {
                drop_probability: 1.0,
                ..FaultConfig::default()
            },
        );
        assert!(net.plan(0, n(0), n(1)).is_empty());
        assert!(!net.plan(0, n(1), n(0)).is_empty(), "override is directed");
    }
}
