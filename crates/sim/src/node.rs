//! A simulated node: a guardian host with recoverable stable storage.

use crate::message::{Endpoint, Message, NodeId};
use crate::model::{Action, DeterministicNode, NodeTimer};
use atomicity_core::recovery::{DurableLog, IntentionsStore, RecoveryOutcome, StableLog};
use atomicity_spec::specs::KvMapSpec;
use atomicity_spec::{ActivityId, ObjectId, OpResult};
use std::sync::Arc;

/// One node of the cluster: hosts a shard of accounts behind an
/// intentions-list recoverable store, and can crash and recover.
///
/// Crashing loses the volatile cache but not the stable log; recovery
/// redoes committed intentions and reports in-doubt transactions for the
/// coordinator to resolve (classic presumed-nothing two-phase commit).
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    up: bool,
    store: IntentionsStore<KvMapSpec>,
    crash_count: u64,
    /// Delay before re-sending an unanswered vote (simulated µs).
    resend_interval: u64,
    /// Bound on vote retransmissions.
    max_resends: u32,
}

impl Node {
    /// Creates a node holding `accounts` (key → initial balance), backed
    /// by the in-memory simulated [`StableLog`].
    pub fn new(id: NodeId, accounts: impl IntoIterator<Item = (i64, i64)>) -> Self {
        Node::with_log(id, accounts, Arc::new(StableLog::new()))
    }

    /// Creates a node over an arbitrary durable log — the hook through
    /// which the experiment harness runs the simulation's crash sweeps on
    /// the real on-disk WAL (`experiments e6 --disk`) instead of the
    /// simulated one. The log should sync synchronously on the caller's
    /// thread (like `SyncPolicy::SyncEach`) to keep the simulation
    /// deterministic.
    pub fn with_log(
        id: NodeId,
        accounts: impl IntoIterator<Item = (i64, i64)>,
        log: Arc<dyn DurableLog>,
    ) -> Self {
        let spec = KvMapSpec::with_initial(accounts);
        let object = ObjectId::new(id.raw() + 1);
        Node {
            id,
            up: true,
            store: IntentionsStore::shared(spec, object, log),
            crash_count: 0,
            resend_interval: 2_000,
            max_resends: 8,
        }
    }

    /// Configures the vote-retransmission policy (the cluster sets this
    /// from [`crate::SimConfig::decision_timeout`] and
    /// [`crate::SimConfig::max_resends`]).
    pub fn configure_retransmit(&mut self, resend_interval: u64, max_resends: u32) {
        self.resend_interval = resend_interval;
        self.max_resends = max_resends;
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// How many times this node has crashed.
    pub fn crash_count(&self) -> u64 {
        self.crash_count
    }

    /// Durably stages a transaction's intentions (the prepare vote).
    /// Idempotent: duplicated prepare messages stage once.
    pub fn prepare(&self, txn: ActivityId, ops: Vec<OpResult>) {
        debug_assert!(self.up, "prepare delivered to a down node");
        if !self.store.prepared(txn) {
            self.store.prepare(txn, ops);
        }
    }

    /// Applies the coordinator's decision. Idempotent: duplicated
    /// decision messages apply once (the store enforces first-outcome-wins).
    pub fn decide(&self, txn: ActivityId, commit: bool) {
        debug_assert!(self.up, "decision delivered to a down node");
        if commit {
            self.store.commit(txn);
        } else {
            self.store.abort(txn);
        }
    }

    /// Crashes the node: volatile state is lost, stable storage survives.
    pub fn crash(&mut self) {
        self.up = false;
        self.crash_count += 1;
        self.store.crash();
    }

    /// Restarts the node and replays the stable log; returns the recovery
    /// outcome (including in-doubt transactions).
    pub fn recover(&mut self) -> RecoveryOutcome {
        self.up = true;
        self.store.recover()
    }

    /// Resolves an in-doubt transaction after the coordinator answered.
    pub fn resolve(&self, txn: ActivityId, commit: bool) {
        self.store.resolve_in_doubt(txn, commit);
    }

    /// The durable outcome of `txn` at this node, if any.
    pub fn outcome(&self, txn: ActivityId) -> Option<bool> {
        self.store.outcome(txn)
    }

    /// Whether `txn` is durably prepared here.
    pub fn prepared(&self, txn: ActivityId) -> bool {
        self.store.prepared(txn)
    }

    /// The committed total of this node's accounts.
    ///
    /// # Panics
    ///
    /// Panics if the node is crashed and has not recovered.
    pub fn committed_total(&self) -> i64 {
        self.store
            .committed_frontier()
            .first()
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// Number of records in this node's stable log (recovery cost proxy).
    pub fn stable_log_len(&self) -> usize {
        self.store.stable_log().len()
    }

    /// The total of this node's accounts as of a timestamped snapshot:
    /// exactly the committed transactions selected by `include` are
    /// applied (served from the durable log, so the answer is independent
    /// of when it is asked — the essence of hybrid read-only activities).
    pub fn committed_total_at(&self, include: impl Fn(ActivityId) -> bool) -> i64 {
        self.store
            .replay_committed_subset(include)
            .first()
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }
}

impl DeterministicNode for Node {
    fn endpoint(&self) -> Endpoint {
        Endpoint::Node(self.id)
    }

    fn online(&self) -> bool {
        self.up
    }

    fn on_message(&mut self, _now: u64, message: &Message) -> Vec<Action> {
        match message {
            Message::Prepare { txn, ops } => {
                // Durably stage and vote yes; arm the resend timer in case
                // the decision never arrives.
                self.prepare(*txn, ops.clone());
                vec![
                    Action::Send {
                        dst: Endpoint::Coordinator,
                        message: Message::PrepareAck {
                            txn: *txn,
                            node: self.id,
                        },
                    },
                    Action::Timer {
                        delay: self.resend_interval,
                        timer: NodeTimer::ResendAck {
                            txn: *txn,
                            attempt: 1,
                        },
                    },
                ]
            }
            Message::Decision { txn, commit } => {
                self.decide(*txn, *commit);
                Vec::new()
            }
            // A stray ack delivered to a node (duplication artifacts).
            Message::PrepareAck { .. } => Vec::new(),
        }
    }

    fn on_timer(&mut self, _now: u64, timer: &NodeTimer) -> Vec<Action> {
        let NodeTimer::ResendAck { txn, attempt } = *timer;
        let undecided = self.up && self.prepared(txn) && self.outcome(txn).is_none();
        if !undecided || attempt > self.max_resends {
            return Vec::new();
        }
        vec![
            Action::Send {
                dst: Endpoint::Coordinator,
                message: Message::PrepareAck { txn, node: self.id },
            },
            Action::Timer {
                delay: self.resend_interval,
                timer: NodeTimer::ResendAck {
                    txn,
                    attempt: attempt + 1,
                },
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    fn txn(n: u32) -> ActivityId {
        ActivityId::new(n)
    }

    #[test]
    fn prepare_commit_updates_total() {
        let node = Node::new(NodeId::new(0), [(1, 100), (2, 100)]);
        node.prepare(txn(1), vec![(op("adjust", [1, -30]), Value::ok())]);
        node.decide(txn(1), true);
        assert_eq!(node.committed_total(), 170);
        assert_eq!(node.outcome(txn(1)), Some(true));
    }

    #[test]
    fn crash_then_recover_preserves_committed() {
        let mut node = Node::new(NodeId::new(0), [(1, 100)]);
        node.prepare(txn(1), vec![(op("adjust", [1, 50]), Value::ok())]);
        node.decide(txn(1), true);
        node.prepare(txn(2), vec![(op("adjust", [1, 7]), Value::ok())]);
        node.crash();
        assert!(!node.is_up());
        let outcome = node.recover();
        assert_eq!(outcome.redone, vec![txn(1)]);
        assert_eq!(outcome.in_doubt, vec![txn(2)]);
        assert_eq!(node.committed_total(), 150);
        node.resolve(txn(2), false);
        assert_eq!(node.committed_total(), 150);
        assert_eq!(node.crash_count(), 1);
    }

    #[test]
    fn abort_leaves_balance_untouched() {
        let node = Node::new(NodeId::new(0), [(1, 100)]);
        node.prepare(txn(1), vec![(op("adjust", [1, -100]), Value::ok())]);
        node.decide(txn(1), false);
        assert_eq!(node.committed_total(), 100);
        assert_eq!(node.outcome(txn(1)), Some(false));
        assert!(node.prepared(txn(1)));
    }
}
