//! Guard against wall-clock leaks into the simulation.
//!
//! Determinism dies quietly: one `Instant::now()` in a simulated path and
//! replays stop being bit-identical without any test failing loudly. This
//! test pins the rule structurally through `atomicity-lint`'s reusable
//! nondeterminism lint — no source file in `crates/sim/src` may reference
//! the process clock or an OS entropy source at all. (Benches may time
//! themselves with the wall clock; the simulation may not.)
//!
//! `experiments lint` runs the same scan over the whole workspace as a CI
//! gate; this test keeps the guarantee local to the crate so `cargo test
//! -p atomicity-sim` alone still enforces it.

use atomicity_lint::nondet::read_sources_recursive;
use atomicity_lint::{scan_nondeterminism, NondetConfig};
use std::path::Path;

#[test]
fn simulation_sources_never_touch_the_wall_clock() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let files = read_sources_recursive(&src, "sim/").expect("read sim sources");
    assert!(
        !files.is_empty(),
        "no sources found under {}",
        src.display()
    );
    let findings = scan_nondeterminism(&files, &NondetConfig::deterministic_sim());
    assert!(
        findings.is_empty(),
        "nondeterminism leaked into simulated code:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
