//! Guard against wall-clock leaks into the simulation.
//!
//! Determinism dies quietly: one `Instant::now()` in a simulated path and
//! replays stop being bit-identical without any test failing loudly. This
//! scan pins the rule structurally — no source file in `crates/sim/src`
//! may reference the process clock at all. (Benches may time themselves
//! with the wall clock; the simulation may not.)

use std::fs;
use std::path::Path;

const FORBIDDEN: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "std::time::Instant",
    "UNIX_EPOCH",
];

fn scan(dir: &Path, hits: &mut Vec<String>) {
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            scan(&path, hits);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = fs::read_to_string(&path).unwrap();
            for pattern in FORBIDDEN {
                for (lineno, line) in src.lines().enumerate() {
                    if line.contains(pattern) {
                        hits.push(format!("{}:{}: {}", path.display(), lineno + 1, pattern));
                    }
                }
            }
        }
    }
}

#[test]
fn simulation_sources_never_touch_the_wall_clock() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut hits = Vec::new();
    scan(&src, &mut hits);
    assert!(
        hits.is_empty(),
        "wall-clock references leaked into simulated code:\n{}",
        hits.join("\n")
    );
}
