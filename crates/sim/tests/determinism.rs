//! Determinism regression: the whole point of the seeded event loop.
//!
//! Two runs of the same seed — with every fault class enabled at once
//! (latency jitter, loss, duplication, reordering, a partition window,
//! and MTTF crashes recovering mid-run) — must produce **byte-identical**
//! event traces, equal rolling trace hashes, equal final-state digests,
//! and equal stats. Different seeds must diverge, or the "determinism"
//! would just be constancy.

use atomicity_sim::{
    Cluster, Endpoint, MttfConfig, NodeId, PartitionWindow, SimConfig, SimStats, StandardChecker,
    TransferClient,
};

/// Every fault class at once, plus tracing and checkpointed invariants.
fn full_fault_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        drop_probability: 0.12,
        duplicate_probability: 0.12,
        max_duplicates: 2,
        reorder_probability: 0.25,
        reorder_extra: 1_800,
        partitions: vec![
            PartitionWindow::new(4_000, 11_000, [Endpoint::Node(NodeId::new(2))]),
            PartitionWindow::new(15_000, 19_000, [Endpoint::Node(NodeId::new(0))]),
        ],
        mttf: Some(MttfConfig {
            mean_uptime: 18_000,
            mean_downtime: 5_000,
            max_crashes_per_node: 2,
        }),
        checkpoint_every: 40,
        record_trace: true,
        record_history: true,
        ..SimConfig::default()
    }
}

struct RunResult {
    trace: Vec<String>,
    trace_hash: u64,
    state_digest: u64,
    stats: SimStats,
    audits: Vec<(u64, i64)>,
}

fn run(seed: u64) -> RunResult {
    let mut cluster = Cluster::new(full_fault_config(seed));
    cluster.add_checker(Box::new(StandardChecker));
    let rng = cluster.client_rng(0);
    let accounts = cluster.account_count();
    cluster.add_client(Box::new(TransferClient::new(rng, accounts, 15)));
    cluster.run_events(40_000);
    cluster.heal();
    assert!(
        cluster.violations().is_empty(),
        "seed {seed}: clean run flagged: {:?}",
        cluster.violations()
    );
    cluster.verify_atomicity().unwrap();
    cluster.verify_conservation().unwrap();
    RunResult {
        trace: cluster.trace().to_vec(),
        trace_hash: cluster.trace_hash(),
        state_digest: cluster.state_digest(),
        stats: cluster.stats().clone(),
        audits: cluster.audit_results().to_vec(),
    }
}

#[test]
fn same_seed_replays_byte_identical_under_full_fault_matrix() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.trace.len(), b.trace.len(), "seed {seed}: trace lengths");
        for (i, (la, lb)) in a.trace.iter().zip(&b.trace).enumerate() {
            assert_eq!(la, lb, "seed {seed}: traces diverge at event {i}");
        }
        assert_eq!(a.trace_hash, b.trace_hash, "seed {seed}: trace hash");
        assert_eq!(a.state_digest, b.state_digest, "seed {seed}: state digest");
        assert_eq!(a.stats, b.stats, "seed {seed}: stats");
        assert_eq!(a.audits, b.audits, "seed {seed}: audit results");
        // The fault matrix actually fired — this is not a quiet run.
        assert!(a.stats.lost > 0, "seed {seed}: loss never fired");
        assert!(a.stats.crashes > 0, "seed {seed}: no crash injected");
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run(7);
    let b = run(8);
    assert_ne!(
        (a.trace_hash, a.state_digest),
        (b.trace_hash, b.state_digest),
        "independent seeds must produce different runs"
    );
}
