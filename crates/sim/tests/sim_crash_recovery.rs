//! Simulated crash recovery over the real on-disk WAL, in plain
//! `cargo test` — no kill harness, no forked processes.
//!
//! Each node's durable log is a `RestartableWal`; the cluster's restart
//! hook tears the WAL down and re-opens it from the bytes on disk before
//! every recovery, so a mid-run crash exercises the same checkpoint-load
//! / segment-scan / torn-tail-truncation path a real reboot would. Nodes
//! are killed at arbitrary event indices, the cluster heals, and the
//! final state must certify: all-or-nothing at every participant,
//! conserved totals, and a clean hybrid-atomicity certificate over the
//! recorded history.

use atomicity_core::DurableLog;
use atomicity_durable::{RestartableWal, SyncPolicy, WalOptions};
use atomicity_sim::{
    CertifierCheck, Cluster, NodeId, OnlineCertifierCheck, SimConfig, StandardChecker,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sim-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// SyncEach: group commit's background flusher is timing-dependent and
/// would break simulation determinism.
fn sim_opts() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::SyncEach,
        ..WalOptions::default()
    }
}

/// A cluster whose nodes persist to on-disk WALs that the restart hook
/// re-opens on every recovery.
fn wal_backed_cluster(cfg: SimConfig, base: &Path) -> (Cluster, Vec<Arc<RestartableWal>>) {
    let wals: Vec<Arc<RestartableWal>> = (0..cfg.nodes)
        .map(|n| {
            let dir = base.join(format!("node-{n}"));
            fs::create_dir_all(&dir).unwrap();
            Arc::new(RestartableWal::open(&dir, sim_opts()).unwrap())
        })
        .collect();
    let factory_wals = wals.clone();
    let mut cluster = Cluster::with_log_factory(cfg, move |id| {
        factory_wals[id.raw() as usize].clone() as Arc<dyn DurableLog>
    });
    let hook_wals = wals.clone();
    cluster.set_restart_hook(move |node: NodeId| {
        hook_wals[node.raw() as usize]
            .simulate_restart()
            .expect("simulated WAL restart failed");
    });
    (cluster, wals)
}

#[test]
fn node_killed_at_arbitrary_event_recovers_through_the_wal() {
    let base = tmpdir("sweep");
    // Kill a different node at a handful of arbitrary event indices; every
    // recovery must come back from the on-disk bytes alone.
    for (i, crash_at) in [0u64, 3, 7, 12, 20].into_iter().enumerate() {
        let dir = base.join(format!("case-{i}"));
        let cfg = SimConfig {
            seed: 100 + crash_at,
            record_history: true,
            ..SimConfig::default()
        };
        let victim = NodeId::new((i as u32) % cfg.nodes);
        let (mut cluster, wals) = wal_backed_cluster(cfg, &dir);
        cluster.add_checker(Box::new(StandardChecker));
        // Post-hoc and streaming certifiers run side by side: each
        // checkpoint both re-certifies the whole recorded history and
        // feeds the incremental monitor the new events, so a disagreement
        // between the two shows up as exactly one of them violating.
        let certifier = CertifierCheck::hybrid(&cluster);
        cluster.add_checker(Box::new(certifier));
        let online = OnlineCertifierCheck::hybrid(&cluster);
        cluster.add_checker(Box::new(online));
        let t1 = cluster.submit_transfer(0, 5, 25);
        let t2 = cluster.submit_transfer(2, 3, 10);
        cluster.schedule_crash(crash_at, victim, 20_000);
        cluster.run_to_quiescence();
        cluster.heal();
        assert!(cluster.decision(t1).is_some(), "case {i}: t1 undecided");
        assert!(cluster.decision(t2).is_some(), "case {i}: t2 undecided");
        assert!(
            wals[victim.raw() as usize].restarts() >= 1,
            "case {i}: the victim's WAL was never re-opened from disk"
        );
        assert!(cluster.stats().recoveries >= 1, "case {i}: no recovery ran");
        assert!(
            cluster.violations().is_empty(),
            "case {i}: invariants broke: {:?}",
            cluster.violations()
        );
        cluster
            .verify_atomicity()
            .unwrap_or_else(|e| panic!("case {i}: {e}"));
        cluster
            .verify_conservation()
            .unwrap_or_else(|e| panic!("case {i}: {e}"));
    }
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn committed_transfer_survives_a_wal_restart_mid_decision() {
    let base = tmpdir("mid-decision");
    let cfg = SimConfig::default();
    let (mut cluster, wals) = wal_backed_cluster(cfg, &base);
    let txn = cluster.submit_transfer(0, 1, 30);
    // Let prepares and votes land, then crash the debited account's node
    // right as decisions go out: it must redo the commit from its WAL.
    cluster.run_events(4);
    let victim = cluster.home_of(0);
    cluster.schedule_crash(cluster.stats().events, victim, 25_000);
    cluster.run_to_quiescence();
    cluster.heal();
    assert_eq!(cluster.decision(txn), Some(true));
    assert!(wals[victim.raw() as usize].restarts() >= 1);
    let recovered = wals[victim.raw() as usize].last_recovery();
    assert!(
        recovered.records > 0,
        "recovery should have replayed durable records, saw none"
    );
    cluster.verify_atomicity().unwrap();
    cluster.verify_conservation().unwrap();
    let _ = fs::remove_dir_all(&base);
}
