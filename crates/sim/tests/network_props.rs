//! Property tests of the fault-injecting network layer.
//!
//! Whatever the fault configuration, [`Network::plan`] must respect its
//! stated bounds: at most `1 + max_duplicates` copies of any message,
//! every delivery inside the latency (+ reorder boost) band, zero copies
//! across an active partition, and exactly one copy on a fault-free link.

use atomicity_sim::{
    Endpoint, FaultConfig, Network, NodeId, PartitionSchedule, PartitionWindow, SimRng,
};
use proptest::prelude::*;

fn ep(i: u32) -> Endpoint {
    if i == 0 {
        Endpoint::Coordinator
    } else {
        Endpoint::Node(NodeId::new(i - 1))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A message is delivered at most `1 + max_duplicates` times, and
    /// every scheduled copy falls inside the configured timing band.
    #[test]
    fn delivery_count_and_latency_respect_bounds(
        seed in any::<u64>(),
        min_latency in 1u64..200,
        extra_latency in 0u64..500,
        drop_permille in 0u32..1000,
        dup_permille in 0u32..1000,
        max_duplicates in 0u32..4,
        reorder_permille in 0u32..1000,
        reorder_extra in 0u64..2_000,
        sends in prop::collection::vec((0u32..5, 0u32..5, 0u64..100_000), 1..40),
    ) {
        let faults = FaultConfig {
            min_latency,
            max_latency: min_latency + extra_latency,
            drop_probability: f64::from(drop_permille) / 1000.0,
            duplicate_probability: f64::from(dup_permille) / 1000.0,
            max_duplicates,
            reorder_probability: f64::from(reorder_permille) / 1000.0,
            reorder_extra,
        };
        let mut net = Network::new(SimRng::new(seed), faults.clone(), PartitionSchedule::new());
        for (src, dst, now) in sends {
            let times = net.plan(now, ep(src), ep(dst));
            prop_assert!(
                times.len() <= 1 + max_duplicates as usize,
                "{} copies exceeds duplication factor {}",
                times.len(),
                max_duplicates
            );
            for &at in &times {
                prop_assert!(at >= now + faults.min_latency, "delivered before min latency");
                prop_assert!(
                    at <= now + faults.max_latency + faults.reorder_extra,
                    "delivered after max latency + reorder boost"
                );
            }
        }
        let stats = *net.stats();
        prop_assert_eq!(stats.scheduled + stats.lost, stats.sent + stats.duplicated);
    }

    /// No message ever crosses an active partition, whatever the faults;
    /// the same link delivers again once the window closes.
    #[test]
    fn partitions_are_absolute(
        seed in any::<u64>(),
        start in 0u64..50_000,
        len in 1u64..50_000,
        dup_permille in 0u32..1000,
        inside_offset in 0u64..50_000,
    ) {
        let isolated = ep(2);
        let other = ep(1);
        let schedule = PartitionSchedule::new().with(PartitionWindow::new(
            start,
            start + len,
            [isolated],
        ));
        let faults = FaultConfig {
            drop_probability: 0.0,
            duplicate_probability: f64::from(dup_permille) / 1000.0,
            ..FaultConfig::default()
        };
        let mut net = Network::new(SimRng::new(seed), faults, schedule);
        let inside = start + inside_offset % len;
        prop_assert!(net.plan(inside, other, isolated).is_empty(), "delivered into partition");
        prop_assert!(net.plan(inside, isolated, other).is_empty(), "delivered out of partition");
        // Links wholly inside (or outside) the partitioned group still work.
        prop_assert!(!net.plan(inside, other, ep(3)).is_empty(), "cut an uncut link");
        // After the window closes the link heals.
        prop_assert!(
            !net.plan(start + len, other, isolated).is_empty(),
            "link still cut after the window closed"
        );
        prop_assert!(net.stats().cut == 2, "cut counter wrong");
    }

    /// A fault-free link delivers exactly once.
    #[test]
    fn reliable_links_deliver_exactly_once(
        seed in any::<u64>(),
        now in 0u64..1_000_000,
        src in 0u32..5,
        dst in 0u32..5,
    ) {
        let mut net = Network::new(
            SimRng::new(seed),
            FaultConfig::reliable(50, 500),
            PartitionSchedule::new(),
        );
        prop_assert_eq!(net.plan(now, ep(src), ep(dst)).len(), 1);
    }
}
