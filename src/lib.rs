//! **atomicity** — data-dependent concurrency control and recovery.
//!
//! A full implementation of Weihl, *"Data-dependent Concurrency Control
//! and Recovery"* (PODC 1983): the formal model of atomic activities, the
//! three optimal local atomicity properties (dynamic, static, hybrid) as
//! both decision procedures and online concurrency-control engines, the
//! baseline protocols the paper compares against, typed atomic abstract
//! data types, and a deterministic distributed simulation with crash
//! recovery.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! - [`spec`] — events, histories, sequential specifications, the
//!   serializability and atomicity checkers, and the paper's examples.
//! - [`core`] — the transaction manager and the three engines.
//! - [`adts`] — typed atomic ADTs (counter, set, queue, account, map,
//!   register, semiqueue).
//! - [`baselines`] — strict 2PL, commutativity-table locking, the
//!   scheduler model of Figure 5-1, and Reed's multi-version registers.
//! - [`sim`] — the discrete-event distributed substrate (guardians,
//!   two-phase commit, crashes).
//! - [`dist`] — the partitioned transaction service on that substrate:
//!   key-hash sharding, a batching 2PC coordinator, per-shard
//!   intentions logs, and dependency-logged parallel recovery.
//! - [`durable`] — the on-disk durability layer: segmented write-ahead
//!   log with CRC32 framing, group commit, fuzzy checkpointing, and the
//!   kill-based crash harness.
//! - [`analysis`] — static analysis (`atomicity-lint`): conflict-table
//!   audits with counterexample certificates, linear-time history
//!   certification, and the lock-order audit behind `experiments lint`.
//! - `bench` ([`atomicity_bench`]) — workload generators and the
//!   experiment harness that regenerates every comparison in the paper.
//!
//! # Quickstart
//!
//! ```
//! use atomicity::core::{TxnManager, Protocol, AtomicObject};
//! use atomicity::adts::AtomicAccount;
//! use atomicity::spec::ObjectId;
//!
//! let mgr = TxnManager::new(Protocol::Hybrid);
//! let acct = AtomicAccount::new(ObjectId::new(1), &mgr);
//! let t = mgr.begin();
//! acct.deposit(&t, 100)?;
//! mgr.commit(t)?;
//!
//! let audit = mgr.begin_read_only();
//! assert_eq!(acct.balance(&audit)?, 100);
//! mgr.commit(audit)?;
//! # Ok::<(), atomicity::core::TxnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atomicity_adts as adts;
pub use atomicity_baselines as baselines;
pub use atomicity_bench as bench;
pub use atomicity_core as core;
pub use atomicity_dist as dist;
pub use atomicity_durable as durable;
pub use atomicity_lint as analysis;
pub use atomicity_sim as sim;
pub use atomicity_spec as spec;
