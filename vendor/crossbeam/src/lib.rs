//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The workspace declares `crossbeam` in a few manifests but never uses it
//! from source, so an empty crate satisfies the dependency graph in an
//! air-gapped build environment.
