//! Offline stand-in for `serde`, implementing the subset this workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs and enums,
//! with JSON (de)serialization provided by the companion `serde_json`
//! stand-in.
//!
//! Instead of serde's visitor architecture, values convert to and from a
//! small [`Content`] tree that mirrors the JSON data model. The derive
//! macros (re-exported from `serde_derive`) generate `to_content` /
//! `from_content` implementations matching serde's externally-tagged enum
//! representation, `#[serde(rename_all = "snake_case")]`, and field-level
//! `#[serde(default)]` — the only attributes the workspace uses.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized data model: a JSON-shaped content tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object, in insertion order, keys stringified.
    Map(Vec<(String, Content)>),
}

/// Types that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into content.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, reporting a human-readable error on mismatch.
    fn from_content(content: &Content) -> Result<Self, String>;
}

/// Map keys: serialized as JSON object keys (always strings).
pub trait MapKey: Ord + Sized {
    /// The key's string form.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(key: &str) -> Result<Self, String>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, String> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, String> {
                key.parse().map_err(|e| format!("bad {} map key {key:?}: {e}", stringify!($t)))
            }
        }
    )*};
}

impl_int_map_key!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                let wide: i128 = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    other => return Err(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    )),
                };
                <$t>::try_from(wide).map_err(|_| format!(
                    "{} out of range for {}", wide, stringify!($t)
                ))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let wide = *self as u64;
                if let Ok(narrow) = i64::try_from(wide) {
                    Content::I64(narrow)
                } else {
                    Content::U64(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                let wide: i128 = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    other => return Err(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    )),
                };
                <$t>::try_from(wide).map_err(|_| format!(
                    "{} out of range for {}", wide, stringify!($t)
                ))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(format!("expected number, found {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Seq(items) => items.iter().map(Deserialize::from_content).collect(),
            other => Err(format!("expected array, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(format!("expected object, found {other:?}")),
        }
    }
}

/// Derive-support helper: views content as an object's entry list.
pub fn content_as_map<'c>(
    content: &'c Content,
    what: &str,
) -> Result<&'c [(String, Content)], String> {
    match content {
        Content::Map(entries) => Ok(entries),
        other => Err(format!("expected object for {what}, found {other:?}")),
    }
}

/// Derive-support helper: first value under `key` in an entry list.
pub fn map_get<'c>(entries: &'c [(String, Content)], key: &str) -> Option<&'c Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Derive-support helper: views content as a single-entry externally-tagged
/// enum variant, returning `(tag, payload)`.
pub fn content_as_variant<'c>(
    content: &'c Content,
    what: &str,
) -> Result<(&'c str, &'c Content), String> {
    match content {
        Content::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(format!(
            "expected single-key variant object for {what}, found {other:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [-5i64, 0, 7, i64::MAX, i64::MIN] {
            assert_eq!(i64::from_content(&v.to_content()).unwrap(), v);
        }
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert!(bool::from_content(&true.to_content()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_content(&s.to_content()).unwrap(), s);
    }

    #[test]
    fn int_keyed_maps_use_string_keys() {
        let m: BTreeMap<i64, i64> = [(1, 2), (-3, 4)].into_iter().collect();
        match m.to_content() {
            Content::Map(entries) => {
                assert!(entries.iter().any(|(k, _)| k == "1"));
                assert!(entries.iter().any(|(k, _)| k == "-3"));
            }
            other => panic!("expected map, got {other:?}"),
        }
        let back = BTreeMap::<i64, i64>::from_content(&m.to_content()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unsigned_values_cross_check_signed_content() {
        // Small unsigned values serialize as I64 and must read back.
        assert_eq!(u32::from_content(&Content::I64(7)).unwrap(), 7);
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        assert!(i64::from_content(&Content::U64(u64::MAX)).is_err());
    }
}
