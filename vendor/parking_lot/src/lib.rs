//! Offline stand-in for `parking_lot`, implementing the subset of its API
//! this workspace uses (`Mutex`, `Condvar`, `WaitTimeoutResult`) on top of
//! `std::sync`.
//!
//! Semantics match parking_lot where the workspace relies on them:
//! non-poisoning locks (a panicked holder does not wedge later lockers) and
//! `Condvar::wait_for` taking `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, lock poisoning
/// is ignored: if a holder panicked, the data is still handed out.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` except transiently inside
/// [`Condvar::wait_for`], which must move the std guard through
/// `wait_timeout` by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter. Returns whether a thread was woken (best effort:
    /// std does not report this, so `false` is returned).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all waiters. Returns the number woken (best effort: std does
    /// not report this, so `0` is returned).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Result of a timed wait: whether the timeout elapsed without a notify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn timed_wait_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait_for(&mut g, Duration::from_millis(50));
            }
        });
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
