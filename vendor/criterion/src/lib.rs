//! Offline stand-in for `criterion`, implementing the subset of its API the
//! workspace's `harness = false` benches use: `Criterion::benchmark_group`,
//! `sample_size` / `measurement_time`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple wall-clock mean over `sample_size` samples after
//! one warm-up run; results print one line per benchmark. No statistics, no
//! report files — just enough to run the suite and eyeball throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("", f);
        group.finish();
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // One warm-up sample, then timed samples up to the measurement cap.
        f(&mut bencher);
        bencher.elapsed = Duration::ZERO;
        bencher.iters = 0;
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if Instant::now() >= deadline {
                break;
            }
        }
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        eprintln!(
            "  {}/{}: {:?}/iter ({} iters)",
            self.name, id.0, mean, bencher.iters
        );
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `routine`, accumulating into the sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Opaque value sink preventing the optimizer from deleting the result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group. Extra CLI arguments (as passed by
/// `cargo bench -- <filter>`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(200));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls >= 2, "warm-up + at least one sample, got {calls}");
    }
}
