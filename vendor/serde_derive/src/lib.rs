//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually contains — plain (non-generic) structs
//! with named fields, tuple structs, and enums with unit / newtype / tuple
//! / struct variants — generating `to_content` / `from_content` impls for
//! the companion `serde` stand-in's content-tree model.
//!
//! Supported attributes (the only ones the workspace uses):
//! `#[serde(rename_all = "snake_case")]` / `"kebab-case"` on enums,
//! `#[serde(rename = "...")]` on enum variants, and
//! `#[serde(default)]` on named fields. The token stream is parsed by
//! hand (no `syn`/`quote`, which are unavailable offline); generated code
//! is assembled as a string and reparsed.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derives `serde::Serialize` (the content-model flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the content-model flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    rename_all: RenameRule,
    kind: ItemKind,
}

/// Container-level `rename_all` rule (the two this workspace uses).
#[derive(Clone, Copy, Default, PartialEq)]
enum RenameRule {
    #[default]
    None,
    Snake,
    Kebab,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    /// Explicit `#[serde(rename = "...")]` wire name, if any.
    rename: Option<String>,
    shape: Shape,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Default)]
struct SerdeAttrs {
    rename_all: RenameRule,
    rename: Option<String>,
    default: bool,
}

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Consumes leading attributes, merging any `#[serde(...)]` contents.
    fn take_attrs(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while self.peek_is_punct('#') {
            self.bump();
            match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    merge_serde_attr(&g, &mut attrs);
                }
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            }
        }
        attrs
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_visibility(&mut self) {
        if self.peek_is_ident("pub") {
            self.bump();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.bump();
            }
        }
    }

    /// Skips a type expression: consumes until a `,` at angle-bracket depth
    /// zero (which is also consumed) or the end of the stream.
    fn skip_type_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }
}

fn merge_serde_attr(attr_body: &Group, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = attr_body.stream().into_iter().collect();
    // Shape: `serde ( ... )`. Anything else (doc comments, `#[default]`,
    // other derives' helpers) is skipped.
    let [TokenTree::Ident(name), TokenTree::Group(inner)] = &tokens[..] else {
        return;
    };
    if name.to_string() != "serde" {
        return;
    }
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(word) if word.to_string() == "default" => {
                attrs.default = true;
                i += 1;
            }
            TokenTree::Ident(word) if word.to_string() == "rename_all" => {
                // Expect `= "snake_case"` or `= "kebab-case"`.
                let value = inner.get(i + 2).map(|t| t.to_string());
                match value.as_deref() {
                    Some("\"snake_case\"") => attrs.rename_all = RenameRule::Snake,
                    Some("\"kebab-case\"") => attrs.rename_all = RenameRule::Kebab,
                    other => panic!("serde derive: unsupported rename_all rule {other:?}"),
                }
                i += 3;
            }
            TokenTree::Ident(word) if word.to_string() == "rename" => {
                // `rename = "literal-wire-name"` on a variant or field.
                let value = inner.get(i + 2).map(|t| t.to_string());
                match value.as_deref() {
                    Some(quoted) if quoted.starts_with('"') && quoted.ends_with('"') => {
                        attrs.rename = Some(quoted[1..quoted.len() - 1].to_string());
                    }
                    other => panic!("serde derive: unsupported rename value {other:?}"),
                }
                i += 3;
            }
            other => panic!("serde derive: unsupported serde attribute {other}"),
        }
        if i < inner.len() {
            if let TokenTree::Punct(p) = &inner[i] {
                if p.as_char() == ',' {
                    i += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let container_attrs = cur.take_attrs();
    cur.skip_visibility();
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("item name");
    if cur.peek_is_punct('<') {
        panic!("serde derive stand-in: generic types are not supported ({name})");
    }
    let kind = match keyword.as_str() {
        "struct" => match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::TupleStruct(0),
            other => panic!("serde derive: malformed struct body for {name}: {other:?}"),
        },
        "enum" => match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: malformed enum body for {name}: {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };
    Item {
        name,
        rename_all: container_attrs.rename_all,
        kind,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.take_attrs();
        cur.skip_visibility();
        let name = cur.expect_ident("field name");
        match cur.bump() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field {name}, found {other:?}"),
        }
        cur.skip_type_until_comma();
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        let attrs = cur.take_attrs();
        let name = cur.expect_ident("variant name");
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.bump();
                match count_top_level_items(g) {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                cur.bump();
                Shape::Struct(parse_named_fields(g))
            }
            _ => Shape::Unit,
        };
        if cur.peek_is_punct(',') {
            cur.bump();
        }
        variants.push(Variant {
            name,
            rename: attrs.rename,
            shape,
        });
    }
    variants
}

/// Counts comma-separated items at angle-bracket depth zero. Tuple-struct
/// and tuple-variant field lists may carry attributes and visibility; only
/// the comma structure matters here.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0;
    let mut saw_tokens = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_tag(item: &Item, variant: &Variant) -> String {
    if let Some(rename) = &variant.rename {
        return rename.clone();
    }
    match item.rename_all {
        RenameRule::Snake => snake_case(&variant.name),
        RenameRule::Kebab => snake_case(&variant.name).replace('_', "-"),
        RenameRule::None => variant.name.clone(),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_content(&self.{f})),",
                    f = f.name
                );
            }
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                let _ = write!(items, "::serde::Serialize::to_content(&self.{i}),");
            }
            format!("::serde::Content::Seq(::std::vec![{items}])")
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = variant_tag(item, v);
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => \
                             ::serde::Content::Str(::std::string::String::from(\"{tag}\")),"
                        );
                    }
                    Shape::Newtype => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(__f0) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{tag}\"), \
                             ::serde::Serialize::to_content(__f0))]),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut items = String::new();
                        for b in &binders {
                            let _ = write!(items, "::serde::Serialize::to_content({b}),");
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vname}({binds}) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{tag}\"), \
                             ::serde::Content::Seq(::std::vec![{items}]))]),",
                            binds = binders.join(", ")
                        );
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut entries = String::new();
                        for f in fields {
                            let _ = write!(
                                entries,
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_content({f})),",
                                f = f.name
                            );
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {binds} }} => \
                             ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{tag}\"), \
                             ::serde::Content::Map(::std::vec![{entries}]))]),",
                            binds = binds.join(", ")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

/// Emits the expression deserializing one named field from `__fields`.
fn named_field_expr(owner: &str, f: &Field) -> String {
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(\
             ::std::format!(\"missing field `{field}` in {owner}\"))",
            field = f.name
        )
    };
    format!(
        "{field}: match ::serde::map_get(__fields, \"{field}\") {{\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?,\
             ::std::option::Option::None => {missing},\
         }},",
        field = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&named_field_expr(name, f));
            }
            format!(
                "let __fields = ::serde::content_as_map(__content, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__content)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                let _ = write!(items, "::serde::Deserialize::from_content(&__items[{i}])?,");
            }
            format!(
                "match __content {{\
                     ::serde::Content::Seq(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}({items})),\
                     __other => ::std::result::Result::Err(\
                         ::std::format!(\"expected {n}-element array for {name}, found {{:?}}\", __other)),\
                 }}"
            )
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let tag = variant_tag(item, v);
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{tag}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    Shape::Newtype => {
                        let _ = write!(
                            tagged_arms,
                            "\"{tag}\" => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_content(__inner)?)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let mut items = String::new();
                        for i in 0..*n {
                            let _ = write!(
                                items,
                                "::serde::Deserialize::from_content(&__items[{i}])?,"
                            );
                        }
                        let _ = write!(
                            tagged_arms,
                            "\"{tag}\" => match __inner {{\
                                 ::serde::Content::Seq(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{vname}({items})),\
                                 __other => ::std::result::Result::Err(::std::format!(\
                                     \"expected {n}-element array for {name}::{vname}, found {{:?}}\", __other)),\
                             }},"
                        );
                    }
                    Shape::Struct(fields) => {
                        let owner = format!("{name}::{vname}");
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&named_field_expr(&owner, f));
                        }
                        let _ = write!(
                            tagged_arms,
                            "\"{tag}\" => {{\
                                 let __fields = ::serde::content_as_map(__inner, \"{owner}\")?;\
                                 ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\
                             }},"
                        );
                    }
                }
            }
            format!(
                "match __content {{\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(\
                             ::std::format!(\"unknown variant {{:?}} for {name}\", __other)),\
                     }},\
                     __tagged => {{\
                         let (__tag, __inner) = ::serde::content_as_variant(__tagged, \"{name}\")?;\
                         match __tag {{\
                             {tagged_arms}\
                             __other => ::std::result::Result::Err(\
                                 ::std::format!(\"unknown variant {{:?}} for {name}\", __other)),\
                         }}\
                     }}\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
