//! Offline stand-in for `serde_json`: JSON text ⇄ the `serde` stand-in's
//! [`Content`] tree, exposing `to_string`, `to_string_pretty`, and
//! `from_str`.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value().map_err(Error)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_content(&content).map_err(Error)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&v.to_string()),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "unexpected character {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn parse_array(&mut self) -> Result<Content, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err("lone leading surrogate".into());
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid trailing surrogate".into());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| "invalid \\u escape".to_string())?);
                        }
                        other => return Err(format!("invalid escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        self.pos += 4;
        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
        u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))
    }

    fn parse_number(&mut self) -> Result<Content, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("-17").unwrap(), -17);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert!(from_str::<bool>(" true ").unwrap());
        let s: String = from_str(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(s, "a\"b\\c\nA");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1i64, -2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,-2,3]");
        assert_eq!(from_str::<Vec<i64>>(&json).unwrap(), v);

        let m: BTreeMap<i64, i64> = [(1, 10), (-2, 20)].into_iter().collect();
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<i64, i64>>(&json).unwrap(), m);
        assert!(json.contains("\"1\""), "int keys stringified: {json}");
    }

    #[test]
    fn pretty_output_parses_back() {
        let m: BTreeMap<String, Vec<i64>> = [("xs".to_string(), vec![1, 2])].into_iter().collect();
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<BTreeMap<String, Vec<i64>>>(&pretty).unwrap(), m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("12 34").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }
}
