//! Offline stand-in for `proptest`, implementing the subset of its API this
//! workspace uses: the `proptest!` / `prop_assert*` / `prop_oneof!` macros,
//! `Strategy` with `prop_map` and `boxed`, range / tuple / `Just` /
//! collection / bool strategies, `any::<T>()`, and `ProptestConfig`.
//!
//! Cases are sampled deterministically from a per-test seed (derived from
//! the test's module path and name), so failures reproduce across runs.
//! There is no shrinking: a failing case reports its inputs via the
//! panic message and the case index.

/// Test-case configuration and error plumbing.
pub mod test_runner {
    /// How many cases to run, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// The number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case was rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// The outcome of one case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic per-case random source (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator starting from `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next uniform 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// A uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a, used to derive a per-test seed from its name.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
            i += 1;
        }
        hash
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy, for heterogeneous unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A strategy producing only clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// A weighted choice among boxed strategies — `prop_oneof!`'s engine.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union of `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut draw = rng.below(self.total);
            for (w, s) in &self.arms {
                if draw < *w as u64 {
                    return s.sample(rng);
                }
                draw -= *w as u64;
            }
            unreachable!("weights summed over all arms")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;
        /// Returns that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy of an [`Arbitrary`] type.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain strategy for a primitive.
    #[derive(Debug, Clone)]
    pub struct AnyOf<T>(PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyOf<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyOf<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyOf(PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyOf<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyOf<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyOf(PhantomData)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generated collection's size bounds (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of `element` values with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Fair coin strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Biased coin strategy; see [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    /// A coin landing `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p.clamp(0.0, 1.0))
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each function samples its arguments
/// [`ProptestConfig::cases`](test_runner::ProptestConfig) times and panics on the
/// first failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::from_seed(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $parm = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {:?}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, with both operands in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// A weighted (or unweighted) choice among strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($item))),+
        ])
    };
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($item))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(i64),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(v in prop::collection::vec((0..6i64, -3..4i64, 0..3u8), 1..25)) {
            prop_assert!(!v.is_empty() && v.len() < 25);
            for (a, b, c) in v {
                prop_assert!((0..6).contains(&a));
                prop_assert!((-3..4).contains(&b));
                prop_assert!(c < 3);
            }
        }

        /// prop_oneof samples every arm, weighted arms included.
        #[test]
        fn oneof_weighted(x in prop_oneof![3 => (0..5i64).prop_map(Pick::A), 1 => Just(Pick::B)]) {
            match x {
                Pick::A(n) => prop_assert!((0..5).contains(&n)),
                Pick::B => {}
            }
        }

        /// any::<u64>() and bool strategies sample.
        #[test]
        fn any_and_bool(s in any::<u64>(), f in prop::bool::ANY, w in prop::bool::weighted(0.2)) {
            let _ = (s, f, w);
        }
    }

    #[test]
    fn failures_report_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(dead_code)]
                fn always_fails(x in 0..10i64) {
                    prop_assert!(x < 0, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0..100i64, 3..8);
        let a = strat.sample(&mut TestRng::from_seed(42));
        let b = strat.sample(&mut TestRng::from_seed(42));
        assert_eq!(a, b);
    }
}
