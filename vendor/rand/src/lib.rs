//! Offline stand-in for `rand`, implementing the subset of its API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_bool`, and `Rng::gen_range` over integer ranges.
//!
//! The generator is splitmix64 — deterministic, seedable, and more than
//! good enough for workload shuffling and simulated latency draws.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, as rand does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(&mut || self.next_u64())
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges of the integer types the workspace draws from.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one element using the provided `u64` source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (next() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (next() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard deterministic generator (splitmix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..=1000), b.gen_range(0u64..=1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&v));
            let w = r.gen_range(-3i64..4);
            assert!((-3..4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
