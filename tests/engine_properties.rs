//! Property-based end-to-end tests: random concurrent workloads run
//! against each engine, and the recorded history must satisfy the
//! engine's local atomicity property — the executable content of
//! Theorems 1, 4, and 5.

use atomicity::core::{Protocol, TxnManager};
use atomicity::spec::atomicity::{
    is_atomic, is_dynamic_atomic, is_hybrid_atomic, is_static_atomic,
};
use atomicity::spec::specs::{BankAccountSpec, IntSetSpec, SemiqueueSpec};
use atomicity::spec::well_formed::WellFormedness;
use atomicity::spec::{op, ObjectId, Operation, SystemSpec};
use proptest::prelude::*;
use std::sync::Arc;

const X: ObjectId = ObjectId::new(1);
const Y: ObjectId = ObjectId::new(2);
const Z: ObjectId = ObjectId::new(3);

fn system() -> SystemSpec {
    SystemSpec::new()
        .with_object(X, BankAccountSpec::new())
        .with_object(Y, IntSetSpec::new())
        .with_object(Z, SemiqueueSpec::new())
}

/// A step of a random transaction program.
#[derive(Debug, Clone)]
enum Step {
    Deposit(i64),
    Withdraw(i64),
    Balance,
    Insert(i64),
    Delete(i64),
    Member(i64),
    Enq(i64),
    Deq,
}

impl Step {
    fn target(&self) -> ObjectId {
        match self {
            Step::Deposit(_) | Step::Withdraw(_) | Step::Balance => X,
            Step::Insert(_) | Step::Delete(_) | Step::Member(_) => Y,
            Step::Enq(_) | Step::Deq => Z,
        }
    }

    fn operation(&self) -> Operation {
        match self {
            Step::Deposit(n) => op("deposit", [*n]),
            Step::Withdraw(n) => op("withdraw", [*n]),
            Step::Balance => op("balance", [] as [i64; 0]),
            Step::Insert(k) => op("insert", [*k]),
            Step::Delete(k) => op("delete", [*k]),
            Step::Member(k) => op("member", [*k]),
            Step::Enq(k) => op("enq", [*k]),
            Step::Deq => op("deq", [] as [i64; 0]),
        }
    }
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1..5i64).prop_map(Step::Deposit),
        (1..5i64).prop_map(Step::Withdraw),
        Just(Step::Balance),
        (0..3i64).prop_map(Step::Insert),
        (0..3i64).prop_map(Step::Delete),
        (0..3i64).prop_map(Step::Member),
        (0..3i64).prop_map(Step::Enq),
        Just(Step::Deq),
    ]
}

/// 2–4 transaction programs of 1–3 steps each, plus per-program abort flag.
fn arb_workload() -> impl Strategy<Value = Vec<(Vec<Step>, bool)>> {
    prop::collection::vec(
        (
            prop::collection::vec(arb_step(), 1..4),
            prop::bool::weighted(0.2),
        ),
        2..5,
    )
}

/// Runs the programs concurrently against the engine objects for the
/// given protocol and returns the recorded history.
fn run_workload(protocol: Protocol, workload: &[(Vec<Step>, bool)]) -> atomicity::spec::History {
    let mgr = TxnManager::new(protocol);
    let account = atomicity::adts::object_for_protocol(X, BankAccountSpec::new(), &mgr);
    let set = atomicity::adts::object_for_protocol(Y, IntSetSpec::new(), &mgr);
    let semiq = atomicity::adts::object_for_protocol(Z, SemiqueueSpec::new(), &mgr);

    let mut handles = Vec::new();
    for (steps, want_abort) in workload.iter().cloned() {
        let mgr = mgr.clone();
        let account = Arc::clone(&account);
        let set = Arc::clone(&set);
        let semiq = Arc::clone(&semiq);
        handles.push(std::thread::spawn(move || {
            let txn = mgr.begin();
            for step in &steps {
                let obj = match step.target() {
                    t if t == X => &account,
                    t if t == Y => &set,
                    _ => &semiq,
                };
                if obj.invoke(&txn, step.operation()).is_err() {
                    mgr.abort(txn);
                    return;
                }
            }
            if want_abort {
                mgr.abort(txn);
            } else {
                let _ = mgr.commit(txn);
            }
        }));
    }
    for h in handles {
        h.join().expect("workload thread panicked");
    }
    mgr.history()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1, executed: every history the dynamic engine produces is
    /// dynamic atomic (hence atomic), across objects.
    #[test]
    fn dynamic_engine_histories_are_dynamic_atomic(w in arb_workload()) {
        let h = run_workload(Protocol::Dynamic, &w);
        let spec = system();
        prop_assert!(WellFormedness::Basic.is_well_formed(&h));
        prop_assert!(is_dynamic_atomic(&h, &spec), "history:\n{h}");
        prop_assert!(is_atomic(&h, &spec));
    }

    /// Theorem 4, executed: the static engine's histories are static
    /// atomic.
    #[test]
    fn static_engine_histories_are_static_atomic(w in arb_workload()) {
        let h = run_workload(Protocol::Static, &w);
        let spec = system();
        prop_assert!(WellFormedness::Static.is_well_formed(&h));
        prop_assert!(is_static_atomic(&h, &spec), "history:\n{h}");
        prop_assert!(is_atomic(&h, &spec));
    }

    /// Theorem 5, executed: the hybrid engine's histories are hybrid
    /// atomic.
    #[test]
    fn hybrid_engine_histories_are_hybrid_atomic(w in arb_workload()) {
        let h = run_workload(Protocol::Hybrid, &w);
        let spec = system();
        prop_assert!(WellFormedness::Hybrid.is_well_formed(&h));
        prop_assert!(is_hybrid_atomic(&h, &spec), "history:\n{h}");
        prop_assert!(is_atomic(&h, &spec));
    }
}

/// Hybrid with read-only auditors mixed in: the full §4.3 event model.
#[test]
fn hybrid_with_read_only_auditors_is_hybrid_atomic() {
    let mgr = TxnManager::new(Protocol::Hybrid);
    let account = atomicity::adts::object_for_protocol(X, BankAccountSpec::new(), &mgr);
    let mut handles = Vec::new();
    for i in 0..4u32 {
        let mgr = mgr.clone();
        let account = Arc::clone(&account);
        handles.push(std::thread::spawn(move || {
            for j in 0..5 {
                if (i + j) % 3 == 0 {
                    let audit = mgr.begin_read_only();
                    account
                        .invoke(&audit, op("balance", [] as [i64; 0]))
                        .unwrap();
                    mgr.commit(audit).unwrap();
                } else {
                    let txn = mgr.begin();
                    account.invoke(&txn, op("deposit", [1])).unwrap();
                    if j % 2 == 0 {
                        mgr.commit(txn).unwrap();
                    } else {
                        mgr.abort(txn);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let h = mgr.history();
    let spec = SystemSpec::new().with_object(X, BankAccountSpec::new());
    assert!(WellFormedness::Hybrid.is_well_formed(&h));
    assert!(is_hybrid_atomic(&h, &spec), "history:\n{h}");
}

/// The dynamic engine under the wait-die policy also yields dynamic
/// atomic histories (prevention instead of detection).
#[test]
fn wait_die_policy_preserves_dynamic_atomicity() {
    use atomicity::core::DeadlockPolicy;
    let mgr = TxnManager::with_policy(Protocol::Dynamic, DeadlockPolicy::WaitDie);
    let account = atomicity::adts::object_for_protocol(X, BankAccountSpec::new(), &mgr);
    let set = atomicity::adts::object_for_protocol(Y, IntSetSpec::new(), &mgr);
    let mut handles = Vec::new();
    for i in 0..4u32 {
        let mgr = mgr.clone();
        let account = Arc::clone(&account);
        let set = Arc::clone(&set);
        handles.push(std::thread::spawn(move || {
            for j in 0..6 {
                let txn = mgr.begin();
                let r1 = account.invoke(&txn, op("balance", [] as [i64; 0]));
                let r2 = set.invoke(&txn, op("insert", [i64::from((i + j) % 3)]));
                if r1.is_ok() && r2.is_ok() {
                    let _ = mgr.commit(txn);
                } else {
                    mgr.abort(txn);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let h = mgr.history();
    let spec = system();
    assert!(is_dynamic_atomic(&h, &spec), "history:\n{h}");
}
