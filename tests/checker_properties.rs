//! Property-based tests of the formal checkers: the definitional
//! implications and lemmas of §2–§4 on randomly generated histories.

use atomicity::spec::atomicity::{
    is_atomic, is_dynamic_atomic, is_hybrid_atomic, is_static_atomic,
};
use atomicity::spec::serial::{is_serializable_in_order, serial_history};
use atomicity::spec::specs::{BankAccountSpec, IntSetSpec};
use atomicity::spec::well_formed::WellFormedness;
use atomicity::spec::{
    op, ActivityId, Event, EventKind, History, ObjectId, Operation, SystemSpec, Value,
};
use proptest::prelude::*;

const X: ObjectId = ObjectId::new(1);
const Y: ObjectId = ObjectId::new(2);

fn system() -> SystemSpec {
    SystemSpec::new()
        .with_object(X, IntSetSpec::new())
        .with_object(Y, BankAccountSpec::new())
}

/// One random completed operation at a random object with a random
/// (possibly wrong) recorded result.
fn arb_op_result() -> impl Strategy<Value = (ObjectId, Operation, Value)> {
    prop_oneof![
        (0..3i64, prop::bool::ANY).prop_map(|(k, v)| (X, op("member", [k]), Value::from(v))),
        (0..3i64).prop_map(|k| (X, op("insert", [k]), Value::ok())),
        (0..3i64).prop_map(|k| (X, op("delete", [k]), Value::ok())),
        (1..4i64).prop_map(|n| (Y, op("deposit", [n]), Value::ok())),
        (1..4i64, prop::bool::ANY).prop_map(|(n, ok)| {
            let result = if ok {
                Value::ok()
            } else {
                BankAccountSpec::insufficient_funds()
            };
            (Y, op("withdraw", [n]), result)
        }),
        (0..8i64, prop::bool::ANY).prop_map(|(b, exact)| {
            let v = if exact { b } else { b + 1 };
            (Y, op("balance", [] as [i64; 0]), Value::from(v))
        }),
    ]
}

/// How an activity ends.
#[derive(Debug, Clone, Copy)]
enum Fate {
    Commit,
    Abort,
    Active,
}

fn arb_fate() -> impl Strategy<Value = Fate> {
    prop_oneof![
        3 => Just(Fate::Commit),
        1 => Just(Fate::Abort),
        1 => Just(Fate::Active),
    ]
}

/// A random well-formed (basic-model) history: 2–3 activities, each with
/// 1–2 completed operations and a fate, interleaved by random priorities.
fn arb_history() -> impl Strategy<Value = History> {
    let activity = (prop::collection::vec(arb_op_result(), 1..3), arb_fate());
    (prop::collection::vec(activity, 2..4), any::<u64>()).prop_map(|(acts, seed)| {
        // Build per-activity event streams.
        let mut streams: Vec<Vec<Event>> = Vec::new();
        for (i, (ops, fate)) in acts.iter().enumerate() {
            let a = ActivityId::new(i as u32 + 1);
            let mut ev = Vec::new();
            let mut objects = Vec::new();
            for (x, o, v) in ops {
                ev.push(Event::invoke(a, *x, o.clone()));
                ev.push(Event::respond(a, *x, v.clone()));
                if !objects.contains(x) {
                    objects.push(*x);
                }
            }
            match fate {
                Fate::Commit => {
                    for x in objects {
                        ev.push(Event::commit(a, x));
                    }
                }
                Fate::Abort => {
                    for x in objects {
                        ev.push(Event::abort(a, x));
                    }
                }
                Fate::Active => {}
            }
            streams.push(ev);
        }
        // Deterministic pseudo-random interleave preserving stream order.
        let mut rng = seed;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng
        };
        let mut h = History::new();
        let mut idx = vec![0usize; streams.len()];
        loop {
            let live: Vec<usize> = (0..streams.len())
                .filter(|&i| idx[i] < streams[i].len())
                .collect();
            if live.is_empty() {
                break;
            }
            let pick = live[(next() % live.len() as u64) as usize];
            h.push(streams[pick][idx[pick]].clone());
            idx[pick] += 1;
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated histories are well-formed in the basic model.
    #[test]
    fn generated_histories_are_well_formed(h in arb_history()) {
        prop_assert!(WellFormedness::Basic.is_well_formed(&h));
    }

    /// Dynamic atomicity implies atomicity (§4.1: a consistent total
    /// order always exists because `precedes` is a partial order).
    #[test]
    fn dynamic_implies_atomic(h in arb_history()) {
        let spec = system();
        if is_dynamic_atomic(&h, &spec) {
            prop_assert!(is_atomic(&h, &spec));
        }
    }

    /// `perm` is idempotent and a subsequence of `h` containing exactly
    /// the committed activities.
    #[test]
    fn perm_is_idempotent_and_committed_only(h in arb_history()) {
        let p = h.perm();
        prop_assert_eq!(p.perm(), p.clone());
        let committed = h.committed_activities();
        for e in p.iter() {
            prop_assert!(committed.contains(&e.activity));
        }
        prop_assert!(p.len() <= h.len());
    }

    /// Lemma 2: precedes(h|x) ⊆ precedes(h) for every object x.
    #[test]
    fn lemma2_precedes_projection(h in arb_history()) {
        let whole = h.precedes();
        for x in h.objects() {
            for pair in h.project_object(x).precedes() {
                prop_assert!(whole.contains(&pair));
            }
        }
    }

    /// Lemma 3: h is serializable in order T iff every h|x is.
    #[test]
    fn lemma3_serializable_iff_projections(h in arb_history()) {
        let spec = system();
        let perm = h.perm();
        let order: Vec<ActivityId> = perm.activities();
        let whole = is_serializable_in_order(&perm, &spec, &order);
        let parts = h.objects().into_iter().all(|x| {
            is_serializable_in_order(&perm.project_object(x), &spec, &order)
        });
        prop_assert_eq!(whole, parts);
    }

    /// The serial history built for an order is equivalent to the original
    /// (same per-activity views) and is serial (no interleaving).
    #[test]
    fn serial_history_is_equivalent(h in arb_history()) {
        let order = h.activities();
        let s = serial_history(&h, &order);
        prop_assert!(h.is_equivalent(&s));
        prop_assert_eq!(s.len(), h.len());
        // Serial: each activity's events form one contiguous block.
        let mut seen_done: Vec<ActivityId> = Vec::new();
        let mut current: Option<ActivityId> = None;
        for e in s.iter() {
            match current {
                Some(a) if a == e.activity => {}
                _ => {
                    prop_assert!(!seen_done.contains(&e.activity), "interleaved activity");
                    if let Some(a) = current {
                        seen_done.push(a);
                    }
                    current = Some(e.activity);
                }
            }
        }
    }

    /// Decorating a basic history with start-order initiate events keeps
    /// it static-well-formed, and static atomicity then implies atomicity.
    #[test]
    fn static_implies_atomic(h in arb_history()) {
        let hs = atomicity::bench::enumerate::with_start_order_timestamps(&h, X);
        // Activities that never invoke anything get no initiation; only
        // check when the decoration covers every activity.
        if WellFormedness::Static.is_well_formed(&hs) {
            let spec = system();
            if is_static_atomic(&hs, &spec) {
                prop_assert!(is_atomic(&hs, &spec));
            }
        }
    }

    /// Commit-order hybrid timestamps are always consistent with precedes
    /// (the decorated history is hybrid-well-formed whenever every
    /// activity either commits with a timestamp or is classified read-only
    /// correctly), and hybrid atomicity implies atomicity.
    #[test]
    fn hybrid_implies_atomic(h in arb_history()) {
        let hh = atomicity::bench::enumerate::with_commit_order_timestamps(&h);
        let spec = system();
        if is_hybrid_atomic(&hh, &spec) {
            prop_assert!(is_atomic(&hh, &spec));
        }
        // Commit-order timestamps never contradict precedes.
        let ts = hh.timestamps();
        for (a, b) in hh.precedes() {
            if let (Some(&ta), Some(&tb)) = (ts.get(&a), ts.get(&b)) {
                prop_assert!(ta < tb, "commit-order ts must respect precedes");
            }
        }
    }

    /// Equivalence is symmetric and reflexive on generated histories.
    #[test]
    fn equivalence_is_reflexive_symmetric(h in arb_history(), k in arb_history()) {
        prop_assert!(h.is_equivalent(&h));
        prop_assert_eq!(h.is_equivalent(&k), k.is_equivalent(&h));
    }

    /// Projections partition the events of the history.
    #[test]
    fn projections_partition(h in arb_history()) {
        let total: usize = h.objects().iter().map(|&x| h.project_object(x).len()).sum();
        prop_assert_eq!(total, h.len());
        let total_a: usize = h
            .activities()
            .iter()
            .map(|&a| h.project_activity(a).len())
            .sum();
        prop_assert_eq!(total_a, h.len());
    }
}

/// Arbitrary event soup — not even well-formed — must never panic any
/// checker or history accessor (robustness of the decision procedures).
fn arb_any_event() -> impl Strategy<Value = Event> {
    let activity = (1u32..4).prop_map(ActivityId::new);
    let object = (1u32..3).prop_map(ObjectId::new);
    let kind = prop_oneof![
        (0..3i64).prop_map(|k| EventKind::Invoke(op("member", [k]))),
        prop::bool::ANY.prop_map(|b| EventKind::Respond(Value::from(b))),
        Just(EventKind::Respond(Value::ok())),
        Just(EventKind::Commit),
        (1u64..5).prop_map(EventKind::CommitTs),
        Just(EventKind::Abort),
        (1u64..5).prop_map(EventKind::Initiate),
    ];
    (activity, object, kind).prop_map(|(activity, object, kind)| Event {
        activity,
        object,
        kind,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn checkers_never_panic_on_event_soup(
        events in prop::collection::vec(arb_any_event(), 0..12)
    ) {
        let h = History::from_events(events);
        let spec = system();
        // None of these may panic, whatever they return.
        let _ = WellFormedness::Basic.check(&h);
        let _ = WellFormedness::Static.check(&h);
        let _ = WellFormedness::Hybrid.check(&h);
        let _ = is_atomic(&h, &spec);
        let _ = is_dynamic_atomic(&h, &spec);
        let _ = is_static_atomic(&h, &spec);
        let _ = is_hybrid_atomic(&h, &spec);
        let _ = h.perm();
        let _ = h.precedes();
        let _ = h.timestamps();
        let _ = h.updates();
        let _ = atomicity::spec::viz::timeline(&h);
        let _ = atomicity::spec::viz::precedes_dot(&h);
        for x in h.objects() {
            let _ = h.project_object(x);
        }
        for a in h.activities() {
            let _ = h.project_activity(a);
            let _ = h.ops_by_object(a);
        }
    }

    /// JSON round-trips preserve arbitrary histories exactly.
    #[test]
    fn history_serde_round_trip(
        events in prop::collection::vec(arb_any_event(), 0..12)
    ) {
        let h = History::from_events(events);
        let json = serde_json::to_string(&h).unwrap();
        let back: History = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(h, back);
    }
}

/// Deterministic regression: an activity with a stray timestamped commit
/// in the basic model is still handled (kind predicates stay coherent).
#[test]
fn mixed_commit_kinds_classify() {
    let a = ActivityId::new(1);
    let h = History::from_events(vec![
        Event::invoke(a, X, op("insert", [1])),
        Event::respond(a, X, Value::ok()),
        Event {
            activity: a,
            object: X,
            kind: EventKind::CommitTs(5),
        },
    ]);
    assert!(h.committed_activities().contains(&a));
    assert_eq!(h.timestamps()[&a], 5);
    assert!(is_atomic(&h, &system()));
}
