//! Reconciliation property: the metrics registry's counters agree with
//! the counts derivable from the recorded history and from the manager's
//! outcomes — the observability layer reports the computation that
//! actually happened, neither more nor less.

use atomicity::bench::Engine;
use atomicity::core::TraceKind;
use atomicity::spec::{op, EventKind, ObjectId};
use proptest::prelude::*;

/// One transaction of the generated workload.
#[derive(Debug, Clone)]
struct TxnPlan {
    /// Operations: (object index, op choice). Non-empty, so every
    /// committed transaction leaves events at some object.
    ops: Vec<(usize, OpChoice)>,
    commit: bool,
}

#[derive(Debug, Clone, Copy)]
enum OpChoice {
    Deposit(i64),
    Withdraw(i64),
    Balance,
}

impl OpChoice {
    fn operation(self) -> atomicity::spec::Operation {
        match self {
            OpChoice::Deposit(n) => op("deposit", [n]),
            OpChoice::Withdraw(n) => op("withdraw", [n]),
            OpChoice::Balance => op("balance", [] as [i64; 0]),
        }
    }
}

fn arb_op() -> impl Strategy<Value = (usize, OpChoice)> {
    (
        0..2usize,
        prop_oneof![
            (1..5i64).prop_map(OpChoice::Deposit),
            (1..5i64).prop_map(OpChoice::Withdraw),
            Just(OpChoice::Balance),
        ],
    )
}

fn arb_plan() -> impl Strategy<Value = TxnPlan> {
    (prop::collection::vec(arb_op(), 1..5), prop::bool::ANY)
        .prop_map(|(ops, commit)| TxnPlan { ops, commit })
}

fn arb_engine() -> impl Strategy<Value = Engine> {
    (0..Engine::ALL.len()).prop_map(|i| Engine::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn registry_counters_reconcile_with_the_history(
        engine in arb_engine(),
        plans in prop::collection::vec(arb_plan(), 1..12),
    ) {
        let handle = engine.builder().collect_metrics().build();
        let mgr = handle.manager();
        let objects = [
            handle.account(ObjectId::new(1), 100),
            handle.account(ObjectId::new(2), 100),
        ];

        // Sequential transactions (one live at a time), so no engine can
        // block or conflict: every invocation is admitted and every fate
        // is the planned one.
        let (mut committed, mut aborted) = (0u64, 0u64);
        for plan in &plans {
            let txn = mgr.begin();
            for &(obj, choice) in &plan.ops {
                objects[obj]
                    .invoke(&txn, choice.operation())
                    .expect("sequential invocations are always admitted");
            }
            if plan.commit {
                mgr.commit(txn).expect("sequential commits succeed");
                committed += 1;
            } else {
                mgr.abort(txn);
                aborted += 1;
            }
        }

        let h = mgr.history();
        let snap = handle.metrics().snapshot();

        // Manager-level counts match both the plan and the history.
        prop_assert_eq!(snap.txns_begun, plans.len() as u64);
        prop_assert_eq!(snap.txns_committed, committed);
        prop_assert_eq!(snap.txns_aborted, aborted);
        prop_assert_eq!(h.committed_activities().len() as u64, committed);
        prop_assert_eq!(h.aborted_activities().len() as u64, aborted);

        // Admissions == respond events: each admitted invocation records
        // exactly one response in the history.
        let responds = h
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Respond(_)))
            .count() as u64;
        let admissions: u64 = snap.objects.iter().map(|o| o.stats.admissions).sum();
        prop_assert_eq!(admissions, responds);
        prop_assert_eq!(snap.invoke_ns.count, admissions);

        // Per-object: the handle's commit/abort counters equal the
        // commit/abort events in that object's projected history.
        for o in &snap.objects {
            let ph = h.project_object(ObjectId::new(o.object));
            let commits = ph
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Commit | EventKind::CommitTs(_)))
                .count() as u64;
            let aborts = ph
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Abort))
                .count() as u64;
            prop_assert_eq!(o.stats.commits, commits);
            prop_assert_eq!(o.stats.aborts, aborts);
        }

        // The commit-path histogram sampled exactly the commits, and the
        // trace ring (far from wrapping at this size) kept every
        // transaction-lifecycle event.
        prop_assert_eq!(snap.commit_ns.count, committed);
        let trace = handle.metrics().trace_events();
        prop_assert_eq!(trace.dropped, 0);
        let count_kind = |k: TraceKind| {
            trace.records.iter().filter(|r| r.kind == k).count() as u64
        };
        prop_assert_eq!(count_kind(TraceKind::Begin), snap.txns_begun);
        prop_assert_eq!(count_kind(TraceKind::Commit), committed);
        prop_assert_eq!(count_kind(TraceKind::Abort), aborted);
        prop_assert_eq!(count_kind(TraceKind::Invoke), admissions);
    }
}
