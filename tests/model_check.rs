//! Exhaustive schedule exploration ("model checking") of the engines —
//! the strongest correctness evidence in the repository: every
//! interleaving of the scripted transactions (at operation granularity)
//! is verified against the protocol's local atomicity property.
//!
//! The explorer itself lives in [`atomicity::bench::explore`]; the
//! `experiments v1` table prints the same statistics.

use atomicity::bench::engines::Engine;
use atomicity::bench::explore::{engine_factory, explore, property_verifier, Script};
use atomicity::core::Protocol;
use atomicity::spec::specs::{
    BankAccountSpec, BoundedBufferSpec, FifoQueueSpec, IntSetSpec, SemiqueueSpec,
};
use atomicity::spec::{op, ObjectId, SystemSpec};

/// The §5.1 bank scenario, tight funds: every schedule of two withdrawals
/// and a deposit against balance 5 satisfies the property; some schedules
/// block or force aborts.
#[test]
fn bank_tight_funds_all_schedules() {
    for (engine, protocol) in [
        (Engine::Dynamic, Protocol::Dynamic),
        (Engine::Static, Protocol::Static),
        (Engine::Hybrid, Protocol::Hybrid),
    ] {
        let factory = engine_factory(engine, vec![BankAccountSpec::with_initial(5)]);
        let scripts = vec![
            Script::update(vec![(0, op("withdraw", [4]))]),
            Script::update(vec![(0, op("withdraw", [3]))]),
            Script::update(vec![(0, op("deposit", [2]))]),
        ];
        let spec =
            SystemSpec::new().with_object(ObjectId::new(1), BankAccountSpec::with_initial(5));
        let stats = explore(&factory, &scripts, &property_verifier(protocol, spec));
        assert!(stats.leaves > 0, "{engine}: no schedules completed");
        assert!(
            stats.blocked_edges > 0 || stats.forced_aborts > 0,
            "{engine}: tight funds must create contention: {stats:?}"
        );
    }
}

/// The §5.1 bank scenario with headroom: under the dynamic engine NO
/// schedule blocks (full concurrency), confirming the paper's claim at
/// every interleaving, not just sampled ones.
#[test]
fn bank_headroom_never_blocks_dynamically() {
    let factory = engine_factory(Engine::Dynamic, vec![BankAccountSpec::with_initial(100)]);
    let scripts = vec![
        Script::update(vec![(0, op("withdraw", [4]))]),
        Script::update(vec![(0, op("withdraw", [3]))]),
        Script::update(vec![(0, op("deposit", [2]))]),
    ];
    let spec = SystemSpec::new().with_object(ObjectId::new(1), BankAccountSpec::with_initial(100));
    let stats = explore(
        &factory,
        &scripts,
        &property_verifier(Protocol::Dynamic, spec),
    );
    assert_eq!(stats.blocked_edges, 0, "headroom ⇒ no admission blocks");
    assert_eq!(stats.stuck, 0);
    assert_eq!(stats.forced_aborts, 0);
    // 3 txns × 2 actions each (op + commit): 6!/(2!2!2!) = 90 schedules.
    assert_eq!(stats.leaves, 90);
}

/// The §5.1 queue scenario: interleaved enqueue batches, all schedules.
#[test]
fn queue_interleaved_enqueues_all_schedules() {
    for (engine, protocol) in [
        (Engine::Dynamic, Protocol::Dynamic),
        (Engine::Hybrid, Protocol::Hybrid),
    ] {
        let factory = engine_factory(engine, vec![FifoQueueSpec::new()]);
        let scripts = vec![
            Script::update(vec![(0, op("enqueue", [1])), (0, op("enqueue", [2]))]),
            Script::update(vec![(0, op("enqueue", [1])), (0, op("enqueue", [2]))]),
        ];
        let spec = SystemSpec::new().with_object(ObjectId::new(1), FifoQueueSpec::new());
        let stats = explore(&factory, &scripts, &property_verifier(protocol, spec));
        // 2 txns × 3 actions: 6!/(3!3!) = 20 schedules, none block.
        assert_eq!(stats.leaves, 20, "{engine}");
        assert_eq!(
            stats.blocked_edges, 0,
            "{engine}: enqueues interleave freely"
        );
    }
}

/// The same queue scripts under the conservative serial-locking fallback:
/// schedules complete but interleavings are refused (blocked edges), the
/// §5.1 suboptimality at schedule granularity.
#[test]
fn queue_under_serial_locking_blocks_interleavings() {
    let factory = engine_factory(Engine::CommutativityLocking, vec![FifoQueueSpec::new()]);
    let scripts = vec![
        Script::update(vec![(0, op("enqueue", [1])), (0, op("enqueue", [2]))]),
        Script::update(vec![(0, op("enqueue", [1])), (0, op("enqueue", [2]))]),
    ];
    let spec = SystemSpec::new().with_object(ObjectId::new(1), FifoQueueSpec::new());
    // Locking baselines still guarantee dynamic atomicity.
    let stats = explore(
        &factory,
        &scripts,
        &property_verifier(Protocol::Dynamic, spec),
    );
    assert!(stats.leaves > 0);
    assert!(
        stats.blocked_edges > 0,
        "serial locking must refuse interleaved enqueues: {stats:?}"
    );
}

/// Cross-object read/update scripts: the classic deadlock shape. Every
/// schedule either completes or wedges; wedged schedules resolve by abort
/// and the property still holds.
#[test]
fn cross_object_deadlock_shape_all_schedules() {
    let factory = engine_factory(
        Engine::Dynamic,
        vec![BankAccountSpec::new(), BankAccountSpec::new()],
    );
    let scripts = vec![
        Script::update(vec![
            (0, op("balance", [] as [i64; 0])),
            (1, op("deposit", [1])),
        ]),
        Script::update(vec![
            (1, op("balance", [] as [i64; 0])),
            (0, op("deposit", [1])),
        ]),
    ];
    let spec = SystemSpec::new()
        .with_object(ObjectId::new(1), BankAccountSpec::new())
        .with_object(ObjectId::new(2), BankAccountSpec::new());
    let stats = explore(
        &factory,
        &scripts,
        &property_verifier(Protocol::Dynamic, spec),
    );
    assert!(stats.leaves > 0);
    assert!(stats.blocked_edges > 0, "the crossing pattern must contend");
    assert!(stats.stuck > 0, "some schedule must wedge (deadlock shape)");
}

/// Set operations with an audit under hybrid atomicity: read-only
/// transactions never participate in wedges, in any schedule.
#[test]
fn hybrid_audit_never_blocks_in_any_schedule() {
    let factory = engine_factory(Engine::Hybrid, vec![IntSetSpec::new()]);
    let scripts = vec![
        Script::update(vec![(0, op("insert", [3]))]),
        Script::update(vec![(0, op("delete", [3]))]),
        Script::audit(vec![
            (0, op("size", [] as [i64; 0])),
            (0, op("member", [3])),
        ]),
    ];
    let spec = SystemSpec::new().with_object(ObjectId::new(1), IntSetSpec::new());
    let stats = explore(
        &factory,
        &scripts,
        &property_verifier(Protocol::Hybrid, spec),
    );
    assert!(stats.leaves > 0);
    assert_eq!(stats.stuck, 0, "audits cannot participate in wedges");
}

/// Coherence between the static `lock_producible` predicate (used by the
/// E5 census) and the real locking engine: every history the serial-
/// locking engine actually produces is lock-producible under the same
/// (nothing-commutes) table.
#[test]
fn lock_producible_predicate_matches_engine_behavior() {
    use atomicity::bench::enumerate::lock_producible;
    let factory = engine_factory(Engine::CommutativityLocking, vec![FifoQueueSpec::new()]);
    let scripts = vec![
        Script::update(vec![(0, op("enqueue", [1])), (0, op("enqueue", [2]))]),
        Script::update(vec![(0, op("enqueue", [3]))]),
    ];
    let verify = |mgr: &atomicity::core::TxnManager| {
        let h = mgr.history();
        assert!(
            lock_producible(&h, |_, _| false),
            "the serial-locking engine produced a non-lock-producible history:
{h}"
        );
    };
    let stats = explore(&factory, &scripts, &verify);
    assert!(stats.leaves > 0);
}

/// The §5.2 semiqueue: concurrent enqueues plus a dequeue, all schedules,
/// under every property engine. Non-deterministic `deq` is exactly what
/// the permutation-based checkers must handle: any present element may
/// come back, and the engines must admit the interleavings that keep some
/// serialization valid.
#[test]
fn semiqueue_enq_deq_all_schedules() {
    for (engine, protocol) in [
        (Engine::Dynamic, Protocol::Dynamic),
        (Engine::Static, Protocol::Static),
        (Engine::Hybrid, Protocol::Hybrid),
    ] {
        let factory = engine_factory(engine, vec![SemiqueueSpec::new()]);
        let scripts = vec![
            Script::update(vec![(0, op("enq", [1]))]),
            Script::update(vec![(0, op("enq", [2]))]),
            Script::update(vec![(0, op("deq", [] as [i64; 0]))]),
        ];
        let spec = SystemSpec::new().with_object(ObjectId::new(1), SemiqueueSpec::new());
        let stats = explore(&factory, &scripts, &property_verifier(protocol, spec));
        assert!(stats.leaves > 0, "{engine}: no schedules completed");
        assert_eq!(
            stats.stuck, 0,
            "{engine}: single-object scripts never wedge"
        );
    }
}

/// Semiqueue enqueues commute (a multiset insert is order-independent),
/// so the dynamic engine must admit every interleaving of two enqueue
/// batches without blocking — the §5.2 concurrency argument, exhaustively.
#[test]
fn semiqueue_enqueues_never_block_dynamically() {
    let factory = engine_factory(Engine::Dynamic, vec![SemiqueueSpec::new()]);
    let scripts = vec![
        Script::update(vec![(0, op("enq", [1])), (0, op("enq", [2]))]),
        Script::update(vec![(0, op("enq", [3])), (0, op("enq", [4]))]),
    ];
    let spec = SystemSpec::new().with_object(ObjectId::new(1), SemiqueueSpec::new());
    let stats = explore(
        &factory,
        &scripts,
        &property_verifier(Protocol::Dynamic, spec),
    );
    // 2 txns × 3 actions: 6!/(3!3!) = 20 schedules, none block.
    assert_eq!(stats.leaves, 20);
    assert_eq!(
        stats.blocked_edges, 0,
        "multiset enqueues interleave freely"
    );
    assert_eq!(stats.forced_aborts, 0);
}

/// Bounded buffer at capacity 1: two puts genuinely conflict (only one
/// can see room), so every property engine must block or abort some
/// schedules — the state-dependence the §5.1 argument turns on, on the
/// producer side.
#[test]
fn bounded_buffer_at_capacity_contends_in_all_schedules() {
    for (engine, protocol) in [
        (Engine::Dynamic, Protocol::Dynamic),
        (Engine::Static, Protocol::Static),
        (Engine::Hybrid, Protocol::Hybrid),
    ] {
        let factory = engine_factory(engine, vec![BoundedBufferSpec::with_capacity(1)]);
        let scripts = vec![
            Script::update(vec![(0, op("put", [1]))]),
            Script::update(vec![(0, op("put", [2]))]),
            Script::update(vec![(0, op("take", [] as [i64; 0]))]),
        ];
        let spec =
            SystemSpec::new().with_object(ObjectId::new(1), BoundedBufferSpec::with_capacity(1));
        let stats = explore(&factory, &scripts, &property_verifier(protocol, spec));
        assert!(stats.leaves > 0, "{engine}: no schedules completed");
        assert!(
            stats.blocked_edges > 0 || stats.forced_aborts > 0,
            "{engine}: puts at capacity 1 must contend: {stats:?}"
        );
    }
}

/// Bounded buffer with room for everyone: capacity 2 holds both puts, so
/// the dynamic engine admits every interleaving without blocking —
/// capacity, like bank headroom, is the data the admission decision
/// depends on.
#[test]
fn bounded_buffer_with_room_never_blocks_dynamically() {
    let factory = engine_factory(Engine::Dynamic, vec![BoundedBufferSpec::with_capacity(2)]);
    let scripts = vec![
        Script::update(vec![(0, op("put", [1]))]),
        Script::update(vec![(0, op("put", [2]))]),
    ];
    let spec = SystemSpec::new().with_object(ObjectId::new(1), BoundedBufferSpec::with_capacity(2));
    let stats = explore(
        &factory,
        &scripts,
        &property_verifier(Protocol::Dynamic, spec),
    );
    // 2 txns × 2 actions: 4!/(2!2!) = 6 schedules.
    assert_eq!(stats.leaves, 6);
    assert_eq!(stats.blocked_edges, 0, "room for both ⇒ no blocks");
    assert_eq!(stats.forced_aborts, 0);
}

/// Static atomicity: schedules where an early-timestamp insert arrives
/// after a later-timestamp member committed force the insert to abort.
#[test]
fn static_schedules_include_forced_aborts() {
    let factory = engine_factory(Engine::Static, vec![IntSetSpec::new()]);
    let scripts = vec![
        Script::update(vec![(0, op("insert", [3]))]), // ts 1
        Script::update(vec![(0, op("member", [3]))]), // ts 2
    ];
    let spec = SystemSpec::new().with_object(ObjectId::new(1), IntSetSpec::new());
    let stats = explore(
        &factory,
        &scripts,
        &property_verifier(Protocol::Static, spec),
    );
    assert!(stats.leaves > 0);
    assert!(
        stats.forced_aborts > 0,
        "some schedule must force the late insert to abort: {stats:?}"
    );
}
