//! Properties of the sharded history recorder: concurrent multi-threaded
//! recording must lose nothing, duplicate nothing, and merge into exactly
//! the order of the sequence stamps handed out at record time — the
//! faithful-linearization contract every checker in the test suite leans
//! on.

use atomicity::core::HistoryLog;
use atomicity::spec::{ActivityId, Event, ObjectId};
use proptest::prelude::*;

/// Identity of one recorded event, recoverable from the merged history:
/// thread `t`'s `i`-th event carries activity id `t * 10_000 + i`.
fn tag(thread: usize, i: usize) -> ActivityId {
    ActivityId::new((thread * 10_000 + i) as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent recording from N threads: the snapshot equals the
    /// stamp-sorted union of what the threads recorded.
    #[test]
    fn snapshot_is_the_stamp_sorted_union(
        counts in prop::collection::vec(1..40usize, 2..7),
        shards in 1..24usize,
    ) {
        let log = HistoryLog::with_shards(shards);
        let mut handles = Vec::new();
        for (t, &n) in counts.iter().enumerate() {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                (0..n)
                    .map(|i| (log.record(Event::commit(tag(t, i), ObjectId::new(1))), t, i))
                    .collect::<Vec<(u64, usize, usize)>>()
            }));
        }
        let mut recorded: Vec<(u64, usize, usize)> = Vec::new();
        for h in handles {
            recorded.extend(h.join().unwrap());
        }
        let total: usize = counts.iter().sum();

        // No loss, no duplication: stamps are unique and the snapshot
        // holds exactly one event per record call.
        let mut stamps: Vec<u64> = recorded.iter().map(|(s, _, _)| *s).collect();
        stamps.sort_unstable();
        stamps.dedup();
        // Any shortfall here means duplicate stamps were handed out.
        prop_assert_eq!(stamps.len(), total);
        let h = log.snapshot();
        prop_assert_eq!(h.len(), total);

        // Order = stamp order: sorting what the threads got back by stamp
        // must reproduce the merged history exactly.
        recorded.sort_unstable_by_key(|(s, _, _)| *s);
        for (event, (_, t, i)) in h.events().iter().zip(&recorded) {
            prop_assert_eq!(event.activity, tag(*t, *i));
        }
    }

    /// `record_all` batches stay contiguous in the merged history even
    /// under concurrent recording from other threads.
    #[test]
    fn record_all_batches_stay_contiguous(
        batches in prop::collection::vec(1..6usize, 2..6),
    ) {
        let log = HistoryLog::new();
        let mut handles = Vec::new();
        for (t, &n) in batches.iter().enumerate() {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                let events: Vec<Event> =
                    (0..n).map(|i| Event::commit(tag(t, i), ObjectId::new(1))).collect();
                (log.record_all(events), t, n)
            }));
        }
        let mut ranges = Vec::new();
        for h in handles {
            ranges.push(h.join().unwrap());
        }
        let h = log.snapshot();
        prop_assert_eq!(h.len(), batches.iter().sum::<usize>());
        for (range, t, n) in ranges {
            prop_assert_eq!(range.end - range.start, n as u64);
            // The batch occupies positions range.start..range.end of the
            // merged history, in intra-batch order: nothing interleaved.
            for i in 0..n {
                let event = &h.events()[(range.start as usize) + i];
                prop_assert_eq!(event.activity, tag(t, i));
            }
        }
    }

    /// Shard count is a performance knob, not a semantics knob: for any
    /// single-threaded script, every shard count yields the same history.
    #[test]
    fn shard_count_does_not_change_the_history(
        ids in prop::collection::vec(0..50u32, 1..30),
        shards in 1..24usize,
    ) {
        let sharded = HistoryLog::with_shards(shards);
        let coarse = HistoryLog::coarse();
        for &id in &ids {
            let e = Event::commit(ActivityId::new(id), ObjectId::new(1));
            sharded.record(e.clone());
            coarse.record(e);
        }
        prop_assert_eq!(sharded.snapshot(), coarse.snapshot());
    }
}
