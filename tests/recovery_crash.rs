//! Recoverability under crashes: exhaustive crash-point sweeps on the
//! distributed simulation and strategy-equivalence checks (E6's backing
//! tests).

use atomicity::core::recovery::{IntentionsStore, RecordKind, StableLog, UndoStore};
use atomicity::sim::{Cluster, NodeId, SimConfig};
use atomicity::spec::specs::KvMapSpec;
use atomicity::spec::{op, ActivityId, ObjectId, Value};
use proptest::prelude::*;

/// Crash every node at every event index of a two-transfer run: atomicity
/// and conservation must survive every single point.
#[test]
fn exhaustive_crash_sweep_two_transfers() {
    let cfg = SimConfig::default();
    let baseline_events = {
        let mut c = Cluster::new(cfg.clone());
        c.submit_transfer(0, 5, 30);
        c.submit_transfer(2, 7, 10);
        c.run_to_quiescence();
        c.stats().events
    };
    for crash_at in 0..=baseline_events {
        for node in 0..cfg.nodes {
            let mut c = Cluster::new(cfg.clone());
            let t1 = c.submit_transfer(0, 5, 30);
            let t2 = c.submit_transfer(2, 7, 10);
            c.schedule_crash(crash_at, NodeId::new(node), 25_000);
            c.run_to_quiescence();
            c.heal();
            assert!(c.decision(t1).is_some() && c.decision(t2).is_some());
            c.verify_atomicity()
                .unwrap_or_else(|e| panic!("crash@{crash_at} n{node}: {e}"));
            c.verify_conservation()
                .unwrap_or_else(|e| panic!("crash@{crash_at} n{node}: {e}"));
        }
    }
}

/// Two simultaneous node crashes: still atomic after healing.
#[test]
fn double_crash_still_atomic() {
    let cfg = SimConfig::default();
    for crash_at in [0u64, 3, 6, 9] {
        let mut c = Cluster::new(cfg.clone());
        for i in 0..5i64 {
            c.submit_transfer(i % 16, (i * 3 + 1) % 16, 7);
        }
        c.schedule_crash(crash_at, NodeId::new(0), 20_000);
        c.schedule_crash(crash_at + 2, NodeId::new(2), 35_000);
        c.run_to_quiescence();
        c.heal();
        c.verify_atomicity().unwrap();
        c.verify_conservation().unwrap();
        assert!(c.stats().crashes >= 2);
    }
}

/// A node that crashes repeatedly (crash-loop) eventually converges.
#[test]
fn repeated_crashes_converge() {
    let mut c = Cluster::new(SimConfig::default());
    for i in 0..4i64 {
        c.submit_transfer(i, i + 4, 9);
    }
    c.schedule_crash(2, NodeId::new(1), 8_000);
    c.schedule_crash(10, NodeId::new(1), 8_000);
    c.schedule_crash(18, NodeId::new(1), 8_000);
    c.run_to_quiescence();
    c.heal();
    c.verify_atomicity().unwrap();
    c.verify_conservation().unwrap();
    assert!(c.node(NodeId::new(1)).crash_count() >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any interleaving of prepares/commits/aborts, intentions-list
    /// recovery and undo-log rollback reconstruct the same state.
    #[test]
    fn strategies_agree_on_random_schedules(
        script in prop::collection::vec((0..6i64, -3..4i64, 0..3u8), 1..25)
    ) {
        let object = ObjectId::new(1);
        let redo = IntentionsStore::new(KvMapSpec::new(), object, StableLog::new());
        let undo = UndoStore::new(KvMapSpec::new(), object);
        for (i, (key, delta, fate)) in script.iter().enumerate() {
            let txn = ActivityId::new(i as u32 + 1);
            let pair = (op("adjust", [*key, *delta]), Value::ok());
            redo.prepare(txn, vec![pair.clone()]);
            undo.apply(txn, pair);
            match fate {
                0 => { redo.commit(txn); undo.commit(txn); }
                1 => { redo.abort(txn); undo.abort(txn); }
                _ => {} // left in doubt
            }
        }
        redo.crash();
        let outcome = redo.recover();
        let undone = undo.recover();
        prop_assert_eq!(redo.committed_frontier(), undo.state());
        // In-doubt sets must agree with the script's "left open" entries.
        let open = script.iter().filter(|(_, _, f)| *f >= 2).count();
        prop_assert_eq!(outcome.in_doubt.len(), open);
        prop_assert!(undone.len() >= open);
    }

    /// Crash at an **arbitrary prefix** of the stable log: replaying the
    /// surviving records must reconstruct exactly the state of the
    /// transactions whose Commit record survived the cut — a
    /// committed-prefix state, never a torn one — and the in-doubt set
    /// must be exactly the prepares left without an outcome in the
    /// prefix.
    #[test]
    fn crash_at_any_log_prefix_recovers_a_committed_prefix_state(
        script in prop::collection::vec((0..6i64, -3..4i64, 0..3u8), 1..20),
        cut in 0..64usize,
    ) {
        let object = ObjectId::new(1);
        let log = StableLog::new();
        let store = IntentionsStore::new(KvMapSpec::new(), object, log.clone());
        for (i, (key, delta, fate)) in script.iter().enumerate() {
            let txn = ActivityId::new(i as u32 + 1);
            store.prepare(txn, vec![(op("adjust", [*key, *delta]), Value::ok())]);
            match fate {
                0 => store.commit(txn),
                1 => store.abort(txn),
                _ => {} // left in doubt
            }
        }
        // The crash loses an arbitrary log suffix.
        let keep = cut % (log.len() + 1);
        log.truncate(keep);
        store.crash();
        let outcome = store.recover();

        // Oracle: fold the surviving records directly. Adjusts commute,
        // so the expected state is the per-key delta sum of exactly the
        // transactions whose Commit record index is below the cut.
        let prefix = log.records();
        let mut prepared = std::collections::BTreeSet::new();
        let mut resolved = std::collections::BTreeSet::new();
        let mut expected = std::collections::BTreeMap::new();
        for r in &prefix {
            match &r.kind {
                RecordKind::Prepare { .. } => { prepared.insert(r.txn); }
                RecordKind::Commit | RecordKind::CommitDep { .. } => {
                    resolved.insert(r.txn);
                    let (key, delta, _) = script[r.txn.raw() as usize - 1];
                    *expected.entry(key).or_insert(0i64) += delta;
                }
                RecordKind::Abort => { resolved.insert(r.txn); }
            }
        }
        prop_assert_eq!(store.committed_frontier(), vec![expected]);
        let open: std::collections::BTreeSet<_> =
            prepared.difference(&resolved).copied().collect();
        prop_assert_eq!(outcome.in_doubt.len(), open.len());
        for txn in &outcome.in_doubt {
            prop_assert!(open.contains(txn));
        }
    }

    /// Undo-log recovery restores exactly the pre-transaction state at
    /// **every** crash prefix of the action stream: replaying the first
    /// `k` actions into a fresh store and crashing must leave precisely
    /// the effects of the transactions that committed within those `k`
    /// actions — uncommitted work is rolled back to the state it found,
    /// aborted work stays gone, and the undone set is exactly the
    /// transactions caught mid-flight.
    #[test]
    fn undo_recovery_restores_pre_transaction_state_at_every_prefix(
        script in prop::collection::vec((0..5i64, -3..4i64, 0..3u8), 1..12)
    ) {
        #[derive(Clone, Copy)]
        enum Action { Apply(u32, i64, i64), Commit(u32), Abort(u32) }
        let mut actions = Vec::new();
        for (i, (key, delta, fate)) in script.iter().enumerate() {
            let t = i as u32 + 1;
            actions.push(Action::Apply(t, *key, *delta));
            match fate {
                0 => actions.push(Action::Commit(t)),
                1 => actions.push(Action::Abort(t)),
                _ => {} // crash will catch it mid-flight
            }
        }
        for k in 0..=actions.len() {
            let store = UndoStore::new(KvMapSpec::new(), ObjectId::new(1));
            let mut committed = std::collections::BTreeSet::new();
            let mut aborted = std::collections::BTreeSet::new();
            let mut applied = std::collections::BTreeSet::new();
            let mut oracle = std::collections::BTreeMap::new();
            for a in &actions[..k] {
                match *a {
                    Action::Apply(t, key, delta) => {
                        store.apply(ActivityId::new(t), (op("adjust", [key, delta]), Value::ok()));
                        applied.insert(t);
                    }
                    Action::Commit(t) => {
                        store.commit(ActivityId::new(t));
                        committed.insert(t);
                        let (key, delta, _) = script[t as usize - 1];
                        *oracle.entry(key).or_insert(0i64) += delta;
                    }
                    Action::Abort(t) => {
                        store.abort(ActivityId::new(t));
                        aborted.insert(t);
                    }
                }
            }
            // Crash here: exactly the committed effects must remain.
            let undone = store.recover();
            // (prefix k: state must be the committed fold)
            prop_assert_eq!(store.state(), vec![oracle]);
            let expected_undone: std::collections::BTreeSet<u32> = applied
                .difference(&committed)
                .copied()
                .filter(|t| !aborted.contains(t))
                .collect();
            let undone: std::collections::BTreeSet<u32> =
                undone.iter().map(|t| t.raw()).collect();
            prop_assert_eq!(undone, expected_undone);
            // Idempotence: a second recovery changes nothing further.
            let state = store.state();
            prop_assert!(store.recover().is_empty());
            prop_assert_eq!(store.state(), state);
        }
    }

    /// Recovery is idempotent: recovering twice yields the same state.
    #[test]
    fn recovery_is_idempotent(
        script in prop::collection::vec((0..4i64, 1..5i64, prop::bool::ANY), 1..15)
    ) {
        let object = ObjectId::new(1);
        let store = IntentionsStore::new(KvMapSpec::new(), object, StableLog::new());
        for (i, (key, delta, commit)) in script.iter().enumerate() {
            let txn = ActivityId::new(i as u32 + 1);
            store.prepare(txn, vec![(op("adjust", [*key, *delta]), Value::ok())]);
            if *commit {
                store.commit(txn);
            }
        }
        store.crash();
        store.recover();
        let first = store.committed_frontier();
        store.crash();
        store.recover();
        prop_assert_eq!(first, store.committed_frontier());
    }

    /// The simulation is deterministic: identical seeds yield identical
    /// statistics, even with a crash.
    #[test]
    fn simulation_determinism(seed in 0u64..1_000, crash_at in 0u64..12) {
        let run = || {
            let mut c = Cluster::new(SimConfig { seed, ..SimConfig::default() });
            c.submit_transfer(0, 1, 10);
            c.submit_transfer(2, 3, 20);
            c.schedule_crash(crash_at, NodeId::new(0), 15_000);
            c.run_to_quiescence();
            c.heal();
            c.stats().clone()
        };
        prop_assert_eq!(run(), run());
    }
}
