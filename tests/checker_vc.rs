//! Property-based agreement between the linear-time certifier
//! (`analysis::certify`) and the exhaustive `spec::atomicity` decision
//! procedures: on randomly generated small histories — committed,
//! aborted, and still-active activities alike — both must accept or both
//! must reject, for all three local atomicity properties.

use atomicity::analysis::{certify, Property};
use atomicity::spec::atomicity::{is_dynamic_atomic, is_hybrid_atomic, is_static_atomic};
use atomicity::spec::specs::{BankAccountSpec, IntSetSpec};
use atomicity::spec::well_formed::WellFormedness;
use atomicity::spec::{
    op, ActivityId, Event, EventKind, History, ObjectId, Operation, SystemSpec, Value,
};
use proptest::prelude::*;

const X: ObjectId = ObjectId::new(1);
const Y: ObjectId = ObjectId::new(2);

fn system() -> SystemSpec {
    SystemSpec::new()
        .with_object(X, IntSetSpec::new())
        .with_object(Y, BankAccountSpec::new())
}

/// One random completed operation at a random object with a random
/// (possibly wrong) recorded result — wrong results make rejecting
/// histories as common as accepting ones.
fn arb_op_result() -> impl Strategy<Value = (ObjectId, Operation, Value)> {
    prop_oneof![
        (0..3i64, prop::bool::ANY).prop_map(|(k, v)| (X, op("member", [k]), Value::from(v))),
        (0..3i64).prop_map(|k| (X, op("insert", [k]), Value::ok())),
        (1..4i64).prop_map(|n| (Y, op("deposit", [n]), Value::ok())),
        (1..4i64, prop::bool::ANY).prop_map(|(n, ok)| {
            let result = if ok {
                Value::ok()
            } else {
                BankAccountSpec::insufficient_funds()
            };
            (Y, op("withdraw", [n]), result)
        }),
        (0..8i64, prop::bool::ANY).prop_map(|(b, exact)| {
            let v = if exact { b } else { b + 1 };
            (Y, op("balance", [] as [i64; 0]), Value::from(v))
        }),
    ]
}

/// How an activity ends.
#[derive(Debug, Clone, Copy)]
enum Fate {
    Commit,
    Abort,
    Active,
}

fn arb_fate() -> impl Strategy<Value = Fate> {
    prop_oneof![
        3 => Just(Fate::Commit),
        1 => Just(Fate::Abort),
        1 => Just(Fate::Active),
    ]
}

/// A random well-formed (basic-model) history: 2–4 activities, each with
/// 1–2 completed operations and a fate, interleaved by random priorities.
fn arb_history() -> impl Strategy<Value = History> {
    let activity = (prop::collection::vec(arb_op_result(), 1..3), arb_fate());
    (prop::collection::vec(activity, 2..5), any::<u64>()).prop_map(|(acts, seed)| {
        let mut streams: Vec<Vec<Event>> = Vec::new();
        for (i, (ops, fate)) in acts.iter().enumerate() {
            let a = ActivityId::new(i as u32 + 1);
            let mut ev = Vec::new();
            let mut objects = Vec::new();
            for (x, o, v) in ops {
                ev.push(Event::invoke(a, *x, o.clone()));
                ev.push(Event::respond(a, *x, v.clone()));
                if !objects.contains(x) {
                    objects.push(*x);
                }
            }
            match fate {
                Fate::Commit => {
                    for x in objects {
                        ev.push(Event::commit(a, x));
                    }
                }
                Fate::Abort => {
                    for x in objects {
                        ev.push(Event::abort(a, x));
                    }
                }
                Fate::Active => {}
            }
            streams.push(ev);
        }
        // Deterministic pseudo-random interleave preserving stream order.
        let mut rng = seed;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng
        };
        let mut h = History::new();
        let mut idx = vec![0usize; streams.len()];
        loop {
            let live: Vec<usize> = (0..streams.len())
                .filter(|&i| idx[i] < streams[i].len())
                .collect();
            if live.is_empty() {
                break;
            }
            let pick = live[(next() % live.len() as u64) as usize];
            h.push(streams[pick][idx[pick]].clone());
            idx[pick] += 1;
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On small histories the certifier is always decisive, and its
    /// verdict equals the exhaustive dynamic-atomicity checker's —
    /// accepts and rejects alike, aborted/active activities included.
    #[test]
    fn dynamic_certifier_agrees_with_exhaustive_checker(h in arb_history()) {
        let spec = system();
        let cert = certify(Property::Dynamic, &h, &spec);
        prop_assert!(cert.is_decisive(), "unexpected Unknown: {cert}");
        prop_assert_eq!(
            cert.is_certified(),
            is_dynamic_atomic(&h, &spec)
        );
    }

    /// Same agreement for static atomicity, on histories decorated with
    /// start-order timestamps (when the decoration is well-formed).
    #[test]
    fn static_certifier_agrees_with_exhaustive_checker(h in arb_history()) {
        let hs = atomicity::bench::enumerate::with_start_order_timestamps(&h, X);
        let spec = system();
        if WellFormedness::Static.is_well_formed(&hs) {
            let cert = certify(Property::Static, &hs, &spec);
            prop_assert!(cert.is_decisive(), "unexpected Unknown: {cert}");
            prop_assert_eq!(
                cert.is_certified(),
                is_static_atomic(&hs, &spec)
            );
        }
    }

    /// Same agreement for hybrid atomicity, with commit-order timestamps.
    #[test]
    fn hybrid_certifier_agrees_with_exhaustive_checker(h in arb_history()) {
        let hh = atomicity::bench::enumerate::with_commit_order_timestamps(&h);
        let spec = system();
        let cert = certify(Property::Hybrid, &hh, &spec);
        prop_assert!(cert.is_decisive(), "unexpected Unknown: {cert}");
        prop_assert_eq!(
            cert.is_certified(),
            is_hybrid_atomic(&hh, &spec)
        );
    }
}

/// Arbitrary event soup — not even well-formed — must never panic the
/// certifier, and whenever the soup happens to be basic-well-formed a
/// decisive verdict must still agree with the exhaustive checker.
fn arb_any_event() -> impl Strategy<Value = Event> {
    let activity = (1u32..4).prop_map(ActivityId::new);
    let object = (1u32..3).prop_map(ObjectId::new);
    let kind = prop_oneof![
        (0..3i64).prop_map(|k| EventKind::Invoke(op("member", [k]))),
        prop::bool::ANY.prop_map(|b| EventKind::Respond(Value::from(b))),
        Just(EventKind::Respond(Value::ok())),
        Just(EventKind::Commit),
        (1u64..5).prop_map(EventKind::CommitTs),
        Just(EventKind::Abort),
        (1u64..5).prop_map(EventKind::Initiate),
    ];
    (activity, object, kind).prop_map(|(activity, object, kind)| Event {
        activity,
        object,
        kind,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn certifier_never_panics_on_event_soup(
        events in prop::collection::vec(arb_any_event(), 0..12)
    ) {
        let h = History::from_events(events);
        let spec = system();
        let dynamic = certify(Property::Dynamic, &h, &spec);
        let _ = certify(Property::Static, &h, &spec);
        let _ = certify(Property::Hybrid, &h, &spec);
        if WellFormedness::Basic.is_well_formed(&h) && dynamic.is_decisive() {
            prop_assert_eq!(
                dynamic.is_certified(),
                is_dynamic_atomic(&h, &spec)
            );
        }
    }
}

/// Deterministic pins: the paper's worked histories certify, and a
/// history with a wrong recorded result is refuted by both procedures.
#[test]
fn paper_histories_certify() {
    use atomicity::spec::paper;
    let bank = paper::bank_system();
    let cert = certify(
        Property::Dynamic,
        &paper::bank_concurrent_withdraws(),
        &bank,
    );
    assert!(cert.is_certified(), "{cert}");
    let queue = paper::queue_system();
    let cert = certify(
        Property::Dynamic,
        &paper::queue_interleaved_enqueues(),
        &queue,
    );
    assert!(cert.is_certified(), "{cert}");
}
