//! Cross-crate integration: multi-object transactions over the typed
//! ADTs, baselines under the same checkers, and local-property
//! composition (the substance of Theorem 1 across heterogeneous objects).

use atomicity::adts::{
    AtomicAccount, AtomicCounter, AtomicMap, AtomicQueue, AtomicSemiqueue, AtomicSet,
    WithdrawOutcome,
};
use atomicity::baselines::{
    bank_commutativity, CommutativityLockedObject, ReedRegister, TwoPhaseLockedObject,
};
use atomicity::core::{AtomicObject, Protocol, TxnManager};
use atomicity::spec::atomicity::{is_atomic, is_dynamic_atomic, is_static_atomic};
use atomicity::spec::specs::{
    BankAccountSpec, CounterSpec, FifoQueueSpec, IntSetSpec, KvMapSpec, RegisterSpec, SemiqueueSpec,
};
use atomicity::spec::{op, ObjectId, SystemSpec};
use std::sync::Arc;

fn full_system() -> SystemSpec {
    SystemSpec::new()
        .with_object(ObjectId::new(1), BankAccountSpec::new())
        .with_object(ObjectId::new(2), IntSetSpec::new())
        .with_object(ObjectId::new(3), FifoQueueSpec::new())
        .with_object(ObjectId::new(4), CounterSpec::new())
        .with_object(ObjectId::new(5), KvMapSpec::new())
        .with_object(ObjectId::new(6), SemiqueueSpec::new())
}

/// One transaction touching six differently-typed objects, then a
/// concurrent pair, all checked as a single computation — local
/// properties composing across heterogeneous objects.
#[test]
fn heterogeneous_multi_object_transactions_compose() {
    for protocol in [Protocol::Dynamic, Protocol::Static, Protocol::Hybrid] {
        let mgr = TxnManager::new(protocol);
        let account = AtomicAccount::new(ObjectId::new(1), &mgr);
        let set = AtomicSet::new(ObjectId::new(2), &mgr);
        let queue = AtomicQueue::new(ObjectId::new(3), &mgr);
        let counter = AtomicCounter::new(ObjectId::new(4), &mgr);
        let map = AtomicMap::new(ObjectId::new(5), &mgr);
        let semiq = AtomicSemiqueue::new(ObjectId::new(6), &mgr);

        let t = mgr.begin();
        account.deposit(&t, 100).unwrap();
        set.insert(&t, 7).unwrap();
        queue.enqueue(&t, 1).unwrap();
        assert_eq!(counter.increment(&t).unwrap(), 1);
        map.put(&t, 1, 10).unwrap();
        semiq.enq(&t, 5).unwrap();
        mgr.commit(t).unwrap();

        // Two concurrent transactions on disjoint objects.
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        assert_eq!(
            account.withdraw(&t1, 30).unwrap(),
            WithdrawOutcome::Withdrawn
        );
        set.delete(&t2, 7).unwrap();
        queue.enqueue(&t1, 2).unwrap();
        map.add(&t2, 1, 5).unwrap();
        mgr.commit(t2).unwrap();
        mgr.commit(t1).unwrap();

        let h = mgr.history();
        let spec = full_system();
        assert!(is_atomic(&h, &spec), "{protocol:?}:\n{h}");
        match protocol {
            Protocol::Dynamic => assert!(is_dynamic_atomic(&h, &spec)),
            Protocol::Static => assert!(is_static_atomic(&h, &spec)),
            Protocol::Hybrid => {
                assert!(atomicity::spec::atomicity::is_hybrid_atomic(&h, &spec))
            }
        }
    }
}

/// An aborted multi-object transaction leaves no trace at any object.
#[test]
fn multi_object_abort_is_all_or_nothing() {
    let mgr = TxnManager::new(Protocol::Dynamic);
    let account = AtomicAccount::new(ObjectId::new(1), &mgr);
    let set = AtomicSet::new(ObjectId::new(2), &mgr);
    let t = mgr.begin();
    account.deposit(&t, 500).unwrap();
    set.insert(&t, 42).unwrap();
    mgr.abort(t);
    let t2 = mgr.begin();
    assert_eq!(account.balance(&t2).unwrap(), 0);
    assert!(!set.member(&t2, 42).unwrap());
    mgr.commit(t2).unwrap();
    assert!(is_dynamic_atomic(&mgr.history(), &full_system()));
}

/// The locking baselines are (sub-optimal) implementations of dynamic
/// atomicity: their histories satisfy the same property.
#[test]
fn locking_baselines_produce_dynamic_atomic_histories() {
    let mgr = TxnManager::new(Protocol::Dynamic);
    let locked_acct = TwoPhaseLockedObject::new(ObjectId::new(1), BankAccountSpec::new(), &mgr);
    let commut_acct = CommutativityLockedObject::new(
        ObjectId::new(2),
        BankAccountSpec::new(),
        &mgr,
        bank_commutativity,
    );
    let mut handles = Vec::new();
    for i in 0..3u32 {
        let mgr = mgr.clone();
        let a = Arc::clone(&locked_acct);
        let b = Arc::clone(&commut_acct);
        handles.push(std::thread::spawn(move || {
            for j in 0..4 {
                let t = mgr.begin();
                let r1 = a.invoke(&t, op("deposit", [i64::from(i + 1)]));
                let r2 = b.invoke(&t, op("deposit", [i64::from(j + 1)]));
                if r1.is_ok() && r2.is_ok() {
                    let _ = mgr.commit(t);
                } else {
                    mgr.abort(t);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let spec = SystemSpec::new()
        .with_object(ObjectId::new(1), BankAccountSpec::new())
        .with_object(ObjectId::new(2), BankAccountSpec::new());
    assert!(is_dynamic_atomic(&mgr.history(), &spec));
}

/// Reed registers under concurrent readers/writers stay static atomic.
#[test]
fn reed_registers_produce_static_atomic_histories() {
    let mgr = TxnManager::new(Protocol::Static);
    let r1 = ReedRegister::new(ObjectId::new(1), 0, &mgr);
    let r2 = ReedRegister::new(ObjectId::new(2), 0, &mgr);
    let mut handles = Vec::new();
    for i in 0..4u32 {
        let mgr = mgr.clone();
        let r1 = Arc::clone(&r1);
        let r2 = Arc::clone(&r2);
        handles.push(std::thread::spawn(move || {
            for j in 0..4 {
                let t = mgr.begin();
                let ok = if (i + j) % 2 == 0 {
                    r1.invoke(&t, op("write", [i64::from(i * 10 + j)])).is_ok()
                        && r2.invoke(&t, op("read", [] as [i64; 0])).is_ok()
                } else {
                    r1.invoke(&t, op("read", [] as [i64; 0])).is_ok()
                        && r2.invoke(&t, op("write", [i64::from(j)])).is_ok()
                };
                if ok {
                    let _ = mgr.commit(t);
                } else {
                    mgr.abort(t);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let spec = SystemSpec::new()
        .with_object(ObjectId::new(1), RegisterSpec::new())
        .with_object(ObjectId::new(2), RegisterSpec::new());
    let h = mgr.history();
    assert!(is_static_atomic(&h, &spec), "history:\n{h}");
}

/// The semiqueue's non-determinism buys concurrency that a FIFO queue
/// cannot offer: two concurrent dequeuers proceed without blocking.
#[test]
fn semiqueue_concurrency_exceeds_fifo() {
    let mgr = TxnManager::new(Protocol::Dynamic);
    let semiq = AtomicSemiqueue::new(ObjectId::new(6), &mgr);
    let setup = mgr.begin();
    for v in [10, 20, 30] {
        semiq.enq(&setup, v).unwrap();
    }
    mgr.commit(setup).unwrap();

    let a = mgr.begin();
    let b = mgr.begin();
    let va = semiq.deq(&a).unwrap().unwrap();
    let vb = semiq.deq(&b).unwrap().unwrap();
    assert_ne!(va, vb);
    mgr.commit(a).unwrap();
    mgr.commit(b).unwrap();
    let spec = SystemSpec::new().with_object(ObjectId::new(6), SemiqueueSpec::new());
    assert!(is_dynamic_atomic(&mgr.history(), &spec));
}

/// Mixed fates under load: some commit, some abort, one stays active; the
/// recorded computation is still dynamic atomic (recoverability online).
#[test]
fn mixed_fates_remain_atomic() {
    let mgr = TxnManager::new(Protocol::Dynamic);
    let map = AtomicMap::new(ObjectId::new(5), &mgr);
    let committed = mgr.begin();
    map.put(&committed, 1, 1).unwrap();
    mgr.commit(committed).unwrap();
    let aborted = mgr.begin();
    map.put(&aborted, 2, 2).unwrap();
    mgr.abort(aborted);
    let active = mgr.begin();
    map.put(&active, 3, 3).unwrap();
    // `active` neither commits nor aborts: perm(h) must still serialize.
    let h = mgr.history();
    let spec = SystemSpec::new().with_object(ObjectId::new(5), KvMapSpec::new());
    assert!(is_dynamic_atomic(&h, &spec));
    mgr.abort(active);
}
