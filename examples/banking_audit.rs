//! Lamport's banking problem (§4.3.3), solved with hybrid atomicity.
//!
//! Transfer activities move money between sharded accounts while audit
//! activities scan every shard. Under hybrid atomicity the audits read
//! timestamped committed versions: they never block, never abort, never
//! delay a transfer — and still every audit observes an exactly conserved
//! grand total, which Lamport's non-atomic solution cannot guarantee.
//!
//! ```text
//! cargo run --example banking_audit
//! ```

use atomicity::adts::AtomicMap;
use atomicity::core::{MetricsRegistry, Protocol, TxnManager};
use std::sync::Arc;

const SHARDS: usize = 4;
const ACCOUNTS_PER_SHARD: i64 = 4;
const INITIAL: i64 = 1_000;
const TRANSFERS_PER_WORKER: usize = 50;
const WORKERS: usize = 3;
const AUDITS: usize = 25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The builder API with an enabled metrics registry: the run reports
    // commit-path latencies alongside the conservation check.
    let mgr = TxnManager::builder(Protocol::Hybrid)
        .metrics(MetricsRegistry::new())
        .build();
    let shards: Vec<AtomicMap> = (0..SHARDS)
        .map(|s| {
            AtomicMap::with_initial(
                atomicity::spec::ObjectId::new(s as u32 + 1),
                &mgr,
                (0..ACCOUNTS_PER_SHARD).map(|k| (k, INITIAL)),
            )
        })
        .collect();
    let expected_total = SHARDS as i64 * ACCOUNTS_PER_SHARD * INITIAL;
    println!("bank: {SHARDS} shards × {ACCOUNTS_PER_SHARD} accounts, total = {expected_total}");

    // Transfer workers: debit one shard, credit another, atomically.
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let mgr = mgr.clone();
        let shards = shards.clone();
        workers.push(std::thread::spawn(move || {
            let mut committed = 0u64;
            for t in 0..TRANSFERS_PER_WORKER {
                let from = (w + t) % SHARDS;
                let to = (w + t + 1) % SHARDS;
                let key = (t as i64) % ACCOUNTS_PER_SHARD;
                let txn = mgr.begin();
                let moved = shards[from]
                    .add(&txn, key, -25)
                    .and_then(|_| shards[to].add(&txn, key, 25));
                match moved {
                    Ok(_) => {
                        mgr.commit(txn).expect("transfer commit");
                        committed += 1;
                    }
                    Err(_) => mgr.abort(txn),
                }
            }
            committed
        }));
    }

    // Audit worker: read-only scans, concurrent with the transfers.
    let auditor = {
        let mgr = mgr.clone();
        let shards = shards.clone();
        std::thread::spawn(move || {
            let mut totals = Vec::new();
            for _ in 0..AUDITS {
                let audit = mgr.begin_read_only();
                let total: i64 = shards
                    .iter()
                    .map(|s| s.sum(&audit).expect("audit never aborts"))
                    .sum();
                mgr.commit(audit).expect("audit commit");
                totals.push(total);
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            totals
        })
    };

    let committed: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    let totals = auditor.join().unwrap();

    println!("transfers committed: {committed}");
    println!("audits run concurrently: {}", totals.len());
    let consistent = totals.iter().filter(|&&t| t == expected_total).count();
    println!(
        "audits observing the conserved total: {consistent}/{}",
        totals.len()
    );
    assert_eq!(consistent, totals.len(), "every audit must be consistent");

    let m = mgr.metrics().snapshot();
    println!(
        "metrics: {} committed / {} aborted, commit p95 {:?} ns, abort causes {:?}",
        m.txns_committed,
        m.txns_aborted,
        m.commit_ns.percentile(0.95),
        m.abort_reasons,
    );

    // Shared `Arc`s kept alive until the end of the run.
    let _keep = Arc::new(shards);
    println!("hybrid atomicity: consistent audits with zero interference.");
    Ok(())
}
