//! A distributed bank on the simulated cluster: two-phase commit,
//! a participant crash mid-protocol, recovery, and the atomicity
//! invariants that survive all of it (§1, §3).
//!
//! ```text
//! cargo run --example distributed_bank
//! ```

use atomicity::sim::{Cluster, NodeId, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig {
        nodes: 4,
        accounts_per_node: 4,
        initial_balance: 250,
        seed: 2026,
        ..SimConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    println!(
        "cluster: 4 nodes × 4 accounts, initial total = {}",
        cluster.account_count() * 250
    );

    // Submit a batch of transfers.
    let mut txns = Vec::new();
    for i in 0..10i64 {
        let from = i % cluster.account_count();
        let to = (i * 5 + 2) % cluster.account_count();
        if from != to {
            txns.push(cluster.submit_transfer(from, to, 25));
        }
    }

    // Crash node n1 after a handful of protocol events; it recovers later.
    cluster.schedule_crash(6, NodeId::new(1), 40_000);

    cluster.run_to_quiescence();
    cluster.heal();

    let stats = cluster.stats();
    println!(
        "decided: {} committed, {} aborted ({} messages, {} dropped at the crashed node)",
        stats.committed, stats.aborted, stats.messages, stats.dropped
    );
    println!(
        "crashes: {}, recoveries: {}, intentions redone: {}, in-doubt resolved: {}",
        stats.crashes, stats.recoveries, stats.redo_records, stats.in_doubt
    );

    for txn in &txns {
        println!("  {txn:?} -> {:?}", cluster.decision(*txn));
    }

    cluster.verify_atomicity().map_err(std::io::Error::other)?;
    cluster
        .verify_conservation()
        .map_err(std::io::Error::other)?;
    println!("all-or-nothing and conservation verified across the crash. ✔");
    Ok(())
}
