//! A guided tour of the paper's formal examples, executed by the checkers.
//!
//! Every example event sequence from the paper is printed together with
//! the verdicts of the well-formedness and atomicity checkers — the
//! machine-checked version of reading §2–§5.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use atomicity::spec::atomicity::{
    is_atomic, is_dynamic_atomic, is_hybrid_atomic, is_static_atomic, timestamp_order,
};
use atomicity::spec::well_formed::WellFormedness;
use atomicity::spec::{paper, History, SystemSpec};

fn show(title: &str, h: &History, verdicts: &[(&str, bool)]) {
    println!("── {title}");
    for line in h.to_string().lines() {
        println!("    {line}");
    }
    for (name, v) in verdicts {
        println!("    ⇒ {name}: {}", if *v { "yes" } else { "no" });
    }
    println!();
}

fn main() {
    let set: SystemSpec = paper::set_system();

    println!("§3 — atomicity = serializability of perm(h)\n");
    let h = paper::perm_example();
    show(
        "perm example: c's delete aborts and is discarded",
        &h,
        &[("atomic", is_atomic(&h, &set))],
    );
    let h = paper::non_atomic_member();
    show(
        "member(2) → true on the empty set",
        &h,
        &[("atomic", is_atomic(&h, &set))],
    );

    println!("§4.1 — dynamic atomicity\n");
    let h = paper::precedes_empty_example();
    show(
        "both commits after both responses: precedes(h) = {}",
        &h,
        &[("precedes empty", h.precedes().is_empty())],
    );
    let h = paper::atomic_not_dynamic();
    show(
        "atomic but NOT dynamic atomic (a must precede b, but ⟨a,b⟩ ∉ precedes)",
        &h,
        &[
            ("atomic", is_atomic(&h, &set)),
            ("dynamic atomic", is_dynamic_atomic(&h, &set)),
        ],
    );
    let h = paper::dynamic_example();
    show(
        "the repaired example (a queries member(2)): dynamic atomic",
        &h,
        &[("dynamic atomic", is_dynamic_atomic(&h, &set))],
    );

    println!("§4.2 — static atomicity\n");
    let h = paper::atomic_not_static();
    show(
        "atomic but NOT static atomic (timestamp order is b-a)",
        &h,
        &[
            ("atomic", is_atomic(&h, &set)),
            ("static atomic", is_static_atomic(&h, &set)),
            (
                "timestamp order is b,a",
                timestamp_order(&h) == Some(vec![paper::B, paper::A]),
            ),
        ],
    );
    let h = paper::static_example();
    show(
        "insert executes first but serializes second: static atomic",
        &h,
        &[("static atomic", is_static_atomic(&h, &set))],
    );
    let h = paper::static_wf_counterexample();
    show(
        "the §4.2.1 ill-formed sequence (three violations)",
        &h,
        &[(
            "well-formed (static)",
            WellFormedness::Static.is_well_formed(&h),
        )],
    );

    println!("§4.3 — hybrid atomicity\n");
    let h = paper::hybrid_wf_counterexample();
    show(
        "commit timestamps contradict precedes; r reuses a's timestamp",
        &h,
        &[(
            "well-formed (hybrid)",
            WellFormedness::Hybrid.is_well_formed(&h),
        )],
    );
    let h = paper::atomic_not_hybrid();
    show(
        "atomic but NOT hybrid atomic (reconstruction)",
        &h,
        &[
            ("atomic", is_atomic(&h, &set)),
            ("hybrid atomic", is_hybrid_atomic(&h, &set)),
        ],
    );
    let h = paper::hybrid_example();
    show(
        "the reader's timestamp falls between the updates: hybrid atomic",
        &h,
        &[("hybrid atomic", is_hybrid_atomic(&h, &set))],
    );

    println!("§5.1 — more concurrency than locking\n");
    let bank = paper::bank_system();
    let h = paper::bank_concurrent_withdraws();
    show(
        "concurrent withdrawals with sufficient funds: dynamic atomic",
        &h,
        &[("dynamic atomic", is_dynamic_atomic(&h, &bank))],
    );
    let q = paper::queue_system();
    let h = paper::queue_interleaved_enqueues();
    show(
        "interleaved enqueues, dequeues 1,2,1,2: dynamic atomic",
        &h,
        &[("dynamic atomic", is_dynamic_atomic(&h, &q))],
    );

    println!("every verdict matches the paper.");
}
