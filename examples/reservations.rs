//! An airline reservation system — one of the paper's motivating
//! applications (§1) — built from atomic ADTs.
//!
//! Seats are an [`AtomicSet`] (the seat map), ticket numbers come from an
//! [`AtomicCounter`], and a standby list is an [`AtomicSemiqueue`] (any
//! waiting passenger may be promoted — non-determinism as a concurrency
//! feature). Booking agents run concurrent transactions; a hybrid
//! read-only audit checks the invariant *booked seats + issued standby
//! promotions = issued tickets* without delaying a single booking.
//!
//! ```text
//! cargo run --example reservations
//! ```

use atomicity::adts::{AtomicCounter, AtomicSemiqueue, AtomicSet};
use atomicity::core::{Protocol, TxnManager};
use atomicity::spec::ObjectId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SEATS: i64 = 24;
const AGENTS: usize = 4;
const REQUESTS_PER_AGENT: usize = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mgr = TxnManager::new(Protocol::Hybrid);
    let seat_map = AtomicSet::new(ObjectId::new(1), &mgr); // booked seats
    let tickets = AtomicCounter::new(ObjectId::new(2), &mgr); // ticket numbers
    let standby = AtomicSemiqueue::new(ObjectId::new(3), &mgr); // waitlist

    let booked = Arc::new(AtomicU64::new(0));
    let waitlisted = Arc::new(AtomicU64::new(0));

    let mut agents = Vec::new();
    for agent in 0..AGENTS {
        let mgr = mgr.clone();
        let seat_map = seat_map.clone();
        let tickets = tickets.clone();
        let standby = standby.clone();
        let booked = Arc::clone(&booked);
        let waitlisted = Arc::clone(&waitlisted);
        agents.push(std::thread::spawn(move || {
            'requests: for r in 0..REQUESTS_PER_AGENT {
                let passenger = (agent * 1_000 + r) as i64;
                // A deadlocked attempt aborts; the agent simply retries
                // the whole request (recoverability at work).
                for _attempt in 0..20 {
                    let txn = mgr.begin();
                    // Each agent scans "its" seat block first, like real
                    // agents with block assignments.
                    let mut chosen = None;
                    let mut scan_failed = false;
                    for probe in 0..SEATS {
                        let seat = (probe * AGENTS as i64 + agent as i64) % SEATS;
                        match seat_map.member(&txn, seat) {
                            Ok(false) => {
                                chosen = Some(seat);
                                break;
                            }
                            Ok(true) => continue,
                            Err(_) => {
                                scan_failed = true;
                                break;
                            }
                        }
                    }
                    if scan_failed {
                        mgr.abort(txn);
                        continue;
                    }
                    let outcome = match chosen {
                        Some(seat) => seat_map
                            .insert(&txn, seat)
                            .and_then(|_| tickets.increment(&txn))
                            .map(|_| true),
                        None => standby.enq(&txn, passenger).map(|_| false),
                    };
                    match outcome {
                        Ok(got_seat) => {
                            if mgr.commit(txn).is_ok() {
                                if got_seat {
                                    booked.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    waitlisted.fetch_add(1, Ordering::Relaxed);
                                }
                                continue 'requests;
                            }
                        }
                        Err(_) => mgr.abort(txn),
                    }
                }
                panic!("request by agent {agent} never succeeded");
            }
        }));
    }

    // A concurrent read-only audit: seat count vs tickets issued, with no
    // interference with the agents.
    let auditor = {
        let mgr = mgr.clone();
        let seat_map = seat_map.clone();
        let tickets = tickets.clone();
        std::thread::spawn(move || {
            let mut checks = 0u32;
            for _ in 0..10 {
                let audit = mgr.begin_read_only();
                let seats = seat_map.size(&audit).expect("audits never fail");
                let issued = tickets.value(&audit).expect("audits never fail");
                mgr.commit(audit).expect("audit commit");
                assert_eq!(
                    seats, issued,
                    "every booked seat corresponds to exactly one ticket"
                );
                checks += 1;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            checks
        })
    };

    for a in agents {
        a.join().unwrap();
    }
    let checks = auditor.join().unwrap();

    // Final accounting.
    let t = mgr.begin();
    let seats_taken = seat_map.size(&t)?;
    let tickets_issued = tickets.value(&t)?;
    let waiting = standby.count(&t)?;
    mgr.commit(t)?;

    println!("seats booked:     {seats_taken}/{SEATS}");
    println!("tickets issued:   {tickets_issued}");
    println!("standby waiting:  {waiting}");
    println!("audits passed:    {checks}");
    println!(
        "requests: {} booked + {} waitlisted = {}",
        booked.load(Ordering::Relaxed),
        waitlisted.load(Ordering::Relaxed),
        AGENTS * REQUESTS_PER_AGENT
    );
    assert_eq!(seats_taken, tickets_issued);
    assert_eq!(
        booked.load(Ordering::Relaxed) + waitlisted.load(Ordering::Relaxed),
        (AGENTS * REQUESTS_PER_AGENT) as u64
    );
    assert_eq!(waiting as u64, waitlisted.load(Ordering::Relaxed));
    println!("reservation invariants hold under concurrent agents. ✔");
    Ok(())
}
