//! Quickstart: atomic objects under the three local atomicity properties.
//!
//! Creates a bank account under each protocol, runs the paper's §5.1
//! concurrent-withdrawal scenario, and verifies the recorded history
//! against the corresponding formal property with the checkers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use atomicity::adts::{AtomicAccount, WithdrawOutcome};
use atomicity::core::{MetricsRegistry, Protocol, TxnManager};
use atomicity::spec::atomicity::{is_dynamic_atomic, is_hybrid_atomic, is_static_atomic};
use atomicity::spec::specs::BankAccountSpec;
use atomicity::spec::{ObjectId, SystemSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for protocol in [Protocol::Dynamic, Protocol::Static, Protocol::Hybrid] {
        println!("--- {protocol:?} atomicity ---");
        // The builder API: protocol plus an enabled metrics registry, so
        // the run below also demonstrates the observability layer.
        let mgr = TxnManager::builder(protocol)
            .metrics(MetricsRegistry::new())
            .build();
        let account = AtomicAccount::new(ObjectId::new(1), &mgr);

        // Fund the account.
        let funder = mgr.begin();
        account.deposit(&funder, 10)?;
        mgr.commit(funder)?;

        // Two concurrent withdrawals (§5.1): under dynamic and hybrid
        // atomicity both are admitted concurrently because the balance
        // covers every order.
        let b = mgr.begin();
        let c = mgr.begin();
        let wb = account.withdraw(&b, 4)?;
        let wc = account.withdraw(&c, 3)?;
        assert_eq!(wb, WithdrawOutcome::Withdrawn);
        assert_eq!(wc, WithdrawOutcome::Withdrawn);
        mgr.commit(c)?;
        mgr.commit(b)?;

        // Observe the final balance.
        let reader = mgr.begin();
        let balance = account.balance(&reader)?;
        println!("final balance: {balance}");
        assert_eq!(balance, 3);
        mgr.commit(reader)?;

        // The recorded history is a formal computation; check it against
        // the protocol's local atomicity property.
        let history = mgr.history();
        let spec = SystemSpec::new().with_object(ObjectId::new(1), BankAccountSpec::new());
        let holds = match protocol {
            Protocol::Dynamic => is_dynamic_atomic(&history, &spec),
            Protocol::Static => is_static_atomic(&history, &spec),
            Protocol::Hybrid => is_hybrid_atomic(&history, &spec),
        };
        println!(
            "history of {} events satisfies its local atomicity property: {holds}",
            history.len()
        );
        assert!(holds);

        // What the metrics registry observed for this protocol's run.
        let m = mgr.metrics().snapshot();
        println!(
            "metrics: {} txns committed, invoke p50 {:?} ns, commit p50 {:?} ns, {} trace events",
            m.txns_committed,
            m.invoke_ns.percentile(0.5),
            m.commit_ns.percentile(0.5),
            m.trace_written,
        );
    }
    println!("\nAll three protocols executed and verified.");
    Ok(())
}
