//! The §5.1 FIFO-queue scenario as a producer/consumer pipeline.
//!
//! Two producers interleave enqueues inside open transactions — the
//! interleaving the scheduler model of Figure 5-1 cannot even represent —
//! then a consumer drains the queue. The recorded history is checked to be
//! dynamic atomic, and the paper's literal example history is shown to be
//! rejected by the scheduler model while the checker admits it.
//!
//! ```text
//! cargo run --example queue_pipeline
//! ```

use atomicity::adts::AtomicQueue;
use atomicity::baselines::SchedulerModel;
use atomicity::core::{Protocol, TxnManager};
use atomicity::spec::atomicity::is_dynamic_atomic;
use atomicity::spec::specs::FifoQueueSpec;
use atomicity::spec::{paper, ObjectId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mgr = TxnManager::new(Protocol::Dynamic);
    let queue = AtomicQueue::new(ObjectId::new(1), &mgr);

    // Producers a and b interleave their enqueues, exactly as in §5.1.
    let a = mgr.begin();
    let b = mgr.begin();
    queue.enqueue(&a, 1)?;
    queue.enqueue(&b, 1)?;
    queue.enqueue(&a, 2)?;
    queue.enqueue(&b, 2)?;
    mgr.commit(a)?;
    mgr.commit(b)?;

    // Consumer c drains; commit order a-b yields 1,2 then 1,2.
    let c = mgr.begin();
    let mut drained = Vec::new();
    while let Some(v) = queue.dequeue(&c)? {
        drained.push(v);
    }
    mgr.commit(c)?;
    println!("drained: {drained:?}");
    assert_eq!(drained, vec![1, 2, 1, 2]);

    // The engine's own history is dynamic atomic.
    let history = mgr.history();
    let spec =
        atomicity::spec::SystemSpec::new().with_object(ObjectId::new(1), FifoQueueSpec::new());
    assert!(is_dynamic_atomic(&history, &spec));
    println!(
        "engine history ({} events): dynamic atomic ✔",
        history.len()
    );

    // The paper's literal history: dynamic atomicity admits it; the
    // Figure 5-1 scheduler model cannot produce it.
    let h = paper::queue_interleaved_enqueues();
    let dynamic_ok = is_dynamic_atomic(&h, &paper::queue_system());
    let storage = SchedulerModel::new(paper::X, FifoQueueSpec::new());
    let scheduler_ok = storage.can_produce(&h);
    println!(
        "paper's 1,2,1,2 history: dynamic atomic = {dynamic_ok}, scheduler model = {scheduler_ok}"
    );
    assert!(dynamic_ok && !scheduler_ok);

    println!("the scheduler model's storage, fed the same schedule, is forced to answer 1,1,2,2:");
    let storage = SchedulerModel::new(ObjectId::new(9), FifoQueueSpec::new());
    for v in [1, 1, 2, 2] {
        storage.submit(&atomicity::spec::op("enqueue", [v]));
    }
    let forced: Vec<_> = (0..4)
        .filter_map(|_| storage.submit(&atomicity::spec::op("dequeue", [] as [i64; 0])))
        .collect();
    println!("  storage answers: {forced:?}");
    Ok(())
}
